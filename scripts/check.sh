#!/usr/bin/env bash
# Repo check entry points.
#
#   scripts/check.sh test-fast   default lane: everything not marked slow
#                                (the tier-1 gate; finishes in well under
#                                a minute)
#   scripts/check.sh test-all    full lane: fast tests + slow tests +
#                                every paper-table benchmark
#   scripts/check.sh chaos       fault-injection suite: every chaos
#                                scenario plus the full seeded fuzz
#                                sweep (includes the slow lane)
#   scripts/check.sh fleet       snap-vault subsystem: store/collector/
#                                incident/index/parallel tests plus the
#                                vault ingest benchmark; writes
#                                BENCH_fleet.json
#   scripts/check.sh gc          retention/compaction subsystem: the
#                                policy + pin tests, the crash-injection
#                                fuzz sweep (200+ seeded kills), and the
#                                GC benchmark (reclaim rate + ingest
#                                throughput under compaction) merged
#                                into BENCH_fleet.json
#   scripts/check.sh triage      crash-signature triage subsystem: the
#                                signature/bucket/report unit tests, the
#                                cross-seed differential against chaos
#                                ground truth (precision == 1.0), the
#                                signature-stability fuzz sweep, and the
#                                golden report regression (all slow
#                                lanes included)
#   scripts/check.sh remote      remote-query + federation subsystem:
#                                the wire-protocol/client tests, the
#                                federated scatter-gather tests, the
#                                seeded query-chaos fuzz sweep (120+
#                                seeds), and the federation benchmark
#                                (fan-out latency + one-slow-vault
#                                overhead) merged into BENCH_fleet.json
#   scripts/check.sh replay      time-travel replay subsystem: the
#                                ndlog/engine/CLI/vault-verify unit
#                                tests, the full differential sweep
#                                (examples + 60+ seeded random
#                                multithreaded crashers, instrumented
#                                and bare), and the replay benchmark
#                                (ndlog overhead + replay throughput)
#                                merged into BENCH_interpreter.json
#   scripts/check.sh tier3       block-compiled engine subsystem: the
#                                three-tier differential suite, the
#                                tier-3 unit tests, the full cross-
#                                engine replay sweep (62 seeded
#                                crashers recorded on one tier and
#                                replayed on another, both directions),
#                                and the interpreter benchmark (engine
#                                speedups + decode throughput) with its
#                                >25% regression guard
#   scripts/check.sh bench       interpreter + fleet-ingest + fleet-GC +
#                                federation + replay benchmarks; writes
#                                BENCH_interpreter.json and
#                                BENCH_fleet.json, then fails if fleet
#                                ingest, GC reclaim, federated query, or
#                                replay throughput regressed >25% vs the
#                                previous history entry
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

case "${1:-test-fast}" in
  test-fast)
    exec python -m pytest -x -q
    ;;
  test-all)
    # A trailing -m overrides the default "not slow" from pyproject.
    exec python -m pytest -q -m "slow or not slow"
    ;;
  chaos)
    exec python -m pytest -q tests/chaos -m "slow or not slow"
    ;;
  fleet)
    python -m pytest -q tests/fleet -m "slow or not slow"
    exec python benchmarks/bench_fleet_ingest.py
    ;;
  gc)
    python -m pytest -q tests/fleet/test_retention.py \
      tests/fleet/test_gc_fuzz.py -m "slow or not slow"
    python benchmarks/bench_fleet_gc.py
    exec python benchmarks/bench_fleet_gc.py --check
    ;;
  triage)
    exec python -m pytest -q tests/fleet/test_triage.py \
      tests/fleet/test_triage_differential.py \
      tests/fleet/test_signature_stability.py \
      tests/fleet/test_triage_golden.py -m "slow or not slow"
    ;;
  remote)
    python -m pytest -q tests/fleet/test_remote.py \
      tests/fleet/test_federation.py \
      tests/fleet/test_federation_fuzz.py -m "slow or not slow"
    python benchmarks/bench_fleet_federation.py
    exec python benchmarks/bench_fleet_federation.py --check
    ;;
  replay)
    # Full replay suite: engine + both ndlog wire formats (the v2
    # codec/golden tests and the 62-seed v1-vs-v2 differential sweep),
    # plus the version-aware ndlog chaos fuzz.
    python -m pytest -q tests/replay -m "slow or not slow"
    python -m pytest -q tests/chaos/test_fuzz.py -k ndlog -m "slow or not slow"
    python benchmarks/bench_replay.py
    exec python benchmarks/bench_replay.py --check
    ;;
  tier3)
    python -m pytest -q tests/vm/test_differential.py tests/vm/test_blocks.py \
      tests/replay/test_cross_engine.py -m "slow or not slow"
    python benchmarks/bench_interpreter.py
    exec python benchmarks/bench_interpreter.py --check
    ;;
  bench)
    python benchmarks/bench_interpreter.py
    python benchmarks/bench_fleet_ingest.py
    python benchmarks/bench_fleet_gc.py
    python benchmarks/bench_fleet_federation.py
    python benchmarks/bench_replay.py
    python benchmarks/bench_fleet_ingest.py --check
    python benchmarks/bench_fleet_gc.py --check
    python benchmarks/bench_fleet_federation.py --check
    exec python benchmarks/bench_replay.py --check
    ;;
  *)
    echo "usage: $0 {test-fast|test-all|chaos|fleet|gc|triage|remote|replay|tier3|bench}" >&2
    exit 2
    ;;
esac
