"""repro — a reproduction of TraceBack (PLDI 2005).

TraceBack is a first-fault diagnosis system: it statically rewrites
binaries to record their control flow into per-thread ring buffers at
basic-block granularity, then reconstructs source-line execution
histories after a crash, hang, or abrupt kill — across threads,
modules, languages, and machines.

This package implements the complete system over TBVM, a simulated
binary substrate (see DESIGN.md for the substitution table):

- :mod:`repro.isa` — the TBVM instruction set, assembler, module format
- :mod:`repro.vm` — the multi-threaded process VM (exceptions, signals,
  RPC, kill -9)
- :mod:`repro.analysis` — CFG recovery, dominators, liveness
- :mod:`repro.instrument` — DAG tiling, probes, the binary rewriter,
  mapfiles
- :mod:`repro.runtime` — trace buffers, DAG rebasing, snaps, the
  service process
- :mod:`repro.reconstruct` — records -> source-line traces, call trees,
  thread interleaving, distributed stitching
- :mod:`repro.distributed` — simulated machines/network with clock skew
- :mod:`repro.lang.minic` — a C-like language compiled to TBVM
- :mod:`repro.pytrace` — a sys.settrace flight recorder for real Python
  programs using the same record format and reconstruction
- :mod:`repro.workloads` — the SPEC-analog evaluation workloads

Quickstart::

    from repro import trace_program
    result = trace_program(minic_source)   # run + snap + reconstruct
    print(result.view())
"""

from repro.api import TraceSession, TracedRun, trace_program

__version__ = "1.0.0"

__all__ = ["TraceSession", "TracedRun", "trace_program", "__version__"]
