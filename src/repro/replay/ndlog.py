"""The nondeterminism log (``tb-ndlog/1`` / ``tb-ndlog/2``) in snaps.

The TBVM is deterministic almost everywhere: the per-process PRNG is
seeded from the pid, allocation addresses and thread ids are assigned
sequentially, and every instruction/cycle charge is a pure function of
the executed stream.  What a single process cannot re-derive is the
*environment*: which thread the scheduler ran when (other processes on
the machine advance the shared cycle counter between slices), signals
posted from outside, replies to RPCs served elsewhere, inbound RPC
requests, host-initiated snaps, and ``kill -9``.  The ndlog records
exactly that — nothing else — so replaying a snap is "re-execute the
instruction stream, forcing each recorded decision at its recorded
point" (the execution-replay-via-VM idea of Oppitz, AADEBUG 2003).

Version 1 layout (plain JSON, embedded under ``SnapFile.replay``)::

    {"format": "tb-ndlog/1",
     "header": {pid, process_name, machine, clock_skew, io_latency,
                engine, runtime_id, config, modules, start_threads,
                rpc_services, loopback_seqs, dagbase},
     "events": [...],
     "n_events": N}

Event records are compact tagged lists, chronological:

``["s", tid, start_cycle, n, end_pc, partial?]``
    One scheduler slice: thread ``tid`` ran ``n`` instructions starting
    at machine cycle ``start_cycle`` and stopped with ``pc == end_pc``.
    A trailing ``1`` marks the partial slice open when the snap was
    serialized (the fault point): its end pc is where the *hook* saw the
    thread, which a whole-instruction replay may legitimately pass.
``["sig", signum]``
    An externally posted signal, recorded at delivery (always
    immediately before the slice that delivers it).
``["rr", seq, cycle, status, result_words, reply_triple]``
    Completion of the ``seq``-th outbound RPC, served outside this
    process (remote machine, sibling process, or no server at all).
``["rs", cycle, service, args, ret_cap, triple]``
    An inbound RPC request from outside this process.
``["x", cycle, reason, detail]``
    A host-initiated snap (external snap utility, hang detector, group
    snap fan-out).
``["k", cycle]``
    ``kill -9``.

Version 2 is the same information packed columnar.  On long runs the
log is >99% scheduler slices, and serializing each as a five-element
JSON list costs ~4 compressed bytes per event — it dominated the
replayable archive by two orders of magnitude on the 60k-iteration
benchmark run.  v2 splits the slice stream into per-field byte columns
(base64-strings in the JSON, so the container stays a plain-JSON snap)::

    {"format": "tb-ndlog/2",
     "header": {...identical to v1...},
     "n_events": N,                  # decoded (v1-equivalent) count
     "slices": {"count": S,
                "tids":    <b64>,   # run-length pairs (tid, run)
                "starts":  <b64>,   # zigzag varint deltas, 1st absolute
                "counts":  <b64>,   # zigzag varint deltas, 1st absolute
                "end_pcs": <b64>,   # zigzag varint deltas, 1st absolute
                "partial": [i, ...]},  # indices of partial slices
     "rare": [[pos, event], ...]}   # non-slice events, still JSON,
                                    # pos = slices preceding the event

Scheduler slices are near-periodic (round-robin quanta, loop-heavy end
pcs), so the delta/RLE columns are extremely low-entropy and the
archive's deflate layer erases them almost entirely.  The encoder also
**coalesces** adjacent slices of the same thread whose machine cycles
are contiguous — the uncontended single-thread stretches the
scheduler's ``spawn_epoch`` fast path produces — which is
replay-equivalent: cycle charging is deterministic per instruction, so
replaying the merged run of instructions passes through exactly the
recorded intermediate cycle values.  Rare events (signals, RPC legs,
host snaps, kill) always break a coalescing run, preserving their
position in the forced-event stream.

Both versions validate through :func:`validate_ndlog` /
:func:`decode_events`; any malformed byte range in a v2 column is
refused with a :class:`ReplayUnavailable` naming the segment
(``slices.starts``, ``rare[3]``, ...) instead of surfacing as a
``TypeError`` deep inside the replay engine.  ``n_events``
double-checks the (decoded) event count so chaos-damaged logs are
refused rather than silently diverging mid-replay.
"""

from __future__ import annotations

import base64
import binascii
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import RuntimeConfig
    from repro.runtime.snap import SnapPolicy

#: Version tag of the legacy plain-JSON log format.
NDLOG_FORMAT = "tb-ndlog/1"

#: Version tag of the packed columnar log format (the default).
NDLOG_FORMAT_V2 = "tb-ndlog/2"

#: Every format this module can decode.
NDLOG_FORMATS = (NDLOG_FORMAT, NDLOG_FORMAT_V2)

#: Event tag -> accepted arities.
_EVENT_ARITY = {
    "s": (5, 6),
    "sig": (2,),
    "rr": (6,),
    "rs": (6,),
    "x": (4,),
    "k": (2,),
}

#: Header keys a replay cannot start without.
_HEADER_REQUIRED = (
    "pid",
    "process_name",
    "machine",
    "clock_skew",
    "io_latency",
    "runtime_id",
    "config",
    "modules",
    "start_threads",
    "rpc_services",
)

#: The v2 slice columns, in validation order.
_V2_COLUMNS = ("tids", "starts", "counts", "end_pcs")


class ReplayUnavailable(ValueError):
    """A snap cannot be replayed; ``segment`` names what is missing.

    Raised for legacy snaps recorded without an ndlog, for salvage-mode
    snaps whose log was damaged, and for runs using features the replay
    engine does not force (e.g. a dagbase file).
    """

    def __init__(self, segment: str, message: str | None = None):
        self.segment = segment
        super().__init__(message or f"replay unavailable: missing {segment}")


class ReplayDivergence(RuntimeError):
    """Replayed execution departed from the recorded run."""


# ----------------------------------------------------------------------
# Replayability status (satellite: always derivable from a snap header)
# ----------------------------------------------------------------------
def replayable_status(replay: dict | None) -> str:
    """Classify a snap's ``replay`` dict: ``full``/``seed-only``/``none``.

    The one implementation of the status ladder — vault manifests,
    ``tbtrace info``, and :attr:`SnapFile.replayable` all delegate here,
    so a format change (v1 -> v2) cannot make "full" drift between
    local snaps and fleet metadata.  Any ndlog *mapping* counts as full
    regardless of version; damage is discovered (and named) at decode.
    """
    if not isinstance(replay, dict) or not replay:
        return "none"
    if isinstance(replay.get("ndlog"), dict):
        return "full"
    if isinstance(replay.get("seed"), dict):
        return "seed-only"
    return "none"


# ----------------------------------------------------------------------
# Config / policy serialization
# ----------------------------------------------------------------------
def policy_to_dict(policy: "SnapPolicy") -> dict:
    """Plain-data form of a snap policy (sets become sorted lists)."""
    return {
        "exception_codes": (
            None
            if policy.exception_codes is None
            else sorted(policy.exception_codes)
        ),
        "unhandled": policy.unhandled,
        "signals": None if policy.signals is None else sorted(policy.signals),
        "api": policy.api,
        "hang": policy.hang,
        "suppress_duplicates": policy.suppress_duplicates,
        "max_snaps": policy.max_snaps,
        "include_memory": policy.include_memory,
    }


def policy_from_dict(d: dict) -> "SnapPolicy":
    """Inverse of :func:`policy_to_dict`."""
    from repro.runtime.snap import SnapPolicy

    return SnapPolicy(
        exception_codes=(
            None
            if d.get("exception_codes") is None
            else {int(c) for c in d["exception_codes"]}
        ),
        unhandled=bool(d.get("unhandled", True)),
        signals=None if d.get("signals") is None else {int(s) for s in d["signals"]},
        api=bool(d.get("api", True)),
        hang=bool(d.get("hang", True)),
        suppress_duplicates=bool(d.get("suppress_duplicates", True)),
        max_snaps=int(d.get("max_snaps", 100)),
        include_memory=bool(d.get("include_memory", False)),
    )


#: RuntimeConfig scalar fields carried through the log verbatim.
_CONFIG_FIELDS = (
    "sub_buffer_words",
    "sub_buffers",
    "main_buffers",
    "max_buffers",
    "clock",
    "timestamp_syscalls",
    "trace_slot",
    "spill_slot",
    "fail_dynamic_buffers",
    "static_buffer_words",
    "max_dag_id",
    "scavenge_interval",
    "include_memory",
)


def config_to_dict(config: "RuntimeConfig") -> dict:
    """Serializable subset of a runtime config (no store, no dagbase)."""
    d = {name: getattr(config, name) for name in _CONFIG_FIELDS}
    d["policy"] = policy_to_dict(config.policy)
    return d


def config_from_dict(d: dict) -> "RuntimeConfig":
    """Rebuild a runtime config for replay (fresh snap store, no
    re-recording)."""
    from repro.runtime.runtime import RuntimeConfig

    config = RuntimeConfig(policy=policy_from_dict(d.get("policy", {})))
    for name in _CONFIG_FIELDS:
        if name in d:
            setattr(config, name, d[name])
    config.snap_store = None
    config.record_replay = False
    return config


# ----------------------------------------------------------------------
# Varint / zigzag codec (the v2 byte columns)
# ----------------------------------------------------------------------
def _write_uvarint(out: bytearray, value: int) -> None:
    """LEB128: 7 value bits per byte, high bit = continuation."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) if not (z & 1) else -((z + 1) >> 1)


class _ColumnReader:
    """Strict varint reader over one decoded column.

    Every malformed byte range — truncated varint, >64-bit overrun,
    trailing garbage — becomes a :class:`ReplayUnavailable` naming this
    column's segment, never a raw exception.
    """

    def __init__(self, segment: str, data: bytes):
        self.segment = segment
        self.data = data
        self.pos = 0

    def uvarint(self) -> int:
        data, start = self.data, self.pos
        shift = 0
        value = 0
        while True:
            if self.pos >= len(data):
                raise ReplayUnavailable(
                    self.segment,
                    f"{self.segment}: varint truncated at byte {start}",
                )
            byte = data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise ReplayUnavailable(
                    self.segment,
                    f"{self.segment}: varint at byte {start} overruns 64 bits",
                )

    def svarint(self) -> int:
        return _unzigzag(self.uvarint())

    def finish(self) -> None:
        if self.pos != len(self.data):
            raise ReplayUnavailable(
                self.segment,
                f"{self.segment}: {len(self.data) - self.pos} trailing "
                "byte(s) after the last value",
            )


def _column_bytes(slices: dict, key: str) -> bytes:
    raw = slices.get(key)
    segment = f"slices.{key}"
    if not isinstance(raw, str):
        raise ReplayUnavailable(segment, f"{segment} column missing or not a string")
    try:
        return base64.b64decode(raw.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
        raise ReplayUnavailable(
            segment, f"{segment}: not valid base64 ({exc})"
        ) from exc


# ----------------------------------------------------------------------
# v2 encoding
# ----------------------------------------------------------------------
def _coalesce(
    events: list, end_cycles: list | None
) -> tuple[list[list], list[list]]:
    """Split a v1 event stream into (slices, rare).

    ``slices`` entries are ``[tid, start, n, end_pc, partial]``; ``rare``
    entries are ``[pos, event]`` with ``pos`` the number of slices
    preceding the event.  When ``end_cycles`` (machine cycles at each
    slice's end, parallel to ``events``, None for non-slices) is
    available, adjacent same-thread slices with contiguous cycles merge
    into one — replay-equivalent because per-instruction cycle charging
    re-derives the intermediate boundary exactly.  A rare event, a
    prologue-only slice (n == 0), or a partial slice always breaks the
    run.
    """
    slices: list[list] = []
    rare: list[list] = []
    last_end: int | None = None
    for idx, event in enumerate(events):
        if event[0] == "s":
            tid = int(event[1])
            start = int(event[2])
            n = int(event[3])
            end_pc = int(event[4])
            partial = len(event) > 5 and bool(event[5])
            prev = slices[-1] if slices else None
            if (
                prev is not None
                and last_end is not None
                and prev[0] == tid
                and not prev[4]
                and prev[2] > 0
                and n > 0
                and start == last_end
            ):
                prev[2] += n
                prev[3] = end_pc
                prev[4] = partial
            else:
                slices.append([tid, start, n, end_pc, partial])
            last_end = (
                end_cycles[idx]
                if end_cycles is not None and idx < len(end_cycles)
                else None
            )
        else:
            rare.append([len(slices), list(event)])
            last_end = None
    return slices, rare


def encode_ndlog(
    header: dict, events: list, end_cycles: list | None = None
) -> dict:
    """Pack a v1-style event stream into a ``tb-ndlog/2`` dict.

    ``end_cycles`` enables slice coalescing (see :func:`_coalesce`);
    without it the encoding is a pure columnar re-layout and
    ``decode_events`` round-trips the stream exactly.
    """
    slices, rare = _coalesce(events, end_cycles)
    tids = bytearray()
    starts = bytearray()
    counts = bytearray()
    end_pcs = bytearray()
    i = 0
    while i < len(slices):
        tid = slices[i][0]
        j = i
        while j < len(slices) and slices[j][0] == tid:
            j += 1
        _write_uvarint(tids, tid)
        _write_uvarint(tids, j - i)
        i = j
    prev_start = prev_n = prev_pc = 0
    for tid, start, n, end_pc, _partial in slices:
        _write_uvarint(starts, _zigzag(start - prev_start))
        _write_uvarint(counts, _zigzag(n - prev_n))
        _write_uvarint(end_pcs, _zigzag(end_pc - prev_pc))
        prev_start, prev_n, prev_pc = start, n, end_pc

    def b64(column: bytearray) -> str:
        return base64.b64encode(bytes(column)).decode("ascii")

    return {
        "format": NDLOG_FORMAT_V2,
        "header": header,
        "n_events": len(slices) + len(rare),
        "slices": {
            "count": len(slices),
            "tids": b64(tids),
            "starts": b64(starts),
            "counts": b64(counts),
            "end_pcs": b64(end_pcs),
            "partial": [i for i, s in enumerate(slices) if s[4]],
        },
        "rare": rare,
    }


# ----------------------------------------------------------------------
# Shared per-field event checks (satellite: damaged JSON may carry
# wrong-typed fields that pass arity checks and explode as TypeError
# deep inside the engine — refuse them here, by name, instead)
# ----------------------------------------------------------------------
def _is_int(value) -> bool:
    return type(value) is int


def _is_word_list(value) -> bool:
    return isinstance(value, list) and all(type(w) is int for w in value)


def _is_opt_payload(value) -> bool:
    return value is None or isinstance(value, dict)


def _is_flag(value) -> bool:
    return type(value) in (int, bool)


#: tag -> per-field predicates, named, positions 1..n of the event list.
_EVENT_FIELDS = {
    "s": (
        ("tid", _is_int),
        ("start_cycle", _is_int),
        ("n", _is_int),
        ("end_pc", _is_int),
        ("partial", _is_flag),
    ),
    "sig": (("signum", _is_int),),
    "rr": (
        ("seq", _is_int),
        ("cycle", _is_int),
        ("status", _is_int),
        ("result_words", _is_word_list),
        ("reply_triple", _is_opt_payload),
    ),
    "rs": (
        ("cycle", _is_int),
        ("service", _is_int),
        ("args", _is_word_list),
        ("ret_cap", _is_int),
        ("triple", _is_opt_payload),
    ),
    "x": (
        ("cycle", _is_int),
        ("reason", lambda v: isinstance(v, str)),
        ("detail", lambda v: isinstance(v, dict)),
    ),
    "k": (("cycle", _is_int),),
}


def _check_event(segment: str, event) -> None:
    """Structural + per-field check of one v1-style event record."""
    if not isinstance(event, (list, tuple)) or not event:
        raise ReplayUnavailable(segment, f"{segment}: event malformed")
    tag = event[0]
    arities = _EVENT_ARITY.get(tag)
    if arities is None:
        raise ReplayUnavailable(segment, f"{segment}: unknown tag {tag!r}")
    if len(event) not in arities:
        raise ReplayUnavailable(
            segment,
            f"{segment} ({tag!r}): expected {arities} fields, got {len(event)}",
        )
    for (name, check), value in zip(_EVENT_FIELDS[tag], event[1:]):
        if not check(value):
            raise ReplayUnavailable(
                segment,
                f"{segment} ({tag!r}): field {name!r} has wrong type "
                f"{type(value).__name__} ({value!r})",
            )


# ----------------------------------------------------------------------
# Validation and decoding (both versions)
# ----------------------------------------------------------------------
def _validate_header(ndlog: dict) -> None:
    header = ndlog.get("header")
    if not isinstance(header, dict):
        raise ReplayUnavailable("header", "ndlog header missing or malformed")
    for key in _HEADER_REQUIRED:
        if key not in header:
            raise ReplayUnavailable(f"header.{key}")
    if not isinstance(header["modules"], list):
        raise ReplayUnavailable("header.modules", "module list malformed")
    if not isinstance(header["start_threads"], list):
        raise ReplayUnavailable("header.start_threads", "thread list malformed")


def _decode_v2(ndlog: dict) -> dict:
    """Strict decode of a ``tb-ndlog/2`` into the v1 in-memory layout.

    Decoding *is* the validation: every malformed byte range maps to a
    :class:`ReplayUnavailable` naming the damaged segment.
    """
    slices_meta = ndlog.get("slices")
    if not isinstance(slices_meta, dict):
        raise ReplayUnavailable("slices", "packed slice columns missing")
    count = slices_meta.get("count")
    if type(count) is not int or count < 0:
        raise ReplayUnavailable(
            "slices.count", f"slice count missing or malformed ({count!r})"
        )

    reader = _ColumnReader("slices.tids", _column_bytes(slices_meta, "tids"))
    tids: list[int] = []
    while len(tids) < count:
        tid = reader.uvarint()
        run = reader.uvarint()
        if run <= 0 or len(tids) + run > count:
            raise ReplayUnavailable(
                "slices.tids",
                f"slices.tids: run of {run} at byte {reader.pos} "
                f"overflows {count} slices",
            )
        tids.extend([tid] * run)
    reader.finish()

    def delta_column(key: str, floor_name: str) -> list[int]:
        col = _ColumnReader(f"slices.{key}", _column_bytes(slices_meta, key))
        values: list[int] = []
        level = 0
        for _ in range(count):
            level += col.svarint()
            if level < 0:
                raise ReplayUnavailable(
                    f"slices.{key}",
                    f"slices.{key}: delta stream drives {floor_name} "
                    f"negative ({level})",
                )
            values.append(level)
        col.finish()
        return values

    starts = delta_column("starts", "a start cycle")
    counts = delta_column("counts", "an instruction count")
    end_pcs = delta_column("end_pcs", "an end pc")

    partial = slices_meta.get("partial")
    if not isinstance(partial, list) or not all(
        type(i) is int and 0 <= i < count for i in partial
    ):
        raise ReplayUnavailable(
            "slices.partial", "partial-slice index list malformed"
        )
    partial_set = set(partial)

    rare = ndlog.get("rare")
    if not isinstance(rare, list):
        raise ReplayUnavailable("rare", "rare-event side list missing")
    last_pos = 0
    for j, entry in enumerate(rare):
        segment = f"rare[{j}]"
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or type(entry[0]) is not int
        ):
            raise ReplayUnavailable(
                segment, f"{segment}: expected [position, event] pair"
            )
        pos = entry[0]
        if pos < last_pos or pos > count:
            raise ReplayUnavailable(
                segment,
                f"{segment}: position {pos} out of order "
                f"(previous {last_pos}, {count} slices)",
            )
        last_pos = pos
        _check_event(segment, entry[1])
        if entry[1][0] == "s":
            raise ReplayUnavailable(
                segment, f"{segment}: scheduler slices belong in the columns"
            )

    declared = ndlog.get("n_events")
    if declared != count + len(rare):
        raise ReplayUnavailable(
            "events",
            f"ndlog declares {declared} events but carries "
            f"{count + len(rare)} (truncated or damaged log)",
        )

    events: list[list] = []
    ri = 0
    for i in range(count):
        while ri < len(rare) and rare[ri][0] <= i:
            events.append(list(rare[ri][1]))
            ri += 1
        event = [
            "s",
            tids[i],
            starts[i],
            counts[i],
            end_pcs[i],
        ]
        if i in partial_set:
            event.append(1)
        events.append(event)
    for entry in rare[ri:]:
        events.append(list(entry[1]))
    return {
        "format": NDLOG_FORMAT,
        "header": ndlog.get("header"),
        "events": events,
        "n_events": len(events),
    }


def _validate_v1(ndlog: dict) -> None:
    events = ndlog.get("events")
    if not isinstance(events, list):
        raise ReplayUnavailable("events", "ndlog event list missing")
    declared = ndlog.get("n_events")
    if declared != len(events):
        raise ReplayUnavailable(
            "events",
            f"ndlog declares {declared} events but carries {len(events)} "
            "(truncated or damaged log)",
        )
    for i, event in enumerate(events):
        _check_event(f"events[{i}]", event)


def decode_events(ndlog: dict) -> dict:
    """Validate any supported ndlog and return it in the v1 layout.

    v1 logs are returned as-is after structural + per-field checks; v2
    logs are strictly decoded (columns unpacked, rare events re-merged
    at their slice positions).  Raises :class:`ReplayUnavailable`
    naming the first missing or damaged segment.
    """
    if not isinstance(ndlog, dict):
        raise ReplayUnavailable("ndlog", "nondeterminism log is not a mapping")
    fmt = ndlog.get("format")
    if fmt not in NDLOG_FORMATS:
        raise ReplayUnavailable(
            "format",
            f"unknown ndlog format {fmt!r} (expected one of {NDLOG_FORMATS})",
        )
    _validate_header(ndlog)
    if fmt == NDLOG_FORMAT_V2:
        return _decode_v2(ndlog)
    _validate_v1(ndlog)
    return ndlog


def validate_ndlog(ndlog: dict) -> None:
    """Check structural integrity (either format); raise
    :class:`ReplayUnavailable` naming the first missing/damaged
    segment.  For v2 this fully decodes the packed columns — decoding
    is the only complete check of a byte-packed stream."""
    decode_events(ndlog)
