"""The nondeterminism log (``tb-ndlog/1``) carried inside snaps.

The TBVM is deterministic almost everywhere: the per-process PRNG is
seeded from the pid, allocation addresses and thread ids are assigned
sequentially, and every instruction/cycle charge is a pure function of
the executed stream.  What a single process cannot re-derive is the
*environment*: which thread the scheduler ran when (other processes on
the machine advance the shared cycle counter between slices), signals
posted from outside, replies to RPCs served elsewhere, inbound RPC
requests, host-initiated snaps, and ``kill -9``.  The ndlog records
exactly that — nothing else — so replaying a snap is "re-execute the
instruction stream, forcing each recorded decision at its recorded
point" (the execution-replay-via-VM idea of Oppitz, AADEBUG 2003).

Log layout (all plain JSON data, embedded under ``SnapFile.replay``)::

    {"format": "tb-ndlog/1",
     "header": {pid, process_name, machine, clock_skew, io_latency,
                engine, runtime_id, config, modules, start_threads,
                rpc_services, loopback_seqs, dagbase},
     "events": [...],
     "n_events": N}

Event records are compact tagged lists, chronological:

``["s", tid, start_cycle, n, end_pc, partial?]``
    One scheduler slice: thread ``tid`` ran ``n`` instructions starting
    at machine cycle ``start_cycle`` and stopped with ``pc == end_pc``.
    A trailing ``1`` marks the partial slice open when the snap was
    serialized (the fault point): its end pc is where the *hook* saw the
    thread, which a whole-instruction replay may legitimately pass.
``["sig", signum]``
    An externally posted signal, recorded at delivery (always
    immediately before the slice that delivers it).
``["rr", seq, cycle, status, result_words, reply_triple]``
    Completion of the ``seq``-th outbound RPC, served outside this
    process (remote machine, sibling process, or no server at all).
``["rs", cycle, service, args, ret_cap, triple]``
    An inbound RPC request from outside this process.
``["x", cycle, reason, detail]``
    A host-initiated snap (external snap utility, hang detector, group
    snap fan-out).
``["k", cycle]``
    ``kill -9``.

``n_events`` double-checks the event list length so chaos-damaged logs
are refused with a :class:`ReplayUnavailable` naming the missing
segment instead of silently diverging mid-replay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import RuntimeConfig
    from repro.runtime.snap import SnapPolicy

#: Version tag of the log format.
NDLOG_FORMAT = "tb-ndlog/1"

#: Event tag -> accepted arities.
_EVENT_ARITY = {
    "s": (5, 6),
    "sig": (2,),
    "rr": (6,),
    "rs": (6,),
    "x": (4,),
    "k": (2,),
}

#: Header keys a replay cannot start without.
_HEADER_REQUIRED = (
    "pid",
    "process_name",
    "machine",
    "clock_skew",
    "io_latency",
    "runtime_id",
    "config",
    "modules",
    "start_threads",
    "rpc_services",
)


class ReplayUnavailable(ValueError):
    """A snap cannot be replayed; ``segment`` names what is missing.

    Raised for legacy snaps recorded without an ndlog, for salvage-mode
    snaps whose log was damaged, and for runs using features the replay
    engine does not force (e.g. a dagbase file).
    """

    def __init__(self, segment: str, message: str | None = None):
        self.segment = segment
        super().__init__(message or f"replay unavailable: missing {segment}")


class ReplayDivergence(RuntimeError):
    """Replayed execution departed from the recorded run."""


# ----------------------------------------------------------------------
# Replayability status (satellite: always derivable from a snap header)
# ----------------------------------------------------------------------
def replayable_status(replay: dict | None) -> str:
    """Classify a snap's ``replay`` dict: ``full``/``seed-only``/``none``."""
    if not isinstance(replay, dict) or not replay:
        return "none"
    if isinstance(replay.get("ndlog"), dict):
        return "full"
    if isinstance(replay.get("seed"), dict):
        return "seed-only"
    return "none"


# ----------------------------------------------------------------------
# Config / policy serialization
# ----------------------------------------------------------------------
def policy_to_dict(policy: "SnapPolicy") -> dict:
    """Plain-data form of a snap policy (sets become sorted lists)."""
    return {
        "exception_codes": (
            None
            if policy.exception_codes is None
            else sorted(policy.exception_codes)
        ),
        "unhandled": policy.unhandled,
        "signals": None if policy.signals is None else sorted(policy.signals),
        "api": policy.api,
        "hang": policy.hang,
        "suppress_duplicates": policy.suppress_duplicates,
        "max_snaps": policy.max_snaps,
        "include_memory": policy.include_memory,
    }


def policy_from_dict(d: dict) -> "SnapPolicy":
    """Inverse of :func:`policy_to_dict`."""
    from repro.runtime.snap import SnapPolicy

    return SnapPolicy(
        exception_codes=(
            None
            if d.get("exception_codes") is None
            else {int(c) for c in d["exception_codes"]}
        ),
        unhandled=bool(d.get("unhandled", True)),
        signals=None if d.get("signals") is None else {int(s) for s in d["signals"]},
        api=bool(d.get("api", True)),
        hang=bool(d.get("hang", True)),
        suppress_duplicates=bool(d.get("suppress_duplicates", True)),
        max_snaps=int(d.get("max_snaps", 100)),
        include_memory=bool(d.get("include_memory", False)),
    )


#: RuntimeConfig scalar fields carried through the log verbatim.
_CONFIG_FIELDS = (
    "sub_buffer_words",
    "sub_buffers",
    "main_buffers",
    "max_buffers",
    "clock",
    "timestamp_syscalls",
    "trace_slot",
    "spill_slot",
    "fail_dynamic_buffers",
    "static_buffer_words",
    "max_dag_id",
    "scavenge_interval",
    "include_memory",
)


def config_to_dict(config: "RuntimeConfig") -> dict:
    """Serializable subset of a runtime config (no store, no dagbase)."""
    d = {name: getattr(config, name) for name in _CONFIG_FIELDS}
    d["policy"] = policy_to_dict(config.policy)
    return d


def config_from_dict(d: dict) -> "RuntimeConfig":
    """Rebuild a runtime config for replay (fresh snap store, no
    re-recording)."""
    from repro.runtime.runtime import RuntimeConfig

    config = RuntimeConfig(policy=policy_from_dict(d.get("policy", {})))
    for name in _CONFIG_FIELDS:
        if name in d:
            setattr(config, name, d[name])
    config.snap_store = None
    config.record_replay = False
    return config


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_ndlog(ndlog: dict) -> None:
    """Check structural integrity; raise :class:`ReplayUnavailable`
    naming the first missing/damaged segment."""
    if not isinstance(ndlog, dict):
        raise ReplayUnavailable("ndlog", "nondeterminism log is not a mapping")
    if ndlog.get("format") != NDLOG_FORMAT:
        raise ReplayUnavailable(
            "format",
            f"unknown ndlog format {ndlog.get('format')!r} "
            f"(expected {NDLOG_FORMAT!r})",
        )
    header = ndlog.get("header")
    if not isinstance(header, dict):
        raise ReplayUnavailable("header", "ndlog header missing or malformed")
    for key in _HEADER_REQUIRED:
        if key not in header:
            raise ReplayUnavailable(f"header.{key}")
    if not isinstance(header["modules"], list):
        raise ReplayUnavailable("header.modules", "module list malformed")
    if not isinstance(header["start_threads"], list):
        raise ReplayUnavailable("header.start_threads", "thread list malformed")
    events = ndlog.get("events")
    if not isinstance(events, list):
        raise ReplayUnavailable("events", "ndlog event list missing")
    declared = ndlog.get("n_events")
    if declared != len(events):
        raise ReplayUnavailable(
            "events",
            f"ndlog declares {declared} events but carries {len(events)} "
            "(truncated or damaged log)",
        )
    for i, event in enumerate(events):
        if not isinstance(event, (list, tuple)) or not event:
            raise ReplayUnavailable(f"events[{i}]", f"event {i} malformed")
        tag = event[0]
        arities = _EVENT_ARITY.get(tag)
        if arities is None:
            raise ReplayUnavailable(
                f"events[{i}]", f"event {i}: unknown tag {tag!r}"
            )
        if len(event) not in arities:
            raise ReplayUnavailable(
                f"events[{i}]",
                f"event {i} ({tag!r}): expected {arities} fields, "
                f"got {len(event)}",
            )
