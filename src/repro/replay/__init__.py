"""Deterministic time-travel replay: record a process's nondeterminism
log alongside its snap, then re-execute the run under a debugger.

See :mod:`repro.replay.ndlog` for the ``tb-ndlog/1`` / ``tb-ndlog/2``
formats, :mod:`repro.replay.record` for the recording side (enabled by
``RuntimeConfig.record_replay``), and :mod:`repro.replay.engine` for
the replay debugger.
"""

from repro.replay.engine import ReplayEngine
from repro.replay.ndlog import (
    NDLOG_FORMAT,
    NDLOG_FORMAT_V2,
    NDLOG_FORMATS,
    ReplayDivergence,
    ReplayUnavailable,
    config_from_dict,
    config_to_dict,
    decode_events,
    encode_ndlog,
    policy_from_dict,
    policy_to_dict,
    replayable_status,
    validate_ndlog,
)
from repro.replay.record import ReplayRecorder

__all__ = [
    "NDLOG_FORMAT",
    "NDLOG_FORMAT_V2",
    "NDLOG_FORMATS",
    "ReplayDivergence",
    "ReplayEngine",
    "ReplayRecorder",
    "ReplayUnavailable",
    "config_from_dict",
    "config_to_dict",
    "decode_events",
    "encode_ndlog",
    "policy_from_dict",
    "policy_to_dict",
    "replayable_status",
    "validate_ndlog",
]
