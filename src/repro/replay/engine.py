"""Deterministic time-travel replay of a recorded snap.

:class:`ReplayEngine` rebuilds the recorded process from the ndlog
header (same machine identity, pid, runtime id, modules, start
threads), then re-executes the run on the fast-dispatch engine,
forcing each recorded nondeterminism point:

* **slices** — the machine clock is forced to the recorded slice start
  (other processes on the recorded machine advanced it in between) and
  the recorded thread runs exactly the recorded instruction count;
* **signals** — re-posted just before their delivering slice;
* **RPC replies** (``rr``) — the recorded result words / status / SYNC
  triple complete the captured outbound request, bypassing the network;
* **inbound RPCs** (``rs``) — re-injected through the real
  ``spawn_service_thread`` path so callee-side allocations, thread ids,
  and SYNC records re-derive exactly;
* **external snaps / kill** — re-applied at their recorded cycles.

Everything else — arithmetic, memory, the per-process PRNG, clock
reads, trace-buffer writes, snap policy decisions — re-derives by
executing the same instruction stream on the seeded VM.  Divergence
(instruction-count or end-pc mismatch, a replay clock running ahead of
the recording, an unknown thread) raises :class:`ReplayDivergence`
rather than silently producing a different history.

The engine doubles as a debugger: breakpoints, single-stepping, and
register/memory/backtrace inspection between forced events.
"""

from __future__ import annotations

from repro.isa.module import Module
from repro.replay.ndlog import (
    ReplayDivergence,
    ReplayUnavailable,
    config_from_dict,
    decode_events,
)
from repro.runtime.runtime import TraceBackRuntime
from repro.runtime.snap import SnapFile
from repro.runtime.sync import PAYLOAD_KEY, LogicalThreadManager
from repro.vm.errors import VMFault
from repro.vm.machine import (
    ExitState,
    Machine,
    RpcRequest,
    spawn_service_thread,
)
from repro.vm.thread import Thread


class ReplayEngine:
    """Re-execute one snap's recorded run, stopping exactly at the fault."""

    def __init__(self, snap: SnapFile, breakpoints=None, engine: str = "fast"):
        replay = getattr(snap, "replay", None) or {}
        #: Which interpreter tier re-executes the run.  Replay is
        #: engine-agnostic: all tiers retire instructions on identical
        #: boundaries (the block engine falls back to per-instruction
        #: dispatch at partial slices), so forced slices and breakpoints
        #: land on the same instruction under any of them.
        self.engine = engine
        ndlog = replay.get("ndlog")
        if not isinstance(ndlog, dict):
            raise ReplayUnavailable(
                "ndlog",
                "snap carries no nondeterminism log (recorded without "
                "record_replay, or a legacy snap)",
            )
        # decode_events validates either format and hands back the
        # v1-layout event stream (v2 columns unpacked in one pass).
        decoded = decode_events(ndlog)
        header = decoded["header"]
        if header.get("dagbase"):
            raise ReplayUnavailable(
                "header.dagbase",
                "recorded run used a dagbase file, which replay does not force",
            )
        self.source_snap = snap
        self.header = header
        self._events: list = decoded["events"]
        self.breakpoints: set[int] = set(breakpoints or [])
        self._loopback = {int(s) for s in header.get("loopback_seqs", [])}
        self._idx = 0
        self._slice: dict | None = None
        self._skip_bp_once = False
        self._sent: dict[int, RpcRequest] = {}
        self._pending_rr: dict[int, list] = {}
        self._next_seq = 0
        self._stub_process = None
        self._last_thread: Thread | None = None
        self.status: dict | None = None
        self._build()

    # ------------------------------------------------------------------
    # Reconstruction of the initial state
    # ------------------------------------------------------------------
    def _build(self) -> None:
        h = self.header
        machine = Machine(
            name=h["machine"],
            clock_skew=h["clock_skew"],
            io_latency=h["io_latency"],
            engine=self.engine,
        )
        machine._next_pid = int(h["pid"])
        process = machine.create_process(h["process_name"])
        config = config_from_dict(h["config"])
        runtime = TraceBackRuntime(process, config, service=None)
        # The recorded runtime id must be reproduced exactly: SYNC
        # records embed it.  Safe to override here — nothing has been
        # written yet.
        runtime.runtime_id = int(h["runtime_id"])
        runtime.logical = LogicalThreadManager(runtime.runtime_id)
        for service_id, func in h["rpc_services"].items():
            process.register_rpc_service(int(service_id), func)
        try:
            for mdict in h["modules"]:
                process.load_module(Module.from_dict(mdict))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplayUnavailable(
                "header.modules", f"recorded module unusable: {exc}"
            ) from exc
        for t in h["start_threads"]:
            try:
                thread = process.create_thread(
                    int(t["entry_pc"]), arg=int(t["arg"]), name=t.get("name")
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ReplayUnavailable(
                    "header.start_threads", f"recorded thread unusable: {exc}"
                ) from exc
            if t.get("is_initial"):
                thread.is_initial = True
            if thread.tid != t["tid"]:
                raise ReplayDivergence(
                    f"start thread got tid {thread.tid}, recorded {t['tid']}"
                )
        machine.rpc_router = self._route_outbound
        self.machine = machine
        self.process = process
        self.runtime = runtime

    # ------------------------------------------------------------------
    # Outbound RPC routing during replay
    # ------------------------------------------------------------------
    def _route_outbound(self, request: RpcRequest) -> None:
        seq = self._next_seq
        self._next_seq += 1
        if seq in self._loopback:
            # Served by this very process at record time: re-dispatch
            # locally so the spawn happens inline, as recorded.
            self.machine.deliver_rpc_locally(request)
            return
        pending = self._pending_rr.pop(seq, None)
        if pending is not None:
            # Completed synchronously at record time (e.g. no server
            # found): apply the recorded completion right now, mid-slice.
            self._complete(request, pending)
            return
        self._sent[seq] = request  # completion (if any) arrives as "rr"

    def _complete(self, request: RpcRequest, ev: list) -> None:
        _, _seq, _cycle, status, result, triple = ev
        request.result = [int(w) & 0xFFFFFFFF for w in result]
        if triple is not None:
            request.extra_reply[PAYLOAD_KEY] = dict(triple)
        self.machine.complete_rpc(request, int(status))

    # ------------------------------------------------------------------
    # Forced-event application
    # ------------------------------------------------------------------
    def _force_cycles(self, cycle: int, what: str) -> None:
        if self.machine.cycles > cycle:
            raise ReplayDivergence(
                f"{what}: replay clock {self.machine.cycles} ran ahead of "
                f"recorded cycle {cycle}"
            )
        self.machine.cycles = cycle

    def _open_slice(self, ev: list) -> None:
        tag, tid, start_cycle, n, end_pc = ev[:5]
        partial = len(ev) > 5 and bool(ev[5])
        thread = self.process.threads.get(tid)
        if thread is None:
            raise ReplayDivergence(f"slice for unknown thread {tid}")
        self._force_cycles(start_cycle, f"slice tid={tid}")
        self.machine._wake_sleepers()
        if not thread.runnable():
            raise ReplayDivergence(
                f"recorded slice for thread {tid} but it is "
                f"{thread.state.value} ({thread.block_reason})"
            )
        self._last_thread = thread
        if n == 0:
            # Prologue-only slice (thread_started hook, signal death).
            self.machine.run_thread_slice(thread, 0)
            self._check_slice_end(thread, 0, 0, end_pc, partial)
            return
        self._slice = {
            "thread": thread,
            "n": int(n),
            "end_pc": int(end_pc),
            "partial": partial,
            "consumed": 0,
        }

    def _check_slice_end(
        self, thread: Thread, consumed: int, n: int, end_pc: int, partial: bool
    ) -> None:
        if consumed != n:
            raise ReplayDivergence(
                f"thread {thread.tid}: replayed {consumed} instructions "
                f"where the recording has {n}"
            )
        if not partial and thread.pc != end_pc:
            raise ReplayDivergence(
                f"thread {thread.tid}: slice ended at pc {thread.pc:#x}, "
                f"recorded {end_pc:#x}"
            )

    def _stub(self) -> tuple:
        """Lazy stand-in for remote RPC callers (created after the
        target process, so its pid never perturbs the target's)."""
        if self._stub_process is None:
            stub = self.machine.create_process("tb-replay-stub")
            caller = stub.create_thread(0, name="stub-caller")
            caller.block("replay-stub")
            self._stub_process = (stub, caller)
        return self._stub_process

    def _apply_rs(self, ev: list) -> None:
        _, cycle, service, args, ret_cap, triple = ev
        self._force_cycles(cycle, f"inbound rpc service={service}")
        stub, caller = self._stub()
        ret_addr = stub.alloc_words(max(1, int(ret_cap)), name="replay-rpc-ret")
        request = RpcRequest(
            service=int(service),
            args=[int(w) for w in args],
            caller_thread=caller,
            caller_process=stub,
            ret_addr=ret_addr,
            ret_cap=int(ret_cap),
        )
        if triple is not None:
            request.extra[PAYLOAD_KEY] = dict(triple)
        if int(service) not in self.process.rpc_services:
            raise ReplayDivergence(
                f"inbound rpc for unregistered service {service}"
            )
        spawn_service_thread(self.process, request)

    def _apply_rr(self, ev: list) -> None:
        seq = ev[1]
        request = self._sent.pop(seq, None)
        if request is None:
            # Not sent yet: the send happens inside an upcoming slice
            # (the recording completed it synchronously, mid-slice).
            self._pending_rr[seq] = ev
            return
        self._force_cycles(ev[2], f"rpc reply seq={seq}")
        self._complete(request, ev)

    def _apply_x(self, ev: list) -> None:
        _, cycle, reason, detail = ev
        self._force_cycles(cycle, f"external snap {reason!r}")
        self.runtime.snap_external(reason=reason, detail=dict(detail))

    def _apply_k(self, ev: list) -> None:
        self._force_cycles(ev[1], "kill")
        self.process.kill()

    # ------------------------------------------------------------------
    # The drive loop
    # ------------------------------------------------------------------
    def _drive(self, budget: int | None, honor_breakpoints: bool) -> dict:
        machine = self.machine
        executed = 0
        skip_bp = self._skip_bp_once
        self._skip_bp_once = False
        while True:
            if self._slice is None:
                if self._idx >= len(self._events):
                    return self._stop(
                        "fault" if self._faulted() else "end"
                    )
                ev = self._events[self._idx]
                self._idx += 1
                tag = ev[0]
                if tag == "s":
                    self._open_slice(ev)
                elif tag == "sig":
                    self.process.pending_signals.append(int(ev[1]))
                elif tag == "rr":
                    self._apply_rr(ev)
                elif tag == "rs":
                    self._apply_rs(ev)
                elif tag == "x":
                    self._apply_x(ev)
                else:  # "k" (tags are validated up front)
                    self._apply_k(ev)
                continue
            sl = self._slice
            thread = sl["thread"]
            if sl["consumed"] >= sl["n"]:
                self._slice = None
                self._check_slice_end(
                    thread, sl["consumed"], sl["n"], sl["end_pc"], sl["partial"]
                )
                continue
            if budget is not None and executed >= budget:
                return self._stop("step")
            if (
                honor_breakpoints
                and self.breakpoints
                and thread.pc in self.breakpoints
                and not skip_bp
            ):
                self._skip_bp_once = True
                return self._stop("breakpoint")
            skip_bp = False
            chunk = sl["n"] - sl["consumed"]
            if budget is not None:
                chunk = min(chunk, budget - executed)
            if honor_breakpoints and self.breakpoints:
                chunk = 1
            before = thread.instructions
            machine.run_thread_slice(thread, chunk)
            delta = thread.instructions - before
            sl["consumed"] += delta
            executed += delta
            if delta < chunk:
                # The thread stopped (blocked, exited, or the process
                # died) earlier than the recording says it should have.
                self._slice = None
                self._check_slice_end(
                    thread, sl["consumed"], sl["n"], sl["end_pc"], sl["partial"]
                )

    def _faulted(self) -> bool:
        return self.process.exit_state in (
            ExitState.FAULTED,
            ExitState.SIGNALED,
            ExitState.KILLED,
        )

    def _stop(self, reason: str) -> dict:
        thread = self.current_thread()
        fault = self.process.fault
        self.status = {
            "reason": reason,
            "pc": thread.pc if thread is not None else None,
            "tid": thread.tid if thread is not None else None,
            "cycle": self.machine.cycles,
            "events_applied": self._idx,
            "events_total": len(self._events),
            "exit_state": self.process.exit_state,
            "fault": (
                {"code": fault.code, "pc": fault.pc, "detail": fault.detail}
                if fault is not None
                else None
            ),
        }
        return self.status

    # ------------------------------------------------------------------
    # Debugger surface
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once every recorded event has been applied."""
        return self._slice is None and self._idx >= len(self._events)

    def add_breakpoint(self, pc: int) -> None:
        self.breakpoints.add(pc)

    def remove_breakpoint(self, pc: int) -> None:
        self.breakpoints.discard(pc)

    def step(self, n: int = 1) -> dict:
        """Execute up to ``n`` replayed instructions."""
        return self._drive(budget=n, honor_breakpoints=True)

    def cont(self) -> dict:
        """Run until a breakpoint, the fault, or the end of the log."""
        return self._drive(budget=None, honor_breakpoints=True)

    def run_to_fault(self) -> dict:
        """Replay every recorded event, ignoring breakpoints."""
        return self._drive(budget=None, honor_breakpoints=False)

    def current_thread(self) -> Thread | None:
        """The thread of the open (or most recent) slice."""
        if self._slice is not None:
            return self._slice["thread"]
        return self._last_thread

    def registers(self, tid: int | None = None) -> dict:
        """Architectural state of one thread (default: current)."""
        thread = self._thread(tid)
        return {
            "tid": thread.tid,
            "name": thread.name,
            "state": thread.state.value,
            "pc": thread.pc,
            "regs": list(thread.regs),
            "instructions": thread.instructions,
        }

    def read_memory(self, addr: int, count: int = 1) -> list[int | None]:
        """Read ``count`` words; unmapped words come back as ``None``."""
        words: list[int | None] = []
        for offset in range(count):
            try:
                words.append(self.process.memory.load(addr + offset))
            except VMFault:
                words.append(None)
        return words

    def backtrace(self, tid: int | None = None) -> list[dict]:
        """Source-resolved call stack, innermost frame first."""
        thread = self._thread(tid)
        pcs = [thread.pc]
        frames = thread.frames
        for idx in range(len(frames) - 1, 0, -1):
            pcs.append(frames[idx].return_pc - 1)
        return [self.resolve_pc(pc) for pc in pcs]

    def resolve_pc(self, pc: int) -> dict:
        """Map a pc to module/function/source line (best effort)."""
        out: dict = {"pc": pc}
        loaded = self.process.loader.find_code(pc)
        if loaded is None:
            return out
        rel = pc - loaded.code_base
        out["module"] = loaded.module.name
        func = loaded.module.func_at(rel)
        if func is not None:
            out["func"] = func.name
        line = loaded.module.line_at(rel)
        if line is not None:
            out["file"] = line.file
            out["line"] = line.line
        return out

    def threads(self) -> list[dict]:
        """Summaries of every thread in the replayed process."""
        return [
            {
                "tid": t.tid,
                "name": t.name,
                "state": t.state.value,
                "pc": t.pc,
                "block_reason": t.block_reason,
            }
            for _, t in sorted(self.process.threads.items())
        ]

    def _thread(self, tid: int | None) -> Thread:
        if tid is None:
            thread = self.current_thread()
            if thread is None:
                thread = self.process.main_thread()
            if thread is None and self.process.threads:
                thread = self.process.threads[min(self.process.threads)]
            if thread is None:
                raise ReplayDivergence("replayed process has no threads")
            return thread
        thread = self.process.threads.get(tid)
        if thread is None:
            raise ReplayDivergence(f"no thread {tid} in replayed process")
        return thread

    # ------------------------------------------------------------------
    def replayed_snap(self) -> SnapFile:
        """The snap the replayed run produced (for signature compare).

        The replayed runtime evaluates the same policy at the same hook
        points, so normally this is the exact counterpart of the source
        snap.  If policy produced nothing (snapless recording), build
        one at the stop point with the recorded reason/detail.
        """
        snap = self.runtime.snap_store.latest()
        if snap is not None:
            return snap
        return self.runtime.build_snap(
            self.source_snap.reason, dict(self.source_snap.detail)
        )
