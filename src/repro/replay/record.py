"""Recording side of deterministic replay.

A :class:`ReplayRecorder` rides alongside one :class:`TraceBackRuntime`
(enabled by ``RuntimeConfig.record_replay``) and captures the ndlog
described in :mod:`repro.replay.ndlog`.  It must be registered on the
process hook list *before* the runtime so it observes machine state
(cycle counts, RPC payloads) before the runtime's own record-writing
charges cycles — replay re-applies each forced event and lets the
replayed runtime re-charge identically.

What is deliberately **not** recorded:

* instruction results, allocations, PRNG draws, clock reads — all
  re-derived by executing the same stream on the seeded VM;
* loopback RPCs served by this very process (caller and callee both
  local): the whole send/spawn/complete chain happens inline in the
  caller's slice, deterministically.  Such sends are listed in the
  header's ``loopback_seqs`` so the replay router re-dispatches them
  locally instead of waiting for a recorded reply.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.replay.ndlog import NDLOG_FORMAT, config_to_dict, encode_ndlog
from repro.runtime.sync import PAYLOAD_KEY
from repro.vm.hooks import ProcessHooks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import TraceBackRuntime
    from repro.vm.loader import LoadedModule
    from repro.vm.machine import RpcRequest
    from repro.vm.thread import Thread


class ReplayRecorder(ProcessHooks):
    """Captures one process's nondeterminism log while it runs."""

    def __init__(self, runtime: "TraceBackRuntime"):
        self.runtime = runtime
        self.process = runtime.process
        self.machine = runtime.process.machine
        self.events: list[list] = []
        #: Machine cycles at each slice's end, parallel to ``events``
        #: (None for non-slice events).  Not part of the v1 format: it
        #: feeds the v2 encoder's coalescing check — two same-thread
        #: slices merge only when the second starts on the exact cycle
        #: the first ended (nothing else ran in between).
        self._end_cycles: list[int | None] = []
        self._modules: list[dict] = []
        self._start_threads: list[dict] | None = None
        #: Open slice: (thread, start_cycle, start_instruction_count).
        self._open: tuple = None
        self._rpc_seq: dict[int, int] = {}  # id(request) -> send sequence
        self._next_seq = 0
        self._loopback_seqs: set[int] = set()
        self.process.hooks.add(self)
        self.machine.slice_hooks.append(self)
        self.process._kill_observer = self._on_kill

    # ------------------------------------------------------------------
    # Scheduler slices (machine-level hooks; filter to our process)
    # ------------------------------------------------------------------
    def slice_begin(self, thread: "Thread") -> None:
        if thread.process is not self.process:
            return
        if self._start_threads is None:
            # First time our process is scheduled: every thread that
            # exists now was created host-side before the run and must
            # be re-created explicitly at replay (later threads come
            # from replayed THREAD_CREATE syscalls / inbound RPCs).
            self._snapshot_start_threads()
        self._open = (thread, self.machine.cycles, thread.instructions)

    def slice_end(self, thread: "Thread") -> None:
        if thread.process is not self.process:
            return
        opened, self._open = self._open, None
        if opened is None:
            return
        t, start_cycle, start_instr = opened
        self._append(
            ["s", t.tid, start_cycle, t.instructions - start_instr, t.pc],
            end_cycle=self.machine.cycles,
        )

    def _append(self, event: list, end_cycle: int | None = None) -> None:
        self.events.append(event)
        self._end_cycles.append(end_cycle)

    def _snapshot_start_threads(self) -> None:
        # RPC service threads may already exist (a request can arrive
        # before the process is ever scheduled); those are covered by
        # their "rs" event, which replays through the real spawn path.
        self._start_threads = [
            {
                "tid": t.tid,
                "entry_pc": t.entry_pc,
                "arg": t.regs[0],
                "name": t.name,
                "is_initial": bool(getattr(t, "is_initial", False)),
            }
            for _, t in sorted(self.process.threads.items())
            if getattr(t, "rpc_serving", None) is None
        ]

    # ------------------------------------------------------------------
    # Process hooks
    # ------------------------------------------------------------------
    def module_loaded(self, loaded: "LoadedModule") -> None:
        # Registered before the runtime, so the Module is serialized
        # before any rebasing applies to the loaded copy (the Module
        # object itself is never mutated; order makes that explicit).
        self._modules.append(loaded.module.to_dict())

    def signal(self, thread: "Thread", signum: int) -> None:
        # Delivery point of an externally posted signal: stream-ordered
        # just before the slice that delivers it (slices append at
        # slice_end).
        self._append(["sig", signum])

    def rpc_caller_send(self, thread: "Thread", request: "RpcRequest") -> None:
        self._rpc_seq[id(request)] = self._next_seq
        self._next_seq += 1

    def rpc_callee_enter(self, thread: "Thread", request: "RpcRequest") -> None:
        if request.caller_process is self.process:
            # Loopback: this process serving its own call, inline and
            # deterministic.  Mark the seq so replay dispatches locally.
            seq = self._rpc_seq.get(id(request))
            if seq is not None:
                self._loopback_seqs.add(seq)
            return
        triple = request.extra.get(PAYLOAD_KEY)
        self._append(
            [
                "rs",
                self.machine.cycles,
                request.service,
                [int(w) for w in request.args],
                request.ret_cap,
                dict(triple) if triple is not None else None,
            ]
        )

    def rpc_caller_return(self, thread: "Thread", request: "RpcRequest") -> None:
        seq = self._rpc_seq.pop(id(request), None)
        if seq is None or seq in self._loopback_seqs:
            return  # loopback completion is re-derived, not forced
        reply = request.extra_reply.get(PAYLOAD_KEY)
        self._append(
            [
                "rr",
                seq,
                self.machine.cycles,
                request.status,
                [int(w) for w in request.result],
                dict(reply) if reply is not None else None,
            ]
        )

    # ------------------------------------------------------------------
    # Host-side taps (not ProcessHooks)
    # ------------------------------------------------------------------
    def note_external_snap(self, reason: str, detail: dict) -> None:
        """Called by the runtime just before a host-initiated snap."""
        self._append(["x", self.machine.cycles, reason, dict(detail)])

    def _on_kill(self) -> None:
        self._append(["k", self.machine.cycles])

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self, version: int = 2) -> dict:
        """The ndlog as of this instant (called from ``build_snap``).

        A slice may be open — the snap is usually taken from a hook in
        the middle of one — so a synthetic partial slice (trailing
        ``1``) covers the instructions executed so far, ending with the
        faulting instruction itself.

        ``version`` selects the wire format: 2 (default) packs slices
        into the columnar ``tb-ndlog/2`` encoding; 1 emits the plain
        JSON ``tb-ndlog/1`` event list.  Both describe the same run and
        replay identically.
        """
        if version not in (1, 2):
            raise ValueError(f"unknown ndlog version: {version!r}")
        if self._start_threads is None:
            self._snapshot_start_threads()
        events = list(self.events)
        end_cycles = list(self._end_cycles)
        if self._open is not None:
            t, start_cycle, start_instr = self._open
            events.append(
                ["s", t.tid, start_cycle, t.instructions - start_instr, t.pc, 1]
            )
            end_cycles.append(None)  # partial: never coalesced into
        header = {
            "pid": self.process.pid,
            "process_name": self.process.name,
            "machine": self.machine.name,
            "clock_skew": self.machine.clock_skew,
            "io_latency": self.machine.io_latency,
            "engine": self.machine.engine,
            "runtime_id": self.runtime.runtime_id,
            "config": config_to_dict(self.runtime.config),
            "modules": self._modules,
            "start_threads": self._start_threads,
            "rpc_services": {
                str(k): v for k, v in self.process.rpc_services.items()
            },
            "loopback_seqs": sorted(self._loopback_seqs),
            "dagbase": self.runtime.config.dagbase is not None,
        }
        if version == 2:
            return encode_ndlog(header, events, end_cycles)
        return {
            "format": NDLOG_FORMAT,
            "header": header,
            "events": events,
            "n_events": len(events),
        }
