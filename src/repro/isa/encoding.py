"""Binary encoding and decoding of TBVM instructions.

Each instruction occupies one 32-bit little-endian word.  The encoder and
decoder are exact inverses for every legal instruction; this round-trip
property is what lets the instrumenter lift a binary module to an
abstract representation, rewrite it, and lower it back (the paper's
"lifted to an abstract graph representation ... and then lowered back to
a legal binary representation").
"""

from __future__ import annotations

from functools import lru_cache

from repro.isa.instructions import (
    FORMATS,
    IMM16_MAX,
    IMM16_MIN,
    IMM20_MAX,
    NUM_REGS,
    Fmt,
    Instr,
    Op,
)


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


_OP_SHIFT = 24
_RD_SHIFT = 20
_RS_SHIFT = 16
_RT_SHIFT = 12
_IMM16_MASK = 0xFFFF
_IMM20_MASK = 0xFFFFF
_REG_MASK = 0xF

_VALID_OPS = {op.value for op in Op}


def _check_reg(value: int, field: str, instr: Instr) -> None:
    if not 0 <= value < NUM_REGS:
        raise EncodingError(f"{field}={value} out of range in {instr}")


#: Opcodes whose 16-bit immediate is zero-extended rather than
#: sign-extended (bitwise ops, MOVHI, and the ORM probe op).
UNSIGNED_IMM_OPS = frozenset({Op.ANDI, Op.ORI, Op.XORI, Op.MOVHI, Op.ORM})


def _check_imm16(value: int, instr: Instr) -> None:
    if instr.op in UNSIGNED_IMM_OPS:
        if not 0 <= value <= 0xFFFF:
            raise EncodingError(f"unsigned imm16={value} out of range in {instr}")
    elif not IMM16_MIN <= value <= IMM16_MAX:
        raise EncodingError(f"imm16={value} out of range in {instr}")


def encode(instr: Instr) -> int:
    """Encode ``instr`` into its 32-bit word.

    Raises :class:`EncodingError` if a register index or immediate does
    not fit its field.
    """
    fmt = FORMATS[instr.op]
    word = instr.op.value << _OP_SHIFT
    if fmt in (Fmt.R3, Fmt.R2, Fmt.R1, Fmt.RI, Fmt.RRI, Fmt.RB, Fmt.RRB, Fmt.RI20):
        _check_reg(instr.rd, "rd", instr)
        word |= instr.rd << _RD_SHIFT
    if fmt in (Fmt.R3, Fmt.R2, Fmt.RRI, Fmt.RRB):
        _check_reg(instr.rs, "rs", instr)
        word |= instr.rs << _RS_SHIFT
    if fmt is Fmt.R3:
        _check_reg(instr.rt, "rt", instr)
        word |= instr.rt << _RT_SHIFT
    if fmt in (Fmt.RI, Fmt.RRI, Fmt.I16, Fmt.RB, Fmt.RRB):
        _check_imm16(instr.imm, instr)
        word |= instr.imm & _IMM16_MASK
    if fmt is Fmt.RI20:
        if not 0 <= instr.imm <= IMM20_MAX:
            raise EncodingError(f"imm20={instr.imm} out of range in {instr}")
        word |= instr.imm & _IMM20_MASK
    return word


@lru_cache(maxsize=1 << 16)
def decode(word: int) -> Instr:
    """Decode a 32-bit word into an :class:`Instr`.

    Raises :class:`EncodingError` for unknown opcodes, which is how the
    disassembler and CFG builder detect data mixed into a code section.

    Results are memoized: real modules repeat a small set of words
    (probes, NOPs, common ALU forms), and :class:`Instr` is frozen, so
    the loader's predecode pass can share one instance per word instead
    of re-deriving fields each time.
    """
    opcode = (word >> _OP_SHIFT) & 0xFF
    if opcode not in _VALID_OPS:
        raise EncodingError(f"unknown opcode 0x{opcode:02x} in word 0x{word:08x}")
    op = Op(opcode)
    fmt = FORMATS[op]
    rd = (word >> _RD_SHIFT) & _REG_MASK
    rs = (word >> _RS_SHIFT) & _REG_MASK
    rt = (word >> _RT_SHIFT) & _REG_MASK
    imm = word & _IMM16_MASK
    if imm > IMM16_MAX and op not in UNSIGNED_IMM_OPS:
        imm -= 1 << 16  # sign-extend

    if fmt is Fmt.R3:
        return Instr(op, rd=rd, rs=rs, rt=rt)
    if fmt is Fmt.R2:
        return Instr(op, rd=rd, rs=rs)
    if fmt is Fmt.R1:
        return Instr(op, rd=rd)
    if fmt is Fmt.RI:
        return Instr(op, rd=rd, imm=imm)
    if fmt is Fmt.RRI:
        return Instr(op, rd=rd, rs=rs, imm=imm)
    if fmt is Fmt.I16:
        return Instr(op, imm=imm)
    if fmt is Fmt.RI20:
        return Instr(op, rd=rd, imm=word & _IMM20_MASK)
    if fmt in (Fmt.RB, Fmt.RRB):
        if fmt is Fmt.RB:
            return Instr(op, rd=rd, imm=imm)
        return Instr(op, rd=rd, rs=rs, imm=imm)
    return Instr(op)  # Fmt.NONE


def encode_all(instrs: list[Instr]) -> list[int]:
    """Encode a code sequence into its word list."""
    return [encode(instr) for instr in instrs]


def decode_all(words: list[int]) -> list[Instr]:
    """Decode a word list back into instructions."""
    return [decode(word) for word in words]
