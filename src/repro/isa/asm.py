"""Two-pass textual assembler for TBVM.

The assembler turns ``.tbs`` assembly text into a :class:`~repro.isa.module.Module`.
It exists for three reasons: the MiniC compiler targets it, hand-written
test programs use it, and it keeps the binary format honest — everything
the instrumenter consumes went through a real encode step.

Syntax
------
One statement per line; ``;`` or ``#`` starts a comment.  Directives::

    .module NAME              module name
    .entry SYMBOL             entry-point symbol
    .import NAME              append NAME to the import table
    .export NAME              mark NAME as externally visible
    .func NAME / .endfunc     function extent (debug + handler scoping)
    .handler Lstart Lend Lcatch [code]
                              exception handler range for current .func
    .line FILE LINENO         attribute following code to a source line
    .code / .data / .rodata   switch sections
    .word V ...               emit literal words (data sections)
    .addr SYM ...             emit words relocated to symbol addresses
    .space N                  emit N zero words
    .str "TEXT"               emit one char code per word, NUL-terminated

Instructions use the mnemonics from :class:`repro.isa.instructions.Op`
(case-insensitive) with comma-separated operands.  Branch/call targets
are labels or literal offsets.  ``callx NAME`` takes an import name.
Pseudo-instructions::

    la  rd, SYMBOL            movhi+ori with HI16/LO16 relocations
    li  rd, VALUE             movi, or movhi+ori for wide values

Label definitions are ``NAME:`` at the start of a line and may share the
line with an instruction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.encoding import encode
from repro.isa.instructions import (
    FORMATS,
    IMM16_MAX,
    IMM16_MIN,
    Fmt,
    Instr,
    Op,
    parse_reg,
)
from repro.isa.module import FuncInfo, HandlerRange, LineEntry, Module, Reloc

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_MNEMONICS = {op.name.lower(): op for op in Op}


class AsmError(ValueError):
    """Assembly failure, annotated with the source line number."""

    def __init__(self, message: str, lineno: int):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


@dataclass
class _Item:
    """One assembled item: an instruction (possibly pending label fixup)
    or a raw word."""

    offset: int
    lineno: int
    instr: Instr | None = None
    word: int | None = None
    target: str | None = None  # label for pc-relative fixup
    import_name: str | None = None  # for CALLX


@dataclass
class _Section:
    words: list[int] = field(default_factory=list)


def _parse_int(text: str, lineno: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AsmError(f"bad integer {text!r}", lineno) from None


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


class Assembler:
    """Assembles one module.  Use :func:`assemble` for the one-shot API."""

    def __init__(self) -> None:
        self.module = Module(name="anonymous")
        self._section = "code"
        self._items: list[_Item] = []
        self._data: dict[str, _Section] = {"data": _Section(), "rodata": _Section()}
        self._data_relocs: list[Reloc] = []
        self._symbols: dict[str, tuple[str, int]] = {}
        self._exports: set[str] = set()
        self._current_func: tuple[str, int] | None = None
        self._pending_handlers: list[tuple[str, str, str, int | None, int]] = []
        self._func_handler_counts: dict[str, int] = {}
        self._func_frames: dict[str, int] = {}
        self._lines: list[LineEntry] = []
        self._code_len = 0

    # ------------------------------------------------------------------
    def assemble(self, text: str) -> Module:
        """Assemble ``text`` and return the finished module."""
        for lineno, raw in enumerate(text.splitlines(), start=1):
            self._line(raw, lineno)
        if self._current_func is not None:
            self._end_func()
        return self._finish()

    # ------------------------------------------------------------------
    def _line(self, raw: str, lineno: int) -> None:
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            return
        match = _LABEL_RE.match(line)
        if match and not line.startswith("."):
            self._define_label(match.group(1), lineno)
            line = match.group(2).strip()
            if not line:
                return
        if line.startswith("."):
            self._directive(line, lineno)
        else:
            self._instruction(line, lineno)

    def _define_label(self, name: str, lineno: int) -> None:
        if name in self._symbols:
            raise AsmError(f"duplicate label {name!r}", lineno)
        if self._section == "code":
            self._symbols[name] = ("code", self._code_len)
        else:
            self._symbols[name] = (self._section, len(self._data[self._section].words))

    # ------------------------------------------------------------------
    def _directive(self, line: str, lineno: int) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".module":
            self.module.name = rest.strip()
        elif name == ".entry":
            self.module.entry = rest.strip()
        elif name == ".import":
            symbol = rest.strip()
            if symbol not in self.module.imports:
                self.module.imports.append(symbol)
        elif name == ".export":
            self._exports.add(rest.strip())
        elif name in (".code", ".text"):
            self._section = "code"
        elif name == ".data":
            self._section = "data"
        elif name == ".rodata":
            self._section = "rodata"
        elif name == ".func":
            if self._current_func is not None:
                self._end_func()
            func_name = rest.strip()
            self._current_func = (func_name, self._code_len)
            self._define_label(func_name, lineno)
        elif name == ".endfunc":
            if self._current_func is None:
                raise AsmError(".endfunc without .func", lineno)
            self._end_func()
        elif name == ".frame":
            if self._current_func is None:
                raise AsmError(".frame outside .func", lineno)
            self._func_frames[self._current_func[0]] = _parse_int(rest, lineno)
        elif name == ".handler":
            if self._current_func is None:
                raise AsmError(".handler outside .func", lineno)
            fields = rest.split()
            if len(fields) not in (3, 4):
                raise AsmError(".handler wants: start end catch [code]", lineno)
            code = _parse_int(fields[3], lineno) if len(fields) == 4 else None
            self._pending_handlers.append(
                (fields[0], fields[1], fields[2], code, lineno)
            )
            self._func_handler_counts[self._current_func[0]] = (
                self._func_handler_counts.get(self._current_func[0], 0) + 1
            )
        elif name == ".line":
            fields = rest.split()
            if len(fields) != 2:
                raise AsmError(".line wants: FILE LINENO", lineno)
            entry = LineEntry(self._code_len, fields[0], _parse_int(fields[1], lineno))
            if self._lines and self._lines[-1].start == self._code_len:
                self._lines[-1] = entry
            else:
                self._lines.append(entry)
        elif name == ".word":
            self._need_data(lineno)
            for tok in rest.split():
                self._data[self._section].words.append(
                    _parse_int(tok, lineno) & 0xFFFFFFFF
                )
        elif name == ".addr":
            self._need_data(lineno)
            for tok in rest.split():
                section = self._data[self._section]
                self._data_relocs.append(
                    Reloc(self._section, len(section.words), "word", tok)
                )
                section.words.append(0)
        elif name == ".space":
            self._need_data(lineno)
            self._data[self._section].words.extend([0] * _parse_int(rest, lineno))
        elif name == ".str":
            self._need_data(lineno)
            text = rest.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AsmError('.str wants a double-quoted string', lineno)
            body = text[1:-1].encode().decode("unicode_escape")
            words = [ord(ch) for ch in body] + [0]
            self._data[self._section].words.extend(words)
        else:
            raise AsmError(f"unknown directive {name}", lineno)

    def _need_data(self, lineno: int) -> None:
        if self._section == "code":
            raise AsmError("data directive in .code section", lineno)

    def _end_func(self) -> None:
        name, start = self._current_func  # type: ignore[misc]
        self.module.funcs.append(
            FuncInfo(
                name=name,
                start=start,
                end=self._code_len,
                frame_size=self._func_frames.get(name, 0),
            )
        )
        self._current_func = None

    # ------------------------------------------------------------------
    def _instruction(self, line: str, lineno: int) -> None:
        if self._section != "code":
            raise AsmError("instruction outside .code section", lineno)
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(rest)

        if mnem == "la":
            self._pseudo_la(operands, lineno)
            return
        if mnem == "li":
            self._pseudo_li(operands, lineno)
            return
        op = _MNEMONICS.get(mnem)
        if op is None:
            raise AsmError(f"unknown mnemonic {mnem!r}", lineno)
        self._emit_op(op, operands, lineno)

    def _pseudo_la(self, operands: list[str], lineno: int) -> None:
        if len(operands) != 2:
            raise AsmError("la wants: rd, symbol", lineno)
        rd = parse_reg(operands[0])
        symbol = operands[1]
        self.module.relocs.append(Reloc("code", self._code_len, "hi16", symbol))
        self._emit(Instr(Op.MOVHI, rd=rd, imm=0), lineno)
        self.module.relocs.append(Reloc("code", self._code_len, "lo16", symbol))
        self._emit(Instr(Op.ORI, rd=rd, rs=rd, imm=0), lineno)

    def _pseudo_li(self, operands: list[str], lineno: int) -> None:
        if len(operands) != 2:
            raise AsmError("li wants: rd, value", lineno)
        rd = parse_reg(operands[0])
        value = _parse_int(operands[1], lineno)
        if IMM16_MIN <= value <= IMM16_MAX:
            self._emit(Instr(Op.MOVI, rd=rd, imm=value), lineno)
        else:
            value &= 0xFFFFFFFF
            self._emit(Instr(Op.MOVHI, rd=rd, imm=(value >> 16) & 0xFFFF), lineno)
            low = value & 0xFFFF
            if low:
                self._emit(Instr(Op.ORI, rd=rd, rs=rd, imm=low), lineno)

    def _emit_op(self, op: Op, operands: list[str], lineno: int) -> None:
        fmt = FORMATS[op]
        want = {
            Fmt.R3: 3, Fmt.R2: 2, Fmt.R1: 1, Fmt.RI: 2, Fmt.RRI: 3,
            Fmt.I16: 1, Fmt.RI20: 2, Fmt.RB: 2, Fmt.RRB: 3, Fmt.NONE: 0,
        }[fmt]
        if len(operands) != want:
            raise AsmError(f"{op.name} wants {want} operands", lineno)

        target: str | None = None
        import_name: str | None = None
        instr: Instr
        if fmt is Fmt.R3:
            instr = Instr(op, rd=parse_reg(operands[0]), rs=parse_reg(operands[1]),
                          rt=parse_reg(operands[2]))
        elif fmt is Fmt.R2:
            instr = Instr(op, rd=parse_reg(operands[0]), rs=parse_reg(operands[1]))
        elif fmt is Fmt.R1:
            instr = Instr(op, rd=parse_reg(operands[0]))
        elif fmt is Fmt.NONE:
            instr = Instr(op)
        elif fmt in (Fmt.RI, Fmt.RI20):
            rd = parse_reg(operands[0])
            instr = Instr(op, rd=rd, imm=_parse_int(operands[1], lineno))
        elif fmt is Fmt.RRI:
            instr = Instr(op, rd=parse_reg(operands[0]), rs=parse_reg(operands[1]),
                          imm=_parse_int(operands[2], lineno))
        elif fmt is Fmt.I16:
            if op is Op.CALLX:
                try:
                    # Raw import index (disassembler output round trip).
                    instr = Instr(op, imm=int(operands[0], 0))
                except ValueError:
                    import_name = operands[0]
                    instr = Instr(op, imm=0)
            else:
                instr, target = self._branch_imm(op, operands[0], lineno)
        elif fmt is Fmt.RB:
            rd = parse_reg(operands[0])
            base, target = self._branch_imm(op, operands[1], lineno)
            instr = Instr(op, rd=rd, imm=base.imm)
        else:  # Fmt.RRB
            rd = parse_reg(operands[0])
            rs = parse_reg(operands[1])
            base, target = self._branch_imm(op, operands[2], lineno)
            instr = Instr(op, rd=rd, rs=rs, imm=base.imm)
        self._emit(instr, lineno, target=target, import_name=import_name)

    def _branch_imm(self, op: Op, text: str, lineno: int) -> tuple[Instr, str | None]:
        """Parse a branch/call target: numeric offset or label reference."""
        try:
            return Instr(op, imm=int(text, 0)), None
        except ValueError:
            return Instr(op, imm=0), text

    def _emit(
        self,
        instr: Instr,
        lineno: int,
        target: str | None = None,
        import_name: str | None = None,
    ) -> None:
        self._items.append(
            _Item(
                offset=self._code_len,
                lineno=lineno,
                instr=instr,
                target=target,
                import_name=import_name,
            )
        )
        self._code_len += 1

    # ------------------------------------------------------------------
    def _finish(self) -> Module:
        module = self.module
        module.symbols = dict(self._symbols)
        module.lines = list(self._lines)
        module.relocs.extend(self._data_relocs)
        module.data = self._data["data"].words
        module.rodata = self._data["rodata"].words

        for item in self._items:
            instr = item.instr
            assert instr is not None
            if item.import_name is not None:
                if item.import_name not in module.imports:
                    raise AsmError(
                        f"callx of undeclared import {item.import_name!r}; "
                        "add a .import line",
                        item.lineno,
                    )
                instr = instr.with_imm(module.imports.index(item.import_name))
            elif item.target is not None:
                if item.target not in self._symbols:
                    raise AsmError(f"undefined label {item.target!r}", item.lineno)
                section, offset = self._symbols[item.target]
                if section != "code":
                    raise AsmError(
                        f"branch target {item.target!r} is in .{section}", item.lineno
                    )
                instr = instr.with_imm(offset - (item.offset + 1))
            module.code.append(encode(instr))

        for name in self._exports:
            if name not in self._symbols:
                raise AsmError(f".export of undefined symbol {name!r}", 0)
            section, offset = self._symbols[name]
            if section == "code":
                module.exports[name] = offset
        if module.entry and module.entry not in module.exports:
            if module.entry in self._symbols:
                module.exports[module.entry] = self._symbols[module.entry][1]

        for start_label, end_label, catch_label, code, lineno in self._pending_handlers:
            ranges = []
            for label in (start_label, end_label, catch_label):
                if label not in self._symbols or self._symbols[label][0] != "code":
                    raise AsmError(f"bad handler label {label!r}", lineno)
                ranges.append(self._symbols[label][1])
            handler = HandlerRange(ranges[0], ranges[1], ranges[2], code)
            func = module.func_at(handler.handler) or module.func_at(handler.start)
            if func is None:
                raise AsmError("handler outside any function", lineno)
            func.handlers.append(handler)

        return module


def assemble(text: str, name: str | None = None) -> Module:
    """Assemble ``text`` into a module; ``name`` overrides ``.module``."""
    module = Assembler().assemble(text)
    if name is not None:
        module.name = name
    return module
