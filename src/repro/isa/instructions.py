"""Instruction set definition for the TBVM virtual architecture.

TBVM is the 32-bit RISC-like instruction set that stands in for the x86 /
SPARC machine code instrumented by the original TraceBack system.  Every
instruction encodes into exactly one 32-bit word, which keeps binary
rewriting honest: the instrumenter must re-encode code, fix up
pc-relative branch offsets that moved, and never confuse code for data.

Registers
---------
There are 16 word-sized registers.  ``r0`` .. ``r11`` are general
purpose; ``sp`` (= ``r12``) is the stack pointer.  Registers ``r13`` and
``r15`` are reserved for future use, and ``r14`` is conventionally the
assembler temporary.  By software convention, arguments are passed in
``r0`` .. ``r5``, the result is returned in ``r0``, and all registers are
caller-saved.  The TraceBack probe register is ``r11`` (the analog of
``EAX`` in the paper's x86 probes): probe code uses it freely, spilling
and restoring it via a TLS scratch slot when liveness analysis says it is
live across the probe site.

Encodings
---------
All instructions are one word.  The generic field layout is::

    bits 31..24   opcode
    bits 23..20   rd
    bits 19..16   rs
    bits 15..12   rt           (R-type only)
    bits 15..0    imm16        (I-type; signed unless noted)
    bits 19..0    imm20        (STDAG only; unsigned)

Branch and call offsets are *word* offsets relative to the address of the
following instruction (``target = pc + 1 + offset``).

Probe-support instructions
--------------------------
The original probes exploit x86 CISC memory operands (``or [eax], 2``,
``cmp [eax], -1``).  TBVM is a RISC load/store machine, so three fused
opcodes exist purely so the instrumented probe sequences have the same
shape and dynamic cost as the paper's:

``ORM rd, imm16``
    ``mem[rd] |= zero_extend(imm16)`` — the lightweight probe body.
``STDAG rd, imm20``
    ``mem[rd] = 0x80000000 | (imm20 << 11)`` — writes a DAG header trace
    record in one instruction, mirroring x86's 32-bit store-immediate.
``BSENT rd, off``
    branch if ``mem[rd] == 0xFFFFFFFF`` — the sentinel check inside the
    heavyweight-probe helper subroutine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of architectural registers.
NUM_REGS = 16

#: Index of the stack pointer register.
SP = 12

#: Index of the assembler-temporary register.
AT = 14

#: Index of the register probes are written against (the "EAX" of TBVM).
PROBE_REG = 11

#: Word size of immediate fields.
IMM16_MIN = -(1 << 15)
IMM16_MAX = (1 << 15) - 1
IMM20_MAX = (1 << 20) - 1

#: Mask for 32-bit word arithmetic.
WORD_MASK = 0xFFFFFFFF


class Fmt(enum.Enum):
    """Operand format of an opcode, used by the encoder and disassembler."""

    R3 = "rd, rs, rt"  # three-register ALU op
    R2 = "rd, rs"  # two-register op (MOV, JTAB)
    R1 = "rd"  # single register (PUSH, POP, JMP, CALLR, THROW)
    RI = "rd, imm16"  # register + 16-bit immediate
    RRI = "rd, rs, imm16"  # two registers + 16-bit immediate
    I16 = "imm16"  # bare immediate (BR, CALL, SYS)
    RI20 = "rd, imm20"  # STDAG
    RB = "rd, off16"  # register + branch offset (BZ, BNZ, BSENT)
    RRB = "rd, rs, off16"  # compare-and-branch (BEQ, BNE, BLT, BGE)
    NONE = ""  # no operands (RET, HALT, NOP)


class Op(enum.IntEnum):
    """TBVM opcodes.

    The numeric values are part of the binary format: they are what
    :mod:`repro.isa.encoding` writes into bits 31..24 of each word, and
    changing them invalidates every encoded module and checksum.
    """

    # ALU, register-register.
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04  # traps with DivideByZero fault when rt == 0
    MOD = 0x05  # traps with DivideByZero fault when rt == 0
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    SHL = 0x09
    SHR = 0x0A
    SLT = 0x0B  # rd = (rs < rt) signed
    SLE = 0x0C
    SEQ = 0x0D
    SNE = 0x0E

    # ALU, register-immediate.
    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12  # zero-extended immediate
    XORI = 0x13
    SHLI = 0x14
    SHRI = 0x15
    SLTI = 0x16
    MULI = 0x17

    # Data movement.
    MOVI = 0x18  # rd = sign_extend(imm16)
    MOVHI = 0x19  # rd = imm16 << 16 (zero-extended immediate)
    MOV = 0x1A  # rd = rs

    # Memory.
    LDW = 0x20  # rd = mem[rs + imm16]
    STW = 0x21  # mem[rs + imm16] = rd
    PUSH = 0x22  # sp -= 1; mem[sp] = rd
    POP = 0x23  # rd = mem[sp]; sp += 1

    # Control flow.
    BR = 0x30  # unconditional pc-relative branch
    BZ = 0x31  # branch if rd == 0
    BNZ = 0x32  # branch if rd != 0
    BEQ = 0x33  # branch if rd == rs
    BNE = 0x34
    BLT = 0x35  # signed rd < rs
    BGE = 0x36
    JMP = 0x37  # indirect jump to address in rd
    JTAB = 0x38  # multiway: pc = mem[rs + rd] (rd is the scaled index)
    CALL = 0x39  # push return address; pc-relative call
    CALLR = 0x3A  # indirect call through rd
    CALLX = 0x3B  # cross-module call through import slot imm16
    RET = 0x3C  # pop return address into pc

    # System.
    SYS = 0x40  # syscall, number in imm16; args r0..r5, result r0
    THROW = 0x41  # raise software exception with code in rd
    HALT = 0x42  # terminate the process normally
    NOP = 0x43

    # Thread-local storage (the FS-segment analog).
    TLSLD = 0x48  # rd = tls[imm16]
    TLSST = 0x49  # tls[imm16] = rd

    # Probe support (see module docstring).
    ORM = 0x50  # mem[rd] |= zero_extend(imm16)
    STDAG = 0x51  # mem[rd] = 0x80000000 | (imm20 << 11)
    BSENT = 0x52  # branch if mem[rd] == 0xFFFFFFFF


#: Format of each opcode, consulted by encoder, decoder, and assembler.
FORMATS: dict[Op, Fmt] = {
    Op.ADD: Fmt.R3,
    Op.SUB: Fmt.R3,
    Op.MUL: Fmt.R3,
    Op.DIV: Fmt.R3,
    Op.MOD: Fmt.R3,
    Op.AND: Fmt.R3,
    Op.OR: Fmt.R3,
    Op.XOR: Fmt.R3,
    Op.SHL: Fmt.R3,
    Op.SHR: Fmt.R3,
    Op.SLT: Fmt.R3,
    Op.SLE: Fmt.R3,
    Op.SEQ: Fmt.R3,
    Op.SNE: Fmt.R3,
    Op.ADDI: Fmt.RRI,
    Op.ANDI: Fmt.RRI,
    Op.ORI: Fmt.RRI,
    Op.XORI: Fmt.RRI,
    Op.SHLI: Fmt.RRI,
    Op.SHRI: Fmt.RRI,
    Op.SLTI: Fmt.RRI,
    Op.MULI: Fmt.RRI,
    Op.MOVI: Fmt.RI,
    Op.MOVHI: Fmt.RI,
    Op.MOV: Fmt.R2,
    Op.LDW: Fmt.RRI,
    Op.STW: Fmt.RRI,
    Op.PUSH: Fmt.R1,
    Op.POP: Fmt.R1,
    Op.BR: Fmt.I16,
    Op.BZ: Fmt.RB,
    Op.BNZ: Fmt.RB,
    Op.BEQ: Fmt.RRB,
    Op.BNE: Fmt.RRB,
    Op.BLT: Fmt.RRB,
    Op.BGE: Fmt.RRB,
    Op.JMP: Fmt.R1,
    Op.JTAB: Fmt.R2,
    Op.CALL: Fmt.I16,
    Op.CALLR: Fmt.R1,
    Op.CALLX: Fmt.I16,
    Op.RET: Fmt.NONE,
    Op.SYS: Fmt.I16,
    Op.THROW: Fmt.R1,
    Op.HALT: Fmt.NONE,
    Op.NOP: Fmt.NONE,
    Op.TLSLD: Fmt.RI,
    Op.TLSST: Fmt.RI,
    Op.ORM: Fmt.RI,
    Op.STDAG: Fmt.RI20,
    Op.BSENT: Fmt.RB,
}

#: Opcodes that end a basic block (control may not fall through normally,
#: or may transfer elsewhere).  CALL-family opcodes end blocks because
#: TraceBack places a heavyweight probe at every call return point.
#: SYS ends blocks because the runtime may append event records
#: (timestamps, exception records) at syscalls — the paper's "inserts
#: timestamp probes at synchronization / OS-service artifacts" (§3.5) —
#: and the current DAG record must be complete before that happens.
BLOCK_ENDERS = frozenset(
    {
        Op.BR,
        Op.BZ,
        Op.BNZ,
        Op.BEQ,
        Op.BNE,
        Op.BLT,
        Op.BGE,
        Op.JMP,
        Op.JTAB,
        Op.CALL,
        Op.CALLR,
        Op.CALLX,
        Op.RET,
        Op.HALT,
        Op.THROW,
        Op.SYS,
    }
)

#: Opcodes with a pc-relative offset that the rewriter must fix up when
#: instructions are inserted between the branch and its target.
RELATIVE_BRANCHES = frozenset(
    {Op.BR, Op.BZ, Op.BNZ, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.CALL, Op.BSENT}
)

#: Conditional branches: two successors (taken target + fall-through).
CONDITIONAL_BRANCHES = frozenset(
    {Op.BZ, Op.BNZ, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BSENT}
)

#: Opcodes that transfer control without falling through.
UNCONDITIONAL_TRANSFERS = frozenset(
    {Op.BR, Op.JMP, Op.JTAB, Op.RET, Op.HALT, Op.THROW}
)

#: Opcodes that call (control returns to the following instruction).
CALLS = frozenset({Op.CALL, Op.CALLR, Op.CALLX})


@dataclass(frozen=True)
class Instr:
    """A decoded TBVM instruction.

    ``rd``, ``rs``, ``rt`` are register indexes and ``imm`` is the signed
    immediate / branch offset (or the unsigned imm20 for ``STDAG``).
    Fields that an opcode's format does not use are zero.
    """

    op: Op
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0

    @property
    def fmt(self) -> Fmt:
        """Operand format of this instruction's opcode."""
        return FORMATS[self.op]

    def ends_block(self) -> bool:
        """Whether this instruction terminates a basic block."""
        return self.op in BLOCK_ENDERS

    def is_call(self) -> bool:
        """Whether this instruction is a call (control returns after it)."""
        return self.op in CALLS

    def is_conditional(self) -> bool:
        """Whether this instruction is a two-way conditional branch."""
        return self.op in CONDITIONAL_BRANCHES

    def with_imm(self, imm: int) -> "Instr":
        """Return a copy of this instruction with a different immediate."""
        return Instr(self.op, self.rd, self.rs, self.rt, imm)


def reg_name(index: int) -> str:
    """Human-readable name of register ``index`` (``r3``, ``sp``, ...)."""
    if index == SP:
        return "sp"
    return f"r{index}"


def parse_reg(name: str) -> int:
    """Parse a register name produced by :func:`reg_name`.

    Raises :class:`ValueError` for anything that is not a register.
    """
    name = name.strip().lower()
    if name == "sp":
        return SP
    if name.startswith("r") and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < NUM_REGS:
            return index
    raise ValueError(f"not a register: {name!r}")
