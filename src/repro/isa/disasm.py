"""Disassembler: decoded instructions back to assembler-compatible text.

Used by the examples and the trace GUI views, and by tests to verify the
assemble → encode → decode → format round trip.
"""

from __future__ import annotations

from repro.isa.encoding import EncodingError, decode
from repro.isa.instructions import Fmt, Instr, reg_name
from repro.isa.module import Module


def format_instr(instr: Instr) -> str:
    """Render one instruction in assembler syntax."""
    mnem = instr.op.name.lower()
    fmt = instr.fmt
    if fmt is Fmt.R3:
        ops = f"{reg_name(instr.rd)}, {reg_name(instr.rs)}, {reg_name(instr.rt)}"
    elif fmt is Fmt.R2:
        ops = f"{reg_name(instr.rd)}, {reg_name(instr.rs)}"
    elif fmt is Fmt.R1:
        ops = reg_name(instr.rd)
    elif fmt in (Fmt.RI, Fmt.RI20, Fmt.RB):
        ops = f"{reg_name(instr.rd)}, {instr.imm}"
    elif fmt in (Fmt.RRI, Fmt.RRB):
        ops = f"{reg_name(instr.rd)}, {reg_name(instr.rs)}, {instr.imm}"
    elif fmt is Fmt.I16:
        ops = str(instr.imm)
    else:
        ops = ""
    return f"{mnem} {ops}".rstrip()


def disassemble(module: Module, start: int = 0, end: int | None = None) -> list[str]:
    """Disassemble ``module.code[start:end]``, one line per word.

    Words that do not decode (data interleaved in code would be a bug in
    our toolchain, but trace buffers are also word arrays) are rendered
    as ``.word 0x...``.
    """
    if end is None:
        end = len(module.code)
    out = []
    for offset in range(start, end):
        try:
            text = format_instr(decode(module.code[offset]))
        except EncodingError:
            text = f".word 0x{module.code[offset]:08x}"
        out.append(f"{offset:6d}: {text}")
    return out
