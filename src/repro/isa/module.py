"""Binary module format for TBVM.

A :class:`Module` is the unit of instrumentation, loading, and unloading
— the analog of a Windows DLL / EXE or a Unix shared object in the
original system.  It carries:

* encoded code words plus writable (``data``) and read-only (``rodata``)
  data sections;
* a symbol table of exports and a table of imports resolved at load time
  (``CALLX`` indexes into it, like a PLT);
* relocations, because code refers to data and jump tables refer to code
  by absolute address that is only known once the loader places the
  module;
* debug metadata: a function table with exception-handler ranges (the
  SEH analog) and a source line table;
* instrumentation metadata added by the TraceBack rewriter: the default
  DAG id range, fixup tables for DAG rebasing and TLS-slot rewriting
  (paper §2.3 / §2.5), and the module checksum that keys runtime state
  and mapfile matching.

The checksum deliberately excludes the ``timestamp`` field, mirroring the
paper's "MD5 checksum of most of it (omitting timestamps and other data
that can change easily)".
"""

from __future__ import annotations

import hashlib
import struct
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.isa.encoding import decode
from repro.isa.instructions import Instr


class RelocKind:
    """Relocation kinds understood by the loader."""

    #: Patch the low 16 bits of an instruction immediate with the low
    #: half of the symbol's absolute address.
    LO16 = "lo16"
    #: Patch the immediate with the high half of the absolute address
    #: (used with ``MOVHI``).
    HI16 = "hi16"
    #: Patch a full data/rodata word with the symbol's absolute address
    #: (jump tables, function pointers).
    WORD = "word"


@dataclass(frozen=True)
class Reloc:
    """One relocation: patch ``section[offset]`` per ``kind`` with ``symbol``."""

    section: str  # "code", "data", or "rodata"
    offset: int
    kind: str
    symbol: str


@dataclass(frozen=True)
class HandlerRange:
    """An exception-handler range: the SEH / try-catch analog.

    If an exception is raised while ``pc`` is in ``[start, end)`` of this
    function, control transfers to ``handler`` with the exception code in
    ``r0``.  ``code`` restricts the handler to one exception code, or
    ``None`` for a catch-all.
    """

    start: int
    end: int
    handler: int
    code: int | None = None

    def matches(self, pc: int, exc_code: int) -> bool:
        """Whether this range covers ``pc`` and catches ``exc_code``."""
        if not self.start <= pc < self.end:
            return False
        return self.code is None or self.code == exc_code


@dataclass
class FuncInfo:
    """Debug record for one function: name, code extent, handlers.

    ``frame_size`` is the number of stack words the prologue reserves;
    the unwinder uses it to restore ``sp`` when transferring control to
    one of this function's exception handlers.
    """

    name: str
    start: int
    end: int
    handlers: list[HandlerRange] = field(default_factory=list)
    frame_size: int = 0

    def contains(self, offset: int) -> bool:
        """Whether ``offset`` lies within this function's code."""
        return self.start <= offset < self.end


@dataclass(frozen=True)
class LineEntry:
    """Maps code offsets ``>= start`` (up to the next entry) to a source line."""

    start: int
    file: str
    line: int


@dataclass
class Module:
    """A TBVM binary module.  See the package docstring for the role of
    each field."""

    name: str
    code: list[int] = field(default_factory=list)
    data: list[int] = field(default_factory=list)
    rodata: list[int] = field(default_factory=list)
    exports: dict[str, int] = field(default_factory=dict)
    imports: list[str] = field(default_factory=list)
    #: All module-local symbols: name -> (section, offset).  Relocations
    #: refer to these; ``exports`` is the subset visible to other modules.
    symbols: dict[str, tuple[str, int]] = field(default_factory=dict)
    relocs: list[Reloc] = field(default_factory=list)
    funcs: list[FuncInfo] = field(default_factory=list)
    lines: list[LineEntry] = field(default_factory=list)
    entry: str | None = None
    timestamp: int = 0

    # --- Instrumentation metadata (absent until the rewriter runs). ---
    #: First DAG id this module's probes use by default.
    dag_base: int | None = None
    #: Number of DAG ids the module consumes.
    dag_count: int = 0
    #: Code offsets of STDAG instructions, for DAG rebasing (§2.3).  The
    #: encoded imm20 is ``dag_base + local_index``; rebasing rewrites it.
    dag_fixups: list[int] = field(default_factory=list)
    #: Code offsets of TLSLD/TLSST probe instructions, for TLS-index
    #: rewriting when the preferred slot is taken (§2.5).
    tls_fixups: list[int] = field(default_factory=list)
    #: True once the TraceBack rewriter has processed this module.
    instrumented: bool = False

    # ------------------------------------------------------------------
    # Checksums and identity
    # ------------------------------------------------------------------
    def checksum(self) -> str:
        """MD5 checksum keying this module's runtime and mapfile state.

        Covers code, both data sections, exports, imports, and debug
        metadata — everything except ``timestamp`` and instrumentation
        fixups, so a rebuilt-but-identical module keeps its identity.
        """
        h = hashlib.md5()
        h.update(self.name.encode())
        for section in (self.code, self.rodata, self.data):
            h.update(struct.pack(f"<{len(section)}I", *[w & 0xFFFFFFFF for w in section]))
        for name in sorted(self.exports):
            h.update(f"{name}@{self.exports[name]}".encode())
        for name in self.imports:
            h.update(name.encode())
        for func in self.funcs:
            h.update(f"{func.name}:{func.start}:{func.end}".encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Debug queries
    # ------------------------------------------------------------------
    def func_at(self, offset: int) -> FuncInfo | None:
        """The function containing code ``offset``, or ``None``."""
        for func in self.funcs:
            if func.contains(offset):
                return func
        return None

    def func_named(self, name: str) -> FuncInfo | None:
        """Look up a function by name, or ``None``."""
        for func in self.funcs:
            if func.name == name:
                return func
        return None

    def line_at(self, offset: int) -> LineEntry | None:
        """The source line covering code ``offset``, or ``None``.

        Entries are kept sorted by ``start``; the covering entry is the
        last one at or before ``offset``, clipped to the containing
        function so padding between functions maps to nothing.

        The start-offset list is cached (keyed by the line-table length,
        which only grows while a module is being built): reconstruction
        calls this per replayed step, and rebuilding the list each call
        made it O(table) per lookup.
        """
        if not self.lines:
            return None
        cached = getattr(self, "_line_starts", None)
        if cached is None or len(cached) != len(self.lines):
            cached = [entry.start for entry in self.lines]
            self._line_starts = cached
        idx = bisect_right(cached, offset) - 1
        if idx < 0:
            return None
        return self.lines[idx]

    def instr_at(self, offset: int) -> Instr:
        """Decode the instruction at code ``offset``."""
        return decode(self.code[offset])

    def entry_offset(self) -> int:
        """Code offset of the module entry point.

        Prefers the explicit ``entry`` symbol, then an exported ``main``.
        Raises :class:`KeyError` if the module has no entry.
        """
        if self.entry is not None:
            return self.exports[self.entry]
        return self.exports["main"]

    # ------------------------------------------------------------------
    # Serialization (snap metadata, mapfile cross-checks)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form, suitable for JSON embedding in snap files."""
        return {
            "name": self.name,
            "code": list(self.code),
            "data": list(self.data),
            "rodata": list(self.rodata),
            "exports": dict(self.exports),
            "imports": list(self.imports),
            "symbols": {k: list(v) for k, v in self.symbols.items()},
            "relocs": [
                [r.section, r.offset, r.kind, r.symbol] for r in self.relocs
            ],
            "funcs": [
                {
                    "name": f.name,
                    "start": f.start,
                    "end": f.end,
                    "handlers": [
                        [h.start, h.end, h.handler, h.code] for h in f.handlers
                    ],
                    "frame_size": f.frame_size,
                }
                for f in self.funcs
            ],
            "lines": [[e.start, e.file, e.line] for e in self.lines],
            "entry": self.entry,
            "timestamp": self.timestamp,
            "dag_base": self.dag_base,
            "dag_count": self.dag_count,
            "dag_fixups": list(self.dag_fixups),
            "tls_fixups": list(self.tls_fixups),
            "instrumented": self.instrumented,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Module":
        """Inverse of :meth:`to_dict`."""
        module = cls(
            name=payload["name"],
            code=list(payload["code"]),
            data=list(payload["data"]),
            rodata=list(payload["rodata"]),
            exports=dict(payload["exports"]),
            imports=list(payload["imports"]),
            symbols={k: (v[0], v[1]) for k, v in payload.get("symbols", {}).items()},
            relocs=[Reloc(*item) for item in payload["relocs"]],
            funcs=[
                FuncInfo(
                    name=f["name"],
                    start=f["start"],
                    end=f["end"],
                    handlers=[HandlerRange(*h) for h in f["handlers"]],
                    frame_size=f.get("frame_size", 0),
                )
                for f in payload["funcs"]
            ],
            lines=[LineEntry(*item) for item in payload["lines"]],
            entry=payload["entry"],
            timestamp=payload["timestamp"],
        )
        module.dag_base = payload["dag_base"]
        module.dag_count = payload["dag_count"]
        module.dag_fixups = list(payload["dag_fixups"])
        module.tls_fixups = list(payload["tls_fixups"])
        module.instrumented = payload["instrumented"]
        return module
