"""TBVM instruction set: the binary substrate TraceBack instruments.

Public surface: :class:`Op`, :class:`Instr`, :func:`encode`,
:func:`decode`, :func:`assemble`, :class:`Module`, and the disassembler.
"""

from repro.isa.asm import AsmError, Assembler, assemble
from repro.isa.disasm import disassemble, format_instr
from repro.isa.encoding import EncodingError, decode, decode_all, encode, encode_all
from repro.isa.instructions import (
    AT,
    NUM_REGS,
    PROBE_REG,
    SP,
    Fmt,
    Instr,
    Op,
    parse_reg,
    reg_name,
)
from repro.isa.module import (
    FuncInfo,
    HandlerRange,
    LineEntry,
    Module,
    Reloc,
    RelocKind,
)

__all__ = [
    "AT",
    "AsmError",
    "Assembler",
    "EncodingError",
    "Fmt",
    "FuncInfo",
    "HandlerRange",
    "Instr",
    "LineEntry",
    "Module",
    "NUM_REGS",
    "Op",
    "PROBE_REG",
    "Reloc",
    "RelocKind",
    "SP",
    "assemble",
    "decode",
    "decode_all",
    "disassemble",
    "encode",
    "encode_all",
    "format_instr",
    "parse_reg",
    "reg_name",
]
