"""TraceBack instrumentation: DAG tiling, probes, binary rewriting."""

from repro.instrument.dagbase import DagBaseError, DagBaseFile
from repro.instrument.mapfile import BlockMap, DagMap, Mapfile
from repro.instrument.probes import (
    BUFFER_WRAP_IMPORT,
    CATCH_IMPORT,
    HELPER_NAME,
    header_probe,
    helper_body,
    light_probe,
)
from repro.instrument.rewriter import (
    DEFAULT_DAG_BASE,
    InstrumentConfig,
    InstrumentError,
    InstrumentStats,
    InstrumentationResult,
    instrument_module,
)
from repro.instrument.tiling import (
    DagPlan,
    TilingPlan,
    decode_path,
    encode_path,
    feasible_paths,
    required_headers,
    tile,
)

__all__ = [
    "BUFFER_WRAP_IMPORT",
    "BlockMap",
    "CATCH_IMPORT",
    "DEFAULT_DAG_BASE",
    "DagBaseError",
    "DagBaseFile",
    "DagMap",
    "DagPlan",
    "HELPER_NAME",
    "InstrumentConfig",
    "InstrumentError",
    "InstrumentStats",
    "InstrumentationResult",
    "Mapfile",
    "TilingPlan",
    "decode_path",
    "encode_path",
    "feasible_paths",
    "header_probe",
    "helper_body",
    "instrument_module",
    "light_probe",
    "required_headers",
    "tile",
]
