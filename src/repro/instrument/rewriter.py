"""Static binary rewriting: inject probes, relayout, fix everything up.

This is the paper's §2 pipeline: lift each function to a CFG, tile it
into DAGs, choose probe registers via liveness, then lower back to "a
legal binary representation" — re-encoding every instruction, patching
every pc-relative branch whose span changed (the Szymanski
span-dependent-assembly problem), remapping symbols, function extents,
exception handler ranges, source line tables, and relocations, and
appending the probe helper subroutine to the module.

The result is a new :class:`~repro.isa.module.Module` that computes the
same thing as the original while recording its control flow, plus the
:class:`~repro.instrument.mapfile.Mapfile` that reconstruction needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.liveness import Liveness
from repro.instrument.mapfile import BlockMap, DagMap, Mapfile
from repro.instrument.probes import (
    BUFFER_WRAP_IMPORT,
    CATCH_IMPORT,
    CATCH_STUB_SIZE,
    HELPER_NAME,
    HELPER_TLS_OFFSETS,
    catch_stub,
    header_probe,
    helper_body,
    light_probe,
)
from repro.instrument.tiling import TilingPlan, tile
from repro.isa.encoding import EncodingError, encode
from repro.isa.instructions import (
    PROBE_REG,
    RELATIVE_BRANCHES,
    Instr,
    Op,
)
from repro.isa.module import FuncInfo, HandlerRange, LineEntry, Module, Reloc
from repro.runtime.records import MAX_DAG_ID, PATH_BITS
from repro.vm.thread import TLS_PROBE_SPILL, TLS_TRACE_PTR

#: The deliberately-universal default DAG base: every module compiled
#: with defaults claims the same range, so multi-module processes
#: exercise DAG rebasing exactly as the paper describes (§2.3).
DEFAULT_DAG_BASE = 16

#: Source-file name attributed to injected instrumentation code.
INJECTED_FILE = "<traceback>"


class InstrumentError(Exception):
    """Instrumentation failed (module too large, bad metadata, ...)."""


@dataclass
class InstrumentConfig:
    """Knobs for one instrumentation run."""

    #: "native": exception addresses trim blocks (§2.4 native path).
    #: "il": blocks split at source lines + injected catch-alls (the
    #: Java/MSIL path; more probes, line-accurate exceptions).
    mode: str = "native"
    dag_base: int = DEFAULT_DAG_BASE
    tls_slot: int = TLS_TRACE_PTR
    spill_slot: int = TLS_PROBE_SPILL
    path_bits: int = PATH_BITS
    #: Inject a catch-all handler + runtime call per function.  Defaults
    #: to the mode's convention (IL yes, native no).
    il_catch_all: bool | None = None

    @property
    def catch_all(self) -> bool:
        if self.il_catch_all is not None:
            return self.il_catch_all
        return self.mode == "il"


@dataclass
class InstrumentStats:
    """Probe census for one module (drives the overhead analysis)."""

    dags: int = 0
    header_probes: int = 0
    light_probes: int = 0
    implied_blocks: int = 0
    spills: int = 0
    catch_stubs: int = 0
    original_words: int = 0
    instrumented_words: int = 0

    @property
    def size_growth(self) -> float:
        """Text-section growth factor (paper: ~1.6x for SPECint)."""
        if not self.original_words:
            return 1.0
        return self.instrumented_words / self.original_words


@dataclass
class InstrumentationResult:
    """Everything instrumentation produces for one module."""

    module: Module
    mapfile: Mapfile
    stats: InstrumentStats


@dataclass
class _Item:
    """One word of the output layout."""

    instr: Instr
    old_offset: int | None = None  # original instruction's old offset
    fix_call_to_helper: bool = False
    is_probe_tls: bool = False
    is_stdag: bool = False


def instrument_module(
    module: Module, config: InstrumentConfig | None = None
) -> InstrumentationResult:
    """Instrument ``module``; returns the rewritten module + mapfile.

    The input module is not modified.
    """
    config = config or InstrumentConfig()
    if module.instrumented:
        raise InstrumentError(f"module {module.name!r} is already instrumented")

    funcs = sorted(module.funcs, key=lambda f: f.start)
    stats = InstrumentStats(original_words=len(module.code))

    # ------------------------------------------------------------------
    # Analyze: CFG + tiling + liveness per function.
    # ------------------------------------------------------------------
    analyses: dict[str, tuple[CFG, TilingPlan, Liveness]] = {}
    for func in funcs:
        cfg = build_cfg(module, func, split_at_lines=(config.mode == "il"))
        plan = tile(
            cfg,
            path_bits=config.path_bits,
            elide_implied=(config.mode != "il"),
        )
        analyses[func.name] = (cfg, plan, Liveness(cfg))

    # Module-local DAG numbering: function order, then plan order, then
    # one extra DAG per function for its catch stub.
    dag_local: dict[tuple[str, int], int] = {}
    counter = 0
    stub_dag: dict[str, int] = {}
    for func in funcs:
        _, plan, _ = analyses[func.name]
        for dag in plan.dags:
            dag_local[(func.name, dag.index)] = counter
            counter += 1
        if config.catch_all:
            stub_dag[func.name] = counter
            counter += 1
    dag_count = counter
    if config.dag_base + dag_count > MAX_DAG_ID:
        raise InstrumentError(
            f"module {module.name!r}: {dag_count} DAGs do not fit above "
            f"base {config.dag_base}"
        )

    wrap_import_index = len(module.imports)
    catch_import_index = wrap_import_index + 1  # only used when catch_all

    # ------------------------------------------------------------------
    # Layout pass.
    # ------------------------------------------------------------------
    items: list[_Item] = []
    probe_begin: dict[int, int] = {}
    newpos_instr: dict[int, int] = {}
    func_start_new: dict[str, int] = {}
    func_body_end_new: dict[str, int] = {}
    func_end_new: dict[str, int] = {}
    stub_pos: dict[str, int] = {}
    func_by_offset: dict[int, FuncInfo] = {}
    for func in funcs:
        for off in range(func.start, func.end):
            func_by_offset[off] = func

    def emit_probe(instrs: list[Instr], helper_call_at: int | None) -> None:
        for i, instr in enumerate(instrs):
            items.append(
                _Item(
                    instr=instr,
                    fix_call_to_helper=(i == helper_call_at),
                    is_probe_tls=instr.op in (Op.TLSLD, Op.TLSST),
                    is_stdag=instr.op is Op.STDAG,
                )
            )

    for old in range(len(module.code)):
        func = func_by_offset.get(old)
        probe_begin[old] = len(items)
        if func is not None:
            if old == func.start:
                func_start_new[func.name] = len(items)
            cfg, plan, live = analyses[func.name]
            probe = plan.block_probe.get(old)
            if probe is not None and probe[0] in ("header", "light"):
                spill = PROBE_REG in live.live_in[old]
                if spill:
                    stats.spills += 1
                if probe[0] == "header":
                    dag_id = config.dag_base + dag_local[(func.name, probe[1])]
                    call_at = 1 if spill else 0
                    emit_probe(header_probe(dag_id, spill=spill,
                                            spill_slot=config.spill_slot),
                               helper_call_at=call_at)
                    stats.header_probes += 1
                else:
                    emit_probe(
                        light_probe(probe[2], tls_slot=config.tls_slot,
                                    spill=spill, spill_slot=config.spill_slot),
                        helper_call_at=None,
                    )
                    stats.light_probes += 1
            elif probe is not None and probe[0] == "none":
                stats.implied_blocks += 1
        newpos_instr[old] = len(items)
        items.append(_Item(instr=module.instr_at(old), old_offset=old))

        if func is not None and old == func.end - 1:
            func_body_end_new[func.name] = len(items)
            if config.catch_all:
                stub_pos[func.name] = len(items)
                dag_id = config.dag_base + stub_dag[func.name]
                stub = catch_stub(dag_id, catch_import_index)
                items.append(_Item(instr=stub[0], fix_call_to_helper=True))
                items.append(_Item(instr=stub[1], is_stdag=True))
                items.append(_Item(instr=stub[2]))
                items.append(_Item(instr=stub[3]))
                stats.catch_stubs += 1
            func_end_new[func.name] = len(items)

    helper_start = len(items)
    for i, instr in enumerate(helper_body(wrap_import_index, config.tls_slot)):
        items.append(
            _Item(instr=instr, is_probe_tls=(i in HELPER_TLS_OFFSETS))
        )
    helper_end = len(items)

    def map_offset(old: int) -> int:
        """Old offset -> new offset of its block-start (probe included)."""
        if old in probe_begin:
            return probe_begin[old]
        if old == len(module.code):
            return helper_start  # one-past-the-end ranges
        raise InstrumentError(f"unmappable code offset {old}")

    # ------------------------------------------------------------------
    # Resolution pass: branch immediates and encoding.
    # ------------------------------------------------------------------
    new_code: list[int] = []
    dag_fixups: list[int] = []
    tls_fixups: list[int] = []
    for pos, item in enumerate(items):
        instr = item.instr
        if item.fix_call_to_helper:
            instr = instr.with_imm(helper_start - (pos + 1))
        elif item.old_offset is not None and instr.op in RELATIVE_BRANCHES:
            old_target = item.old_offset + 1 + instr.imm
            if not 0 <= old_target <= len(module.code):
                raise InstrumentError(
                    f"branch at {item.old_offset} targets {old_target}, "
                    "outside the module"
                )
            instr = instr.with_imm(map_offset(old_target) - (pos + 1))
        if item.is_stdag:
            dag_fixups.append(pos)
        if item.is_probe_tls:
            tls_fixups.append(pos)
        try:
            new_code.append(encode(instr))
        except EncodingError as exc:
            raise InstrumentError(
                f"module {module.name!r} too large to instrument: {exc}"
            ) from exc
    stats.instrumented_words = len(new_code)
    stats.dags = dag_count

    # ------------------------------------------------------------------
    # Metadata remapping.
    # ------------------------------------------------------------------
    new_module = Module(
        name=module.name,
        code=new_code,
        data=list(module.data),
        rodata=list(module.rodata),
        entry=module.entry,
        timestamp=module.timestamp,
    )
    new_module.imports = list(module.imports) + [BUFFER_WRAP_IMPORT]
    if config.catch_all:
        new_module.imports.append(CATCH_IMPORT)

    new_module.symbols = {
        name: (("code", map_offset(off)) if section == "code" else (section, off))
        for name, (section, off) in module.symbols.items()
    }
    new_module.symbols[HELPER_NAME] = ("code", helper_start)
    new_module.exports = {
        name: map_offset(off) for name, off in module.exports.items()
    }

    for func in funcs:
        start_new = func_start_new[func.name]
        end_new = func_end_new[func.name]
        handlers = [
            HandlerRange(
                start=map_offset(h.start),
                end=map_offset(h.end),
                handler=map_offset(h.handler),
                code=h.code,
            )
            for h in func.handlers
        ]
        if config.catch_all:
            handlers.append(
                HandlerRange(
                    start=start_new,
                    end=stub_pos[func.name],
                    handler=stub_pos[func.name],
                    code=None,
                )
            )
        new_module.funcs.append(
            FuncInfo(
                name=func.name,
                start=start_new,
                end=end_new,
                handlers=handlers,
                frame_size=func.frame_size,
            )
        )
    new_module.funcs.append(
        FuncInfo(name=HELPER_NAME, start=helper_start, end=helper_end)
    )

    new_lines: list[LineEntry] = []
    for entry in module.lines:
        if entry.start >= len(module.code):
            continue
        new_lines.append(LineEntry(map_offset(entry.start), entry.file, entry.line))
    for func in funcs:
        if config.catch_all:
            new_lines.append(LineEntry(stub_pos[func.name], INJECTED_FILE, 0))
    new_lines.append(LineEntry(helper_start, INJECTED_FILE, 0))
    new_lines.sort(key=lambda e: e.start)
    new_module.lines = new_lines

    new_module.relocs = [
        Reloc(
            section=r.section,
            offset=newpos_instr[r.offset] if r.section == "code" else r.offset,
            kind=r.kind,
            symbol=r.symbol,
        )
        for r in module.relocs
    ]

    new_module.dag_base = config.dag_base
    new_module.dag_count = dag_count
    new_module.dag_fixups = dag_fixups
    new_module.tls_fixups = tls_fixups
    new_module.instrumented = True

    # ------------------------------------------------------------------
    # Mapfile.
    # ------------------------------------------------------------------
    mapfile = _build_mapfile(module, new_module, config, funcs, analyses,
                             dag_local, stub_dag, stub_pos, probe_begin,
                             newpos_instr, func_by_offset)
    return InstrumentationResult(module=new_module, mapfile=mapfile, stats=stats)


def _block_end_new(cfg_block_end: int, newpos_instr: dict[int, int]) -> int:
    """New end (exclusive) of a block whose old end is ``cfg_block_end``."""
    return newpos_instr[cfg_block_end - 1] + 1


def _call_annotation(module: Module, cfg: CFG, block_start: int) -> str | None:
    """Callee name for a call-terminated block (§4.3.1 annotations)."""
    block = cfg.blocks[block_start]
    term = block.terminator
    term_offset = block.end - 1
    if term.op is Op.CALL:
        target = term_offset + 1 + term.imm
        func = module.func_at(target)
        return func.name if func else f"@{target}"
    if term.op is Op.CALLX:
        return module.imports[term.imm]
    if term.op is Op.CALLR:
        return "<indirect>"
    return None


def _build_mapfile(
    module: Module,
    new_module: Module,
    config: InstrumentConfig,
    funcs: list[FuncInfo],
    analyses: dict,
    dag_local: dict,
    stub_dag: dict,
    stub_pos: dict,
    probe_begin: dict,
    newpos_instr: dict,
    func_by_offset: dict,
) -> Mapfile:
    dags: list[DagMap] = [None] * new_module.dag_count  # type: ignore[list-item]
    for func in funcs:
        cfg, plan, _ = analyses[func.name]
        handler_starts = {h.handler for h in func.handlers}
        for dag in plan.dags:
            blocks: list[BlockMap] = []
            for member in dag.members:
                cfg_block = cfg.blocks[member]
                # In-DAG edges only; an edge back to the DAG entry is
                # necessarily retreating (loop back edge) and is cut.
                in_dag_succs = [
                    probe_begin[s]
                    for s in cfg_block.succs
                    if s in dag.members and s != dag.entry
                ]
                term = cfg_block.terminator
                blocks.append(
                    BlockMap(
                        id=probe_begin[member],
                        end=_block_end_new(cfg_block.end, newpos_instr),
                        body_start=newpos_instr[member],
                        bit=dag.members[member],
                        succs=in_dag_succs,
                        func_entry=func.name if member == func.start else None,
                        func_exit=term.op in (Op.RET, Op.HALT),
                        call=_call_annotation(module, cfg, member),
                        handler_entry=member in handler_starts,
                    )
                )
            index = dag_local[(func.name, dag.index)]
            dags[index] = DagMap(
                index=index,
                func=func.name,
                entry=probe_begin[dag.entry],
                blocks=blocks,
            )
        if config.catch_all:
            pos = stub_pos[func.name]
            index = stub_dag[func.name]
            dags[index] = DagMap(
                index=index,
                func=func.name,
                entry=pos,
                blocks=[
                    BlockMap(
                        id=pos,
                        end=pos + CATCH_STUB_SIZE,
                        body_start=pos + 2,
                        bit=None,
                        succs=[],
                        handler_entry=True,
                    )
                ],
            )

    return Mapfile(
        module_name=module.name,
        checksum=new_module.checksum(),
        original_checksum=module.checksum(),
        dag_base=config.dag_base,
        dag_count=new_module.dag_count,
        mode=config.mode,
        dags=dags,
        lines=[(e.start, e.file, e.line) for e in new_module.lines],
        funcs=[(f.name, f.start, f.end) for f in new_module.funcs],
        data_symbols=_data_symbols(module),
    )


def _data_symbols(module: Module) -> dict[str, tuple[str, int, int]]:
    """Global variable extents: size inferred from symbol ordering.

    Mapfiles carry these so a snap's memory dump can be rendered as
    named variable values (§3.6).
    """
    section_lens = {"data": len(module.data), "rodata": len(module.rodata)}
    by_section: dict[str, list[tuple[int, str]]] = {"data": [], "rodata": []}
    for name, (section, offset) in module.symbols.items():
        if section in by_section:
            by_section[section].append((offset, name))
    out: dict[str, tuple[str, int, int]] = {}
    for section, entries in by_section.items():
        entries.sort()
        for i, (offset, name) in enumerate(entries):
            end = entries[i + 1][0] if i + 1 < len(entries) else section_lens[section]
            out[name] = (section, offset, max(1, end - offset))
    return out
