"""The mapfile: instrumentation-time metadata for reconstruction (§2.1).

"The instrumentation process needs to build a table to translate block
addresses to DAG ids, and a table to map DAG bits to successor blocks.
This information is saved out alongside the instrumented executable in a
file called the mapfile."

Our mapfile additionally embeds the (rewritten) source line table and
function extents, so reconstruction needs only the mapfile plus the raw
trace — matching the paper's list of reconstruction inputs (mapfile +
debug information), just bundled into one artifact.  Blocks carry the
§4.3.1 annotations (procedure entry/exit, call with callee name, handler
entry) that drive the call-hierarchy display.

All offsets in a mapfile are *instrumented-module* code offsets.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.instrument.tiling import DagPlan, decode_path


@dataclass
class BlockMap:
    """One block of one DAG, in instrumented coordinates.

    ``id`` is the block's first word (probe included) — branch targets
    land here.  ``body_start`` is the first *original* instruction after
    any probe words; lines are attributed from ``id`` so probe words
    inherit the block's source line.
    """

    id: int
    end: int
    body_start: int
    bit: int | None
    succs: list[int] = field(default_factory=list)
    func_entry: str | None = None
    func_exit: bool = False
    call: str | None = None
    handler_entry: bool = False

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "end": self.end,
            "body_start": self.body_start,
            "bit": self.bit,
            "succs": list(self.succs),
            "func_entry": self.func_entry,
            "func_exit": self.func_exit,
            "call": self.call,
            "handler_entry": self.handler_entry,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BlockMap":
        return cls(**d)


@dataclass
class DagMap:
    """One DAG: entry block plus members in topological order."""

    index: int
    func: str
    entry: int
    blocks: list[BlockMap]
    #: ``path_bits -> decoded block sequence`` memo.  Hot traces replay
    #: a small set of paths per DAG (loop bodies), and the blocks are
    #: immutable once reconstruction starts, so re-walking the plan per
    #: record is pure waste.  Excluded from equality/repr: a cache is
    #: not part of the DAG's identity.
    _decode_cache: dict = field(default_factory=dict, compare=False, repr=False)

    def block_by_id(self, block_id: int) -> BlockMap | None:
        """Find a member block by id."""
        for block in self.blocks:
            if block.id == block_id:
                return block
        return None

    def _plan(self) -> DagPlan:
        plan = DagPlan(index=self.index, entry=self.entry)
        for block in self.blocks:
            plan.add_member(block.id, block.bit)
        return plan

    def decode(self, path_bits: int) -> list[BlockMap]:
        """Expand a record's path bits into the executed block sequence."""
        cached = self._decode_cache.get(path_bits)
        if cached is not None:
            return list(cached)
        succs = {block.id: block.succs for block in self.blocks}
        ids = decode_path(self._plan(), path_bits, succs)
        by_id = {block.id: block for block in self.blocks}
        decoded = [by_id[i] for i in ids]
        self._decode_cache[path_bits] = decoded
        return list(decoded)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "func": self.func,
            "entry": self.entry,
            "blocks": [b.to_dict() for b in self.blocks],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DagMap":
        return cls(
            index=d["index"],
            func=d["func"],
            entry=d["entry"],
            blocks=[BlockMap.from_dict(b) for b in d["blocks"]],
        )


@dataclass
class Mapfile:
    """Everything reconstruction needs about one instrumented module."""

    module_name: str
    checksum: str  # of the instrumented module (keys runtime state)
    original_checksum: str
    dag_base: int  # default DAG id range start (before any rebasing)
    dag_count: int
    mode: str  # "native" or "il"
    dags: list[DagMap]
    #: (start_offset, file, line) in instrumented coordinates.
    lines: list[tuple[int, str, int]]
    #: (name, start, end) function extents in instrumented coordinates.
    funcs: list[tuple[str, int, int]]
    #: Global data symbols: name -> (section, offset, size_in_words).
    #: Lets reconstruction "display the values of variables at the point
    #: of the snap" (§3.6) from a snap's memory dump.
    data_symbols: dict[str, tuple[str, int, int]] = field(default_factory=dict)
    #: Lazily built bisect key for ``line_at`` (the line table is fixed
    #: after construction) and a ``(start, end) -> lines`` memo for
    #: ``lines_in_range`` — expansion asks for the same block ranges on
    #: every loop iteration of a hot trace.
    _line_starts: list[int] | None = field(
        default=None, compare=False, repr=False
    )
    _range_cache: dict = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------------
    def dag_by_local_index(self, index: int) -> DagMap | None:
        """DAG ``index`` (0-based within this module), or None."""
        if 0 <= index < len(self.dags):
            return self.dags[index]
        return None

    def line_at(self, offset: int) -> tuple[str, int] | None:
        """Source location covering instrumented code ``offset``."""
        if not self.lines:
            return None
        starts = self._line_starts
        if starts is None:
            starts = self._line_starts = [entry[0] for entry in self.lines]
        idx = bisect_right(starts, offset) - 1
        if idx < 0:
            return None
        _, file, line = self.lines[idx]
        return file, line

    def func_at(self, offset: int) -> str | None:
        """Function containing instrumented code ``offset``."""
        for name, start, end in self.funcs:
            if start <= offset < end:
                return name
        return None

    def lines_in_range(self, start: int, end: int) -> list[tuple[str, int]]:
        """Distinct source lines covered by ``[start, end)``, in order."""
        cached = self._range_cache.get((start, end))
        if cached is not None:
            return list(cached)
        out: list[tuple[str, int]] = []
        for offset in range(start, end):
            loc = self.line_at(offset)
            if loc is not None and (not out or out[-1] != loc):
                out.append(loc)
        self._range_cache[(start, end)] = out
        return list(out)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "module_name": self.module_name,
            "checksum": self.checksum,
            "original_checksum": self.original_checksum,
            "dag_base": self.dag_base,
            "dag_count": self.dag_count,
            "mode": self.mode,
            "dags": [d.to_dict() for d in self.dags],
            "lines": [list(entry) for entry in self.lines],
            "funcs": [list(entry) for entry in self.funcs],
            "data_symbols": {k: list(v) for k, v in self.data_symbols.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Mapfile":
        return cls(
            module_name=d["module_name"],
            checksum=d["checksum"],
            original_checksum=d["original_checksum"],
            dag_base=d["dag_base"],
            dag_count=d["dag_count"],
            mode=d["mode"],
            dags=[DagMap.from_dict(x) for x in d["dags"]],
            lines=[(e[0], e[1], e[2]) for e in d["lines"]],
            funcs=[(e[0], e[1], e[2]) for e in d["funcs"]],
            data_symbols={
                k: (v[0], v[1], v[2])
                for k, v in d.get("data_symbols", {}).items()
            },
        )

    def save(self, path: str) -> None:
        """Write the mapfile as JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    @classmethod
    def load(cls, path: str) -> "Mapfile":
        """Read a mapfile written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
