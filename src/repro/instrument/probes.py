"""Probe instruction sequences and the per-module helper subroutine.

Matches the paper's x86 probes in shape and dynamic cost (§2.1):

* the **heavyweight probe** is a ``call`` to a helper subroutine that is
  statically added to every instrumented module ("to avoid the overhead
  of an inter-module call"), followed by one store of the pre-shifted
  DAG id (``STDAG``);
* the **lightweight probe** is two instructions: load the buffer pointer
  from the TLS slot, OR the block's bit into the current record;
* the **helper** loads the pointer, pre-increments it, checks for the
  buffer-end sentinel, and either commits the new pointer or calls the
  runtime's ``buffer_wrap`` through the import table.

All probes use the fixed probe register (r11, the ``EAX`` analog).  When
liveness says r11 is live at a probe site the rewriter wraps the probe
in a spill/restore pair against the TLS scratch slot — the paper's
"register spill/restore which account for 30% of the total execution
slowdown" in gzip.
"""

from __future__ import annotations

from repro.isa.instructions import PROBE_REG, Instr, Op
from repro.runtime.abi import BUFFER_WRAP_IMPORT, CATCH_IMPORT, HELPER_NAME
from repro.vm.thread import TLS_PROBE_SPILL, TLS_TRACE_PTR

__all__ = [
    "BUFFER_WRAP_IMPORT",
    "CATCH_IMPORT",
    "HELPER_NAME",
    "HELPER_TLS_OFFSETS",
    "CATCH_STUB_SIZE",
    "catch_stub",
    "header_probe",
    "header_probe_size",
    "helper_body",
    "light_probe",
    "light_probe_size",
]


def helper_body(wrap_import_index: int, tls_slot: int = TLS_TRACE_PTR) -> list[Instr]:
    """The helper subroutine (7 words).

    Fast path (5 instructions, like the paper's 6-instruction x86
    helper): load pointer, bump, sentinel check, store pointer, return
    — leaving the new record slot address in r11 for the caller's
    ``STDAG``.  Wrap path: the runtime's ``buffer_wrap`` host function
    repoints both the TLS slot and r11 at a fresh slot.
    """
    return [
        Instr(Op.TLSLD, rd=PROBE_REG, imm=tls_slot),
        Instr(Op.ADDI, rd=PROBE_REG, rs=PROBE_REG, imm=1),
        Instr(Op.BSENT, rd=PROBE_REG, imm=2),  # -> offset 5 (wrap path)
        Instr(Op.TLSST, rd=PROBE_REG, imm=tls_slot),
        Instr(Op.RET),
        Instr(Op.CALLX, imm=wrap_import_index),
        Instr(Op.RET),
    ]


#: Offsets (within the helper) of instructions that reference TLS slots;
#: listed in the module's TLS fixup table for slot rewriting (§2.5).
HELPER_TLS_OFFSETS = (0, 3)


def header_probe_size(spill: bool) -> int:
    """Words a heavyweight probe occupies at its call site."""
    return 4 if spill else 2


def light_probe_size(spill: bool) -> int:
    """Words a lightweight probe occupies."""
    return 4 if spill else 2


def header_probe(
    dag_id: int,
    helper_offset_placeholder: int = 0,
    spill: bool = False,
    spill_slot: int = TLS_PROBE_SPILL,
) -> list[Instr]:
    """The call-site heavyweight probe.

    The ``CALL`` immediate is a placeholder; the rewriter patches it
    once the helper's final position is known.
    """
    core = [
        Instr(Op.CALL, imm=helper_offset_placeholder),
        Instr(Op.STDAG, rd=PROBE_REG, imm=dag_id),
    ]
    if not spill:
        return core
    return [
        Instr(Op.TLSST, rd=PROBE_REG, imm=spill_slot),
        *core,
        Instr(Op.TLSLD, rd=PROBE_REG, imm=spill_slot),
    ]


def light_probe(
    bit: int,
    tls_slot: int = TLS_TRACE_PTR,
    spill: bool = False,
    spill_slot: int = TLS_PROBE_SPILL,
) -> list[Instr]:
    """The two-instruction lightweight probe."""
    core = [
        Instr(Op.TLSLD, rd=PROBE_REG, imm=tls_slot),
        Instr(Op.ORM, rd=PROBE_REG, imm=1 << bit),
    ]
    if not spill:
        return core
    return [
        Instr(Op.TLSST, rd=PROBE_REG, imm=spill_slot),
        *core,
        Instr(Op.TLSLD, rd=PROBE_REG, imm=spill_slot),
    ]


def catch_stub(dag_id: int, catch_import_index: int) -> list[Instr]:
    """IL-mode injected catch-all stub (4 words).

    A DAG header (so the catch shows in the trace, "treated just like
    another procedure entry point"), a call into the runtime with the
    exception code in r0, and a rethrow to let propagation continue —
    the §3.7.2 fallback for runtimes with no first-chance hook.
    """
    return [
        Instr(Op.CALL, imm=0),  # placeholder -> helper
        Instr(Op.STDAG, rd=PROBE_REG, imm=dag_id),
        Instr(Op.CALLX, imm=catch_import_index),
        Instr(Op.THROW, rd=0),
    ]


CATCH_STUB_SIZE = 4
