"""DAG tiling: heavyweight-probe placement and path-bit assignment (§2.1).

The heavyweight probes tile each function's control-flow graph into
directed acyclic subgraphs (DAGs), each headed by one heavyweight probe;
lightweight probes inside a DAG set per-block bits in the current trace
record.  Headers are *forced* at:

* every external entry point: function entry, exception handler entries,
  and indirect-branch targets (§2.1, §2.4);
* every target of a retreating edge, so each cycle contains a header;
* every call return point (§2.2) — calls end DAGs;
* any block whose predecessors span multiple DAGs, or whose DAG ran out
  of path bits (the run-length limit).

Bit assignment implements the paper's "blocks that end in unconditional
branches do not require lightweight probes" optimization in its sound
form: a member block needs no bit when it is the *unique successor of
its unique in-DAG predecessor* — its execution is implied, and
:func:`decode_path` reconstitutes it.  Every other member gets a
distinct bit; the 11-bit budget bounds DAG size.

``decode_path`` is the inverse used at reconstruction: the executed
blocks of a record are the header, the bit-set blocks, and the implied
closure — emitted in topological order, which for a path through a DAG
*is* execution order.  The round-trip invariant (any feasible path
encodes and decodes to itself) is property-tested in
``tests/instrument/test_tiling_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG
from repro.analysis.dominators import loop_headers
from repro.runtime.records import PATH_BITS


@dataclass
class DagPlan:
    """One DAG: a header block plus bit-carrying / implied members.

    ``members`` maps block start -> bit index, ``None`` for implied
    (elided-probe) members, and is ordered topologically (insertion
    order follows reverse postorder).  The header block itself is the
    first member and has no bit.
    """

    index: int
    entry: int
    members: dict[int, int | None] = field(default_factory=dict)
    bits_used: int = 0

    def add_member(self, block: int, bit: int | None) -> None:
        """Append a member (tiling-internal)."""
        self.members[block] = bit
        if bit is not None:
            self.bits_used = max(self.bits_used, bit + 1)


@dataclass
class TilingPlan:
    """Tiling of one function: DAGs plus the per-block probe decisions."""

    func_name: str
    dags: list[DagPlan]
    #: block start -> ("header", dag_index) | ("light", dag_index, bit)
    #: | ("none", dag_index)  (implied member, no probe at all)
    block_probe: dict[int, tuple]
    #: block start -> its DagPlan index
    dag_of: dict[int, int]

    def dag_for_block(self, block: int) -> DagPlan:
        """The DAG containing ``block``."""
        return self.dags[self.dag_of[block]]


def required_headers(cfg: CFG) -> set[int]:
    """Block starts that must carry heavyweight probes."""
    headers: set[int] = set(cfg.entries)
    headers |= loop_headers(cfg)
    for block in cfg.blocks.values():
        if block.ends_with_call and block.end in cfg.blocks:
            headers.add(block.end)  # call return point (§2.2)
        if block.ends_with_syscall and block.end in cfg.blocks:
            headers.add(block.end)  # runtime may append records here (§3.5)
        if block.ends_with_multiway:
            headers.update(block.succs)  # multiway targets end traces
    return headers


def tile(cfg: CFG, path_bits: int = PATH_BITS, elide_implied: bool = True) -> TilingPlan:
    """Tile ``cfg`` into DAGs.

    Processes blocks in reverse postorder, so every forward predecessor
    is placed before its successors; retreating edges always target
    forced headers, so DAG membership never creates a cycle.

    ``elide_implied`` enables the paper's "blocks that end in
    unconditional branches do not require lightweight probes"
    optimization.  IL mode turns it off: line-boundary blocks must carry
    real probes so exception reporting can select the exact source line
    without a usable fault address (§2.4).
    """
    headers = required_headers(cfg)
    dags: list[DagPlan] = []
    dag_of: dict[int, int] = {}
    block_probe: dict[int, tuple] = {}

    def new_dag(entry: int) -> DagPlan:
        dag = DagPlan(index=len(dags), entry=entry)
        dag.add_member(entry, None)
        dags.append(dag)
        dag_of[entry] = dag.index
        block_probe[entry] = ("header", dag.index)
        return dag

    for start in cfg.reverse_postorder():
        block = cfg.blocks[start]
        if start in dag_of:
            continue  # already placed (headers are placed on sight)
        preds = block.preds
        if start in headers or not preds:
            new_dag(start)
            continue
        pred_dags = {dag_of.get(p) for p in preds}
        if len(pred_dags) != 1 or None in pred_dags:
            # Predecessors span DAGs (or include an unplaced block):
            # promote to a header.
            new_dag(start)
            continue
        dag = dags[pred_dags.pop()]
        sole_pred = cfg.blocks[preds[0]] if len(preds) == 1 else None
        implied = (
            elide_implied
            and sole_pred is not None
            and len(sole_pred.succs) == 1
        )
        if implied:
            dag.add_member(start, None)
            dag_of[start] = dag.index
            block_probe[start] = ("none", dag.index)
        elif dag.bits_used < path_bits:
            bit = dag.bits_used
            dag.add_member(start, bit)
            dag_of[start] = dag.index
            block_probe[start] = ("light", dag.index, bit)
        else:
            new_dag(start)  # path-bit budget exhausted: start a new run

    return TilingPlan(
        func_name=cfg.func.name, dags=dags, block_probe=block_probe, dag_of=dag_of
    )


# ----------------------------------------------------------------------
# Path encoding/decoding over a tiled DAG
# ----------------------------------------------------------------------
def encode_path(dag: DagPlan, path: list[int]) -> int:
    """The path-bit word a run through ``dag`` produces.

    ``path`` must start at the DAG entry; used by tests and by the
    trace-synthesis utilities.
    """
    if not path or path[0] != dag.entry:
        raise ValueError("path must start at the DAG entry")
    bits = 0
    for block in path[1:]:
        bit = dag.members.get(block)
        if bit is not None:
            bits |= 1 << bit
    return bits


def decode_path(
    dag: DagPlan, path_bits: int, succs: dict[int, list[int]]
) -> list[int]:
    """Reconstruct the executed block sequence from a DAG record.

    ``succs`` maps member block -> in-DAG successors.  The executed set
    is the entry, the blocks whose bits are set, and the implied closure
    (a bitless member executed iff its unique in-DAG predecessor did);
    emitted in topological (= member insertion) order.
    """
    member_order = list(dag.members)
    in_dag = set(member_order)
    preds: dict[int, list[int]] = {m: [] for m in member_order}
    for block, targets in succs.items():
        for target in targets:
            if target in in_dag and block in in_dag:
                preds[target].append(block)

    executed = {dag.entry}
    for block in member_order[1:]:
        bit = dag.members[block]
        if bit is not None:
            if path_bits & (1 << bit):
                executed.add(block)
        else:
            # Implied member: executes iff its unique predecessor did.
            block_preds = preds[block]
            if len(block_preds) == 1 and block_preds[0] in executed:
                executed.add(block)
    return [block for block in member_order if block in executed]


def feasible_paths(
    dag: DagPlan, succs: dict[int, list[int]], limit: int = 2000
) -> list[list[int]]:
    """Enumerate paths through ``dag`` from its entry (test helper).

    A path ends when it reaches a block with no in-DAG successors, and
    every proper prefix is also a legal partial execution (exceptions
    can cut a run anywhere), but for round-trip testing the maximal
    paths suffice.
    """
    in_dag = set(dag.members)
    paths: list[list[int]] = []
    stack: list[list[int]] = [[dag.entry]]
    while stack and len(paths) < limit:
        path = stack.pop()
        nexts = [s for s in succs.get(path[-1], []) if s in in_dag]
        if not nexts:
            paths.append(path)
            continue
        for nxt in nexts:
            stack.append(path + [nxt])
    return paths
