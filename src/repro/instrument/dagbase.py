"""DAG base files: pre-assigned DAG id ranges per module (§2.3).

"To avoid the module load-time penalty of DAG rebasing, TraceBack allows
the user to supply a DAG base file that automatically assigns DAG ranges
to different modules instrumented from the same source tree.  These
ranges are used every time the module is rebuilt."

The file format is deliberately plain text, one ``module base`` pair per
line, with ``#`` comments — the kind of artifact that lives in a build
tree.
"""

from __future__ import annotations

from repro.runtime.records import MAX_DAG_ID


class DagBaseError(ValueError):
    """Malformed DAG base file or conflicting assignment."""


class DagBaseFile:
    """Parsed DAG base assignments: module name -> base id."""

    def __init__(self, bases: dict[str, int] | None = None):
        self.bases: dict[str, int] = dict(bases or {})

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "DagBaseFile":
        """Parse the textual format."""
        bases: dict[str, int] = {}
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise DagBaseError(f"line {lineno}: want 'module base'")
            name, base_text = parts
            try:
                base = int(base_text, 0)
            except ValueError:
                raise DagBaseError(f"line {lineno}: bad base {base_text!r}") from None
            if not 0 <= base <= MAX_DAG_ID:
                raise DagBaseError(f"line {lineno}: base {base} out of range")
            if name in bases:
                raise DagBaseError(f"line {lineno}: duplicate module {name!r}")
            bases[name] = base
        return cls(bases)

    @classmethod
    def load(cls, path: str) -> "DagBaseFile":
        """Read and parse a DAG base file."""
        with open(path) as fh:
            return cls.parse(fh.read())

    # ------------------------------------------------------------------
    def base_for(self, module_name: str) -> int | None:
        """Assigned base for ``module_name``, or None."""
        return self.bases.get(module_name)

    def assign(self, module_name: str, base: int) -> None:
        """Record an assignment (used by allocation tooling)."""
        self.bases[module_name] = base

    def render(self) -> str:
        """Serialize back to the textual format."""
        lines = ["# TraceBack DAG base assignments"]
        for name in sorted(self.bases):
            lines.append(f"{name} {self.bases[name]}")
        return "\n".join(lines) + "\n"

    def allocate(self, sizes: dict[str, int], start: int = 16) -> None:
        """Assign disjoint ranges to every module in ``sizes``.

        The build-tree tool the paper implies: instrument the tree once
        to learn each module's DAG count, then emit a base file "used
        every time the module is rebuilt" so load-time rebasing never
        fires.  Existing assignments are kept when they still fit.
        """
        cursor = start
        taken = sorted(
            (self.bases[name], self.bases[name] + sizes.get(name, 1))
            for name in self.bases
            if name in sizes
        )
        for name in sorted(sizes):
            if name in self.bases:
                continue
            need = sizes[name]
            placed = False
            for lo, hi in taken:
                if cursor + need <= lo:
                    placed = True
                    break
                cursor = max(cursor, hi)
            if cursor + need > MAX_DAG_ID:
                raise DagBaseError(
                    f"DAG id space exhausted allocating {name!r}"
                )
            self.bases[name] = cursor
            taken.append((cursor, cursor + need))
            taken.sort()
            cursor += need
        self.check_disjoint(sizes)

    def check_disjoint(self, sizes: dict[str, int]) -> None:
        """Verify that the ranges implied by ``sizes`` don't overlap.

        ``sizes`` maps module name -> DAG count; modules without an
        entry are ignored.
        """
        spans = sorted(
            (self.bases[name], self.bases[name] + sizes[name], name)
            for name in sizes
            if name in self.bases
        )
        for (s1, e1, n1), (s2, _e2, n2) in zip(spans, spans[1:]):
            if s2 < e1:
                raise DagBaseError(
                    f"DAG ranges overlap: {n1} [{s1},{e1}) and {n2} at {s2}"
                )
