"""A simulated network of machines (§5's distributed substrate).

Each :class:`~repro.vm.machine.Machine` has its own cycle counter and a
configurable clock skew, so timestamps from different machines genuinely
disagree — the condition TraceBack's SYNC records exist to overcome.
RPC requests route by service id to whichever process on whichever
machine registered the service; the caller's thread stays blocked until
the callee side completes, while both machines' clocks keep running.

Execution interleaves machines in bounded slices; the network detects
global completion, global deadlock (everyone blocked on everyone), and
budget exhaustion.
"""

from __future__ import annotations

from repro.vm.errors import ExcCode
from repro.vm.machine import Machine, Process, RpcRequest, spawn_service_thread


class Network:
    """A set of machines sharing an RPC fabric."""

    def __init__(self, rpc_latency: int = 500):
        self.machines: list[Machine] = []
        #: Extra cycles charged to the *caller's* machine per RPC, the
        #: wire latency stand-in.
        self.rpc_latency = rpc_latency
        self.rpc_count = 0
        #: Optional fault-injection hook (`repro.chaos`): called with
        #: each request before routing; may return an action string —
        #: ``"drop"`` (the RPC never arrives), ``"strip-sync"`` (the
        #: out-of-band TraceBack triple is lost in transit, as across an
        #: uninstrumented hop), ``"kill-callee"`` (the serving process
        #: dies abruptly instead of answering) — or None for normal
        #: delivery.
        self.rpc_chaos = None
        #: Optional fault hook for collector uploads
        #: (``repro.fleet.collector``): called with ``(machine_name,
        #: snap, attempt)``; any truthy return drops that transfer in
        #: transit (the collector retries with backoff).
        self.upload_chaos = None
        #: Optional fault hook for remote vault queries
        #: (``repro.fleet.remote``): called with ``(service_id, op,
        #: attempt)`` per request; may return ``"drop"`` (the request
        #: never arrives), ``"delay"`` (the response lands past the
        #: client's deadline and is discarded), ``"corrupt"`` (the
        #: response bytes are damaged in transit — the frame CRC
        #: catches it and the client retries), ``"kill-server"`` (the
        #: vault server dies mid-stream) — or None for normal delivery.
        self.query_chaos = None
        #: Remote vault query exchanges attempted (``repro.fleet.remote``).
        self.query_count = 0
        #: Dispatches (guest RPC or vault registration) that saw more
        #: than one alive candidate for one service id — a
        #: misconfigured fleet, made visible instead of silently routed.
        self.duplicate_service = 0
        #: Host-level vault query servers by service id, in
        #: registration order (``repro.fleet.remote.VaultService``).
        self._vault_services: dict[str, list] = {}

    # ------------------------------------------------------------------
    def add_machine(
        self,
        name: str,
        clock_skew: int = 0,
        io_latency: int = 2000,
    ) -> Machine:
        """Create a machine attached to this network."""
        machine = Machine(name=name, clock_skew=clock_skew, io_latency=io_latency)
        machine.rpc_router = self.dispatch
        self.machines.append(machine)
        return machine

    def processes(self) -> list[Process]:
        """All processes across all machines."""
        return [p for m in self.machines for p in m.processes]

    # ------------------------------------------------------------------
    def dispatch(self, request: RpcRequest) -> None:
        """Route an RPC to the process serving its service id.

        Routing is deliberately **first-alive-wins**: machines are
        scanned in registration order and the first alive process
        serving the id takes the request.  Registering the same
        service id twice is legal (a misconfigured fleet does exactly
        this), but the later registration receives no traffic while an
        earlier one is alive — it is a standby, not a load-balancing
        peer.  Every dispatch that found more than one alive candidate
        bumps ``duplicate_service`` so the shadowed registration is
        visible to operators instead of silently ignored.
        """
        self.rpc_count += 1
        caller_machine = request.caller_process.machine
        caller_machine.cycles += self.rpc_latency
        action = self.rpc_chaos(request) if self.rpc_chaos else None
        if action == "drop":
            caller_machine.complete_rpc(request, status=ExcCode.RPC_SERVER_FAULT)
            return
        if action == "strip-sync":
            request.extra = {}
        candidates = [
            process
            for machine in self.machines
            for process in machine.processes
            if process.alive and request.service in process.rpc_services
        ]
        if len(candidates) > 1:
            self.duplicate_service += 1
        if candidates:
            process = candidates[0]
            if action == "kill-callee":
                process.kill()
                caller_machine.complete_rpc(
                    request, status=ExcCode.RPC_SERVER_FAULT
                )
                return
            spawn_service_thread(process, request)
            return
        caller_machine.complete_rpc(request, status=ExcCode.RPC_SERVER_FAULT)

    # ------------------------------------------------------------------
    # Host-level vault query servers (repro.fleet.remote)
    # ------------------------------------------------------------------
    def register_vault_service(self, server) -> None:
        """Attach a vault query server under its ``server.name`` id.

        Same first-alive-wins policy as :meth:`dispatch`: a second
        registration under an id that already has a live server stays
        shadowed (it only takes over once every earlier registration
        is dead) and bumps ``duplicate_service``.
        """
        registered = self._vault_services.setdefault(server.name, [])
        if any(existing.alive for existing in registered):
            self.duplicate_service += 1
        registered.append(server)

    def vault_service(self, service_id: str):
        """The first *alive* server registered under ``service_id``."""
        for server in self._vault_services.get(service_id, []):
            if server.alive:
                return server
        return None

    # ------------------------------------------------------------------
    def run(self, max_total_cycles: int = 100_000_000, slice_cycles: int = 2000) -> str:
        """Interleave the machines until quiescence.

        Returns ``"done"`` (no live threads anywhere), ``"stalled"``
        (live threads but a full round made no progress — a distributed
        deadlock or hang), or ``"limit"``.
        """
        while True:
            total = sum(m.cycles for m in self.machines)
            if total >= max_total_cycles:
                return "limit"
            statuses = []
            for machine in self.machines:
                statuses.append(
                    machine.run(max_cycles=machine.cycles + slice_cycles)
                )
            if all(status == "done" for status in statuses):
                return "done"
            progressed = sum(m.cycles for m in self.machines) > total
            if not progressed and "limit" not in statuses:
                return "stalled"
