"""Distributed tracing substrate: simulated machines, network, sessions."""

from repro.distributed.network import Network
from repro.distributed.session import (
    DistributedResult,
    DistributedSession,
    NodeHandle,
)

__all__ = ["DistributedResult", "DistributedSession", "Network", "NodeHandle"]
