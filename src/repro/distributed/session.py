"""Convenience builder for distributed traced runs.

Wires the pieces of a multi-machine scenario: machines with skewed
clocks, one TraceBack runtime + service process per machine, MiniC
modules per process, RPC service registration — then runs the network,
snaps every process, and reconstructs the master trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.distributed.network import Network
from repro.instrument import InstrumentConfig, Mapfile, instrument_module
from repro.lang.minic import compile_source
from repro.reconstruct import DistributedTrace, Reconstructor
from repro.runtime import (
    RuntimeConfig,
    ServiceProcess,
    SnapFile,
    TraceBackRuntime,
)
from repro.vm import Machine, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.collector import Collector
    from repro.fleet.store import SnapVault


@dataclass
class NodeHandle:
    """One process in the distributed session."""

    process: Process
    runtime: TraceBackRuntime
    entry_module: str | None = None


@dataclass
class DistributedResult:
    """Outcome of a distributed run."""

    status: str
    snaps: list[SnapFile]
    mapfiles: list[Mapfile]
    nodes: dict[str, NodeHandle] = field(default_factory=dict)
    #: The collector the run drained into, when a vault was attached
    #: (the first one, when several shared the load).
    collector: "Collector | None" = None
    #: Every collector that fed the vault, in round-robin order.
    collectors: list["Collector"] = field(default_factory=list)

    def reconstruct(self) -> DistributedTrace:
        """Stitch all snaps into the master trace (§5)."""
        return Reconstructor(self.mapfiles).reconstruct_distributed(self.snaps)


class DistributedSession:
    """Builder for multi-machine TraceBack scenarios."""

    def __init__(
        self,
        rpc_latency: int = 500,
        runtime_config: RuntimeConfig | None = None,
        instrument_config: InstrumentConfig | None = None,
    ):
        self.network = Network(rpc_latency=rpc_latency)
        self.runtime_config = runtime_config or RuntimeConfig()
        self.instrument_config = instrument_config or InstrumentConfig()
        self.mapfiles: list[Mapfile] = []
        self.nodes: dict[str, NodeHandle] = {}
        self.services: dict[Machine, ServiceProcess] = {}
        self.collector: "Collector | None" = None
        self.collectors: list["Collector"] = []
        self._next_collector = 0

    # ------------------------------------------------------------------
    def attach_vault(
        self, vault: "SnapVault", collectors: int = 1, **collector_options
    ) -> "Collector":
        """Drain this session's snaps into ``vault``.

        Creates ``collectors`` :class:`~repro.fleet.collector.Collector`
        instances bound to this session's network (the vault's shard
        locks make concurrent ingest safe), spreads every existing (and
        future) machine's service process over them round-robin, and
        stores the session's mapfiles in the vault so its snaps
        reconstruct standalone.  ``run()`` drains every collector when
        the network quiesces.  Returns the first collector; the full
        set is ``self.collectors``.
        """
        if collectors < 1:
            raise ValueError("collectors must be >= 1")
        from repro.fleet.collector import Collector

        self.collectors = [
            Collector(
                vault,
                network=self.network,
                name=f"tb-collector-{i}",
                **collector_options,
            )
            for i in range(collectors)
        ]
        self.collector = self.collectors[0]
        for service in self.services.values():
            service.forward_to(self._assign_collector())
        for mapfile in self.mapfiles:
            vault.put_mapfile(mapfile)
        return self.collector

    def _assign_collector(self) -> "Collector":
        collector = self.collectors[self._next_collector % len(self.collectors)]
        self._next_collector += 1
        return collector

    # ------------------------------------------------------------------
    def add_machine(self, name: str, clock_skew: int = 0) -> Machine:
        """A machine with its own (skewed) clock and service process."""
        machine = self.network.add_machine(name, clock_skew=clock_skew)
        self.services[machine] = ServiceProcess(name=f"tb-service@{name}")
        if self.collectors:
            self.services[machine].forward_to(self._assign_collector())
        return machine

    def add_process(
        self,
        machine: Machine,
        name: str,
        source: str,
        module_name: str | None = None,
        services: dict[int, str] | None = None,
        start: bool = False,
    ) -> NodeHandle:
        """A process running instrumented MiniC code.

        ``services`` maps RPC service ids to exported function names.
        ``start`` launches the module's main thread when the run begins.
        """
        process = machine.create_process(name)
        import dataclasses

        config = dataclasses.replace(self.runtime_config)
        runtime = TraceBackRuntime(
            process, config, service=self.services[machine]
        )
        module_name = module_name or name
        compiled = compile_source(source, module_name=module_name,
                                  file_name=f"{module_name}.c")
        result = instrument_module(compiled, self.instrument_config)
        self.mapfiles.append(result.mapfile)
        if self.collector is not None:
            self.collector.vault.put_mapfile(result.mapfile)
        process.load_module(result.module)
        for service_id, func in (services or {}).items():
            process.register_rpc_service(service_id, func)
        handle = NodeHandle(
            process=process,
            runtime=runtime,
            entry_module=module_name if start else None,
        )
        self.nodes[name] = handle
        return handle

    # ------------------------------------------------------------------
    def run(self, max_total_cycles: int = 100_000_000) -> DistributedResult:
        """Start entry processes, run the network, snap everything."""
        for handle in self.nodes.values():
            if handle.entry_module is not None:
                handle.process.start(handle.entry_module)
        status = self.network.run(max_total_cycles=max_total_cycles)
        snaps: list[SnapFile] = []
        for name, handle in self.nodes.items():
            snap = handle.runtime.snap_store.latest()
            if snap is None:
                snap = handle.runtime.snap_external(
                    reason="external", detail={"at": "end-of-run"}
                )
            if snap is not None:
                snaps.append(snap)
        for collector in self.collectors:
            collector.drain()
        return DistributedResult(
            status=status,
            snaps=snaps,
            mapfiles=list(self.mapfiles),
            nodes=dict(self.nodes),
            collector=self.collector,
            collectors=list(self.collectors),
        )

    def close_collectors(self) -> None:
        """Deterministically shut down every attached collector.

        Each collector flushes what it can and dead-letters the rest
        (see :meth:`~repro.fleet.collector.Collector.close`), so after
        this returns every submitted snap is either in the vault or in
        a dead-letter list — never silently in a dropped queue.
        """
        for collector in self.collectors:
            collector.close()
