"""Fault injectors: systematic damage for snaps and archives.

Each injector takes a seeded :class:`random.Random` so every damaged
artifact is reproducible from ``(scenario, seed)``, mutates its target
in place (callers damage *copies* — see :func:`copy_snap`), and returns
a list of ground-truth strings describing exactly what was destroyed.
The test suite asserts salvage-mode reconstruction against that ground
truth: the degradation summary must name the loss the injector caused.

The damage catalogue mirrors the failure modes the paper's anecdotes
exercise (§2.1, §4.1): bit rot and zeroed words in buffer dumps, torn
and truncated archive containers, clobbered header words, whole
machines' snaps missing, dropped/duplicated SYNC records, extreme clock
skew, and abrupt ``kill -9`` mid-run (see :mod:`repro.chaos.scenarios`
for the run-time ones).
"""

from __future__ import annotations

import base64
import random

from repro.runtime.buffers import BufferFlags, HEADER_WORDS
from repro.runtime.records import (
    ExtKind,
    is_ext_header,
    is_ext_trailer,
)
from repro.runtime.snap import BufferDump, SnapFile


def copy_snap(snap: SnapFile) -> SnapFile:
    """A deep, independent copy (damage never touches the original)."""
    return SnapFile.from_dict(snap.to_dict())


def _mineable_buffers(snap: SnapFile) -> list[BufferDump]:
    """Buffers whose contents reconstruction actually reads."""
    skip = BufferFlags.PROBATION | BufferFlags.SHARED
    return [
        b
        for b in snap.buffers
        if not (b.flags & skip) and len(b.words) > HEADER_WORDS
    ]


def _data_indices(buffer: BufferDump) -> range:
    return range(HEADER_WORDS, len(buffer.words))


# ----------------------------------------------------------------------
# Word-level damage
# ----------------------------------------------------------------------
def flip_bits(snap: SnapFile, rng: random.Random, flips: int = 8) -> list[str]:
    """Random single-bit flips in buffer data words (bit rot / DMA
    scribbles)."""
    notes: list[str] = []
    candidates = _mineable_buffers(snap)
    if not candidates:
        return notes
    for _ in range(flips):
        buffer = rng.choice(candidates)
        idx = rng.choice(_data_indices(buffer))
        bit = rng.randrange(32)
        buffer.words[idx] ^= 1 << bit
        notes.append(
            f"flipped bit {bit} of word {idx} in buffer {buffer.index}"
        )
    return notes


def zero_words(
    snap: SnapFile,
    rng: random.Random,
    runs: int = 2,
    run_len: int = 16,
) -> list[str]:
    """Zero out runs of data words (lost pages, partial writes)."""
    notes: list[str] = []
    candidates = _mineable_buffers(snap)
    if not candidates:
        return notes
    for _ in range(runs):
        buffer = rng.choice(candidates)
        data = _data_indices(buffer)
        start = rng.choice(data)
        end = min(start + run_len, len(buffer.words))
        for idx in range(start, end):
            buffer.words[idx] = 0
        notes.append(
            f"zeroed words {start}..{end} in buffer {buffer.index}"
        )
    return notes


def clobber_header(
    snap: SnapFile, rng: random.Random, words: int = 2
) -> list[str]:
    """Scribble over buffer header words (magic, geometry, commit
    bookkeeping) — the classic torn-mmap failure."""
    notes: list[str] = []
    candidates = _mineable_buffers(snap)
    if not candidates:
        return notes
    buffer = rng.choice(candidates)
    for _ in range(words):
        # Target the words integrity checking actually depends on:
        # [0] magic, [4] last-committed index.  (Clobbering the spares
        # is survivable by construction and proves nothing.)
        idx = rng.choice((0, 4))
        value = rng.randrange(1 << 32)
        buffer.words[idx] = value
        notes.append(
            f"clobbered header word {idx} of buffer {buffer.index} "
            f"to {value:#x}"
        )
    return notes


def truncate_buffer(
    snap: SnapFile, rng: random.Random, keep_fraction: float | None = None
) -> list[str]:
    """Cut one buffer's word list short (a snap file torn mid-buffer)."""
    candidates = _mineable_buffers(snap)
    if not candidates:
        return []
    buffer = rng.choice(candidates)
    if keep_fraction is None:
        keep_fraction = rng.uniform(0.0, 0.9)
    keep = int(len(buffer.words) * keep_fraction)
    lost = len(buffer.words) - keep
    del buffer.words[keep:]
    return [
        f"truncated buffer {buffer.index} to {keep} words ({lost} lost)"
    ]


# ----------------------------------------------------------------------
# SYNC-record damage (the distributed substrate)
# ----------------------------------------------------------------------
def _find_sync_records(buffer: BufferDump) -> list[tuple[int, int]]:
    """(start index, total size) of each intact SYNC record."""
    found: list[tuple[int, int]] = []
    words = buffer.words
    idx = HEADER_WORDS
    while idx < len(words):
        word = words[idx]
        if is_ext_header(word) and (word >> 24) & 0x1F == ExtKind.SYNC:
            length = (word >> 16) & 0xFF
            trailer_idx = idx + length + 1
            if (
                length
                and trailer_idx < len(words)
                and is_ext_trailer(words[trailer_idx])
                and (words[trailer_idx] >> 24) & 0x1F == ExtKind.SYNC
            ):
                found.append((idx, length + 2))
                idx = trailer_idx + 1
                continue
        idx += 1
    return found


def drop_sync_records(
    snap: SnapFile, rng: random.Random, count: int = 1
) -> list[str]:
    """Zero out whole SYNC records — an RPC leg's evidence vanishes."""
    notes: list[str] = []
    targets: list[tuple[BufferDump, int, int]] = []
    for buffer in _mineable_buffers(snap):
        for start, size in _find_sync_records(buffer):
            targets.append((buffer, start, size))
    rng.shuffle(targets)
    for buffer, start, size in targets[:count]:
        for idx in range(start, start + size):
            buffer.words[idx] = 0
        notes.append(
            f"dropped SYNC record at words {start}..{start + size} "
            f"in buffer {buffer.index}"
        )
    return notes


def duplicate_sync_records(
    snap: SnapFile, rng: random.Random, count: int = 1
) -> list[str]:
    """Replay SYNC records over the words that follow them — duplicated
    legs plus collateral damage, as a replaying writer would leave."""
    notes: list[str] = []
    targets: list[tuple[BufferDump, int, int]] = []
    for buffer in _mineable_buffers(snap):
        for start, size in _find_sync_records(buffer):
            targets.append((buffer, start, size))
    rng.shuffle(targets)
    for buffer, start, size in targets[:count]:
        end = start + size
        if end + size > len(buffer.words):
            continue
        buffer.words[end : end + size] = buffer.words[start:end]
        notes.append(
            f"duplicated SYNC record at words {start}..{end} "
            f"in buffer {buffer.index}"
        )
    return notes


# ----------------------------------------------------------------------
# Nondeterminism-log damage (the replay substrate)
# ----------------------------------------------------------------------
def damage_ndlog(snap: SnapFile, rng: random.Random) -> list[str]:
    """Hurt the snap's ``tb-ndlog`` so replay must refuse, not crash.

    Version-aware: plain-JSON ``tb-ndlog/1`` logs lose event ranges or
    grow wrong-typed fields (torn re-serialization); packed
    ``tb-ndlog/2`` logs get their byte columns truncated, stuffed with
    runaway varint continuation bytes, or their slice count bumped out
    of agreement with the columns.  Both versions can lose a required
    header segment (salvage dropped it) or the whole log (the snap
    degrades to seed-only).  Ground truth names the segment a typed
    :class:`~repro.replay.ReplayUnavailable` must report; a snap with
    no ndlog is left alone (nothing to damage).

    Mutates in place: callers damage copies (:func:`copy_snap` now
    deep-copies the nested ndlog, so the pristine original is safe).
    """
    if not isinstance(snap.replay, dict) or not isinstance(
        snap.replay.get("ndlog"), dict
    ):
        return []
    ndlog = snap.replay["ndlog"]
    slices = ndlog.get("slices")
    packed = isinstance(slices, dict)
    events = ndlog.get("events")
    rare = ndlog.get("rare")
    modes = ["drop-log", "drop-header-key"]
    if packed:
        modes += ["truncate-column", "bad-varint", "wrong-count"]
        if isinstance(rare, list) and rare:
            modes.append("poison-rare")
    elif isinstance(events, list) and events:
        modes += ["drop-events", "poison-event-field"]
    mode = rng.choice(modes)

    def recode(key: str, mutate) -> None:
        raw = bytearray(base64.b64decode(slices[key]))
        slices[key] = base64.b64encode(bytes(mutate(raw))).decode("ascii")

    if mode == "truncate-column":
        key = rng.choice(("tids", "starts", "counts", "end_pcs"))
        chop = rng.randrange(1, 4)
        recode(key, lambda raw: raw[: max(0, len(raw) - chop)])
        return [
            f"ndlog/2: chopped {chop} byte(s) off column {key!r} "
            f"(expect ReplayUnavailable segment 'slices.{key}')"
        ]
    if mode == "bad-varint":
        key = rng.choice(("tids", "starts", "counts", "end_pcs"))
        extra = rng.randrange(1, 11)
        recode(key, lambda raw: raw + b"\x80" * extra)
        return [
            f"ndlog/2: appended {extra} runaway continuation byte(s) to "
            f"column {key!r} "
            f"(expect ReplayUnavailable segment 'slices.{key}')"
        ]
    if mode == "wrong-count":
        slices["count"] = int(slices.get("count", 0)) + rng.randrange(1, 4)
        # The tid column runs out first: its runs no longer cover count.
        return [
            "ndlog/2: slice count disagrees with the packed columns "
            "(expect ReplayUnavailable segment 'slices.tids')"
        ]
    if mode == "poison-rare":
        j = rng.randrange(len(rare))
        rare[j] = [rare[j][0], repr(rare[j][1])]  # event became a string
        return [
            f"ndlog/2: rare event {j} re-serialized as a string "
            f"(expect ReplayUnavailable segment 'rare[{j}]')"
        ]
    if mode == "drop-events":
        start = rng.randrange(len(events))
        end = min(len(events), start + rng.randrange(1, 8))
        del events[start:end]  # n_events now overstates the log
        return [
            f"ndlog: lost events {start}..{end} without fixing n_events "
            "(expect ReplayUnavailable segment 'events')"
        ]
    if mode == "poison-event-field":
        i = rng.randrange(len(events))
        event = events[i]
        # Only non-string fields: stringifying e.g. an "x" reason (a
        # string already) would leave the event valid.
        candidates = [
            f for f in range(1, len(event)) if not isinstance(event[f], str)
        ]
        field = rng.choice(candidates)
        event[field] = str(event[field])  # JSON survives, the type didn't
        return [
            f"ndlog: event {i} field {field} re-typed as a string "
            f"(expect ReplayUnavailable segment 'events[{i}]')"
        ]
    if mode == "drop-header-key":
        key = rng.choice(("modules", "start_threads", "runtime_id", "config"))
        ndlog.get("header", {}).pop(key, None)
        return [
            f"ndlog: header segment {key!r} lost "
            f"(expect ReplayUnavailable segment 'header.{key}')"
        ]
    del snap.replay["ndlog"]
    return [
        "ndlog: dropped entirely — snap degrades to seed-only "
        "(expect ReplayUnavailable segment 'ndlog')"
    ]


# ----------------------------------------------------------------------
# Snap- and fleet-level damage
# ----------------------------------------------------------------------
def skew_clock(snap: SnapFile, amount: int) -> list[str]:
    """Shift a snap's clock by ``amount`` — post-hoc extreme skew."""
    snap.clock += amount
    return [f"skewed {snap.machine_name} clock by {amount}"]


def drop_machine(
    snaps: list[SnapFile], rng: random.Random
) -> tuple[list[SnapFile], str]:
    """Remove one machine's snap entirely (`kill -9` before any snap,
    disk lost, never transmitted).  Returns (survivors, machine name)."""
    victim = rng.randrange(len(snaps))
    dropped = snaps[victim]
    survivors = snaps[:victim] + snaps[victim + 1 :]
    return survivors, dropped.machine_name


# ----------------------------------------------------------------------
# Archive (container-level) damage
# ----------------------------------------------------------------------
def tear_archive(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    """Truncate a compressed container (connection cut mid-transfer)."""
    keep = rng.randrange(8, max(9, len(data)))
    return data[:keep], f"archive torn at byte {keep}/{len(data)}"


def corrupt_archive(
    data: bytes, rng: random.Random, flips: int = 4
) -> tuple[bytes, list[str]]:
    """Flip random bits inside a compressed container's body."""
    out = bytearray(data)
    notes: list[str] = []
    # Skip the magic so format detection still works — damage to the
    # first bytes is covered by tear_archive.
    floor = min(8, len(out) - 1)
    for _ in range(flips):
        idx = rng.randrange(floor, len(out))
        bit = rng.randrange(8)
        out[idx] ^= 1 << bit
        notes.append(f"flipped bit {bit} of archive byte {idx}")
    return bytes(out), notes
