"""Named chaos scenarios: end-to-end damaged distributed runs.

Each scenario builds the same three-machine RPC chain (client ->
frontend -> backend, two nested RPCs, every process instrumented), runs
it on the simulated network, then injures the evidence the way one of
the paper's failure stories would (§2.1 eBay transmission, §4.1 wrapped
buffers, kill -9 mid-run, clock skew "even when large", §5).  The
result carries the surviving snaps, the mapfiles, and the ground-truth
damage list — everything a test (or a demo) needs to reconstruct in
salvage mode and check the degradation summary names each loss.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field

from repro.chaos.inject import (
    clobber_header,
    copy_snap,
    corrupt_archive,
    drop_machine,
    drop_sync_records,
    duplicate_sync_records,
    flip_bits,
    skew_clock,
    tear_archive,
    truncate_buffer,
    zero_words,
)
from repro.distributed.session import DistributedSession
from repro.instrument.mapfile import Mapfile
from repro.reconstruct import DistributedTrace, Reconstructor
from repro.runtime.archive import compress_snap, salvage_decompress
from repro.runtime.snap import SnapFile
from repro.runtime.sync import reset_runtime_ids

CLIENT_SRC = """
int argbuf[1];
int retbuf[1];
int main() {
    argbuf[0] = 20;
    int status;
    status = rpc_call(7, argbuf, 1, retbuf, 1);
    print_int(status);
    print_int(retbuf[0]);
    return 0;
}
"""

FRONTEND_SRC = """
int argbuf[1];
int retbuf[1];
int handle(int argaddr, int arglen, int retaddr, int retcap) {
    int value;
    int status;
    value = peek(argaddr);
    argbuf[0] = value + 1;
    status = rpc_call(8, argbuf, 1, retbuf, 1);
    poke(retaddr, retbuf[0]);
    return status;
}
"""

BACKEND_SRC = """
int handle(int argaddr, int arglen, int retaddr, int retcap) {
    poke(retaddr, peek(argaddr) * 2);
    return 0;
}
"""

#: Machine names of the standard topology, in caller -> callee order.
MACHINES = ["machine-a", "machine-b", "machine-c"]


@dataclass
class ChaosResult:
    """One damaged run, ready for reconstruction."""

    name: str
    #: Surviving snaps (None entries mark archive losses kept in place).
    snaps: list[SnapFile | None]
    mapfiles: list[Mapfile]
    #: Ground truth: what the injector destroyed.
    injected: list[str]
    #: Every machine that took part in the run.
    expected_machines: list[str] = field(default_factory=list)
    #: machine name -> archive/salvage loss lines discovered on load.
    salvage_notes: dict[str, list[str]] = field(default_factory=dict)
    #: Root of the snap vault the run drained into (vault scenarios).
    vault_dir: str | None = None
    #: Every regional vault root (federated scenarios).
    vault_dirs: list[str] = field(default_factory=list)
    #: The FederationReport document, when the evidence was gathered
    #: through a federated query (coverage ladder + per-vault status).
    federation: dict | None = None

    def reconstruct(self, strict: bool = False) -> DistributedTrace:
        """Reconstruct the damaged evidence (salvage mode by default)."""
        return Reconstructor(self.mapfiles).reconstruct_distributed(
            self.snaps,
            strict=strict,
            expected_machines=self.expected_machines,
            salvage_notes=self.salvage_notes,
        )


def build_base(
    skews: tuple[int, int, int] = (0, 0, 0),
    kill_at_cycles: int | None = None,
    rpc_chaos=None,
):
    """Run the standard chain and return (snaps, mapfiles, session).

    ``kill_at_cycles`` runs the network for that budget, then ``kill
    -9``s the frontend process via the VM kill path and lets the rest of
    the network drain — the paper's abrupt-termination story.
    ``rpc_chaos`` installs a network-level fault hook
    (see :class:`repro.distributed.network.Network`).
    """
    # Repeated runs in one process must be word-identical; rewind the
    # runtime-id allocator or SYNC records embed different ids.
    reset_runtime_ids()
    session = DistributedSession()
    machines = [
        session.add_machine(name, clock_skew=skew)
        for name, skew in zip(MACHINES, skews)
    ]
    session.add_process(machines[0], "client", CLIENT_SRC, start=True)
    session.add_process(
        machines[1], "frontend", FRONTEND_SRC, services={7: "handle"}
    )
    session.add_process(
        machines[2], "backend", BACKEND_SRC, services={8: "handle"}
    )
    if rpc_chaos is not None:
        session.network.rpc_chaos = rpc_chaos

    if kill_at_cycles is None:
        result = session.run()
        return result.snaps, result.mapfiles, session

    # Manual drive with a mid-run kill -9 of the frontend.
    for handle in session.nodes.values():
        if handle.entry_module is not None:
            handle.process.start(handle.entry_module)
    total = sum(m.cycles for m in session.network.machines)
    session.network.run(max_total_cycles=total + kill_at_cycles)
    session.nodes["frontend"].process.kill()
    session.network.run()
    snaps = []
    for handle in session.nodes.values():
        snap = handle.runtime.snap_store.latest()
        if snap is None:
            # Post-mortem snap: trace buffers outlive the kill (they
            # live in "memory-mapped files"), exactly the paper's claim.
            snap = handle.runtime.build_snap("post-mortem", {"signal": 9})
        snaps.append(snap)
    return snaps, session.mapfiles, session


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _base_result(name: str) -> ChaosResult:
    snaps, mapfiles, _ = build_base()
    return ChaosResult(
        name=name,
        snaps=[copy_snap(s) for s in snaps],
        mapfiles=mapfiles,
        injected=[],
        expected_machines=list(MACHINES),
    )


def scenario_corrupt_buffer(rng: random.Random) -> ChaosResult:
    """Bit-flips and zeroed runs inside one machine's buffer dumps."""
    result = _base_result("corrupt-buffer")
    victim = result.snaps[rng.randrange(len(result.snaps))]
    result.injected += flip_bits(victim, rng, flips=6)
    result.injected += zero_words(victim, rng, runs=1, run_len=12)
    return result


def scenario_torn_header(rng: random.Random) -> ChaosResult:
    """Clobbered buffer header words (magic / geometry / commit)."""
    result = _base_result("torn-header")
    victim = result.snaps[rng.randrange(len(result.snaps))]
    result.injected += clobber_header(victim, rng, words=2)
    return result


def scenario_truncated_buffer(rng: random.Random) -> ChaosResult:
    """One buffer's words cut short inside the snap artifact."""
    result = _base_result("truncated-buffer")
    victim = result.snaps[rng.randrange(len(result.snaps))]
    result.injected += truncate_buffer(victim, rng)
    return result


def scenario_truncated_archive(rng: random.Random) -> ChaosResult:
    """A compressed snap container torn in transmission; the survivors
    are salvaged from the partial container."""
    result = _base_result("truncated-archive")
    victim_idx = rng.randrange(len(result.snaps))
    victim = result.snaps[victim_idx]
    machine = victim.machine_name
    data = compress_snap(victim)
    torn, note = tear_archive(data, rng)
    result.injected.append(f"{machine}: {note}")
    salvaged, notes = salvage_decompress(torn)
    result.snaps[victim_idx] = salvaged  # may be None: total loss
    result.salvage_notes[machine] = notes or ["container unrecoverable"]
    return result


def scenario_corrupt_archive(rng: random.Random) -> ChaosResult:
    """Bit rot inside a compressed snap container."""
    result = _base_result("corrupt-archive")
    victim_idx = rng.randrange(len(result.snaps))
    victim = result.snaps[victim_idx]
    machine = victim.machine_name
    data = compress_snap(victim)
    bad, notes = corrupt_archive(data, rng)
    result.injected += [f"{machine}: {n}" for n in notes]
    salvaged, load_notes = salvage_decompress(bad)
    result.snaps[victim_idx] = salvaged
    result.salvage_notes[machine] = load_notes or []
    return result


def scenario_missing_machine(rng: random.Random) -> ChaosResult:
    """One machine contributes no snap at all."""
    result = _base_result("missing-machine")
    survivors, dropped = drop_machine(
        [s for s in result.snaps if s is not None], rng
    )
    result.snaps = list(survivors)
    result.injected.append(f"machine {dropped}: snap never arrived")
    return result


def scenario_dropped_sync(rng: random.Random) -> ChaosResult:
    """SYNC records zeroed out of the buffers: RPC legs lose evidence."""
    result = _base_result("dropped-sync")
    for snap in result.snaps:
        result.injected += drop_sync_records(snap, rng, count=1)
    return result


def scenario_duplicated_sync(rng: random.Random) -> ChaosResult:
    """SYNC records replayed over their neighbours."""
    result = _base_result("duplicated-sync")
    for snap in result.snaps:
        result.injected += duplicate_sync_records(snap, rng, count=1)
    return result


def scenario_clock_skew(rng: random.Random) -> ChaosResult:
    """Extreme inter-machine clock skew (§5.2: correct "even when the
    time skew between machines is large"), plus post-hoc metadata skew."""
    shifts = (0, rng.randrange(1 << 30, 1 << 34), -rng.randrange(1 << 30, 1 << 34))
    snaps, mapfiles, _ = build_base(skews=shifts)
    result = ChaosResult(
        name="clock-skew",
        snaps=[copy_snap(s) for s in snaps],
        mapfiles=mapfiles,
        injected=[f"machine skews {shifts}"],
        expected_machines=list(MACHINES),
    )
    result.injected += skew_clock(result.snaps[-1], 1 << 35)
    return result


def scenario_abrupt_kill(rng: random.Random) -> ChaosResult:
    """The frontend is kill -9'd mid-run (the VM kill path); its trace
    buffers are recovered post mortem."""
    cycles = rng.randrange(4_000, 40_000)
    snaps, mapfiles, _ = build_base(kill_at_cycles=cycles)
    return ChaosResult(
        name="abrupt-kill",
        snaps=[copy_snap(s) for s in snaps],
        mapfiles=mapfiles,
        injected=[f"frontend killed after ~{cycles} network cycles"],
        expected_machines=list(MACHINES),
    )


def scenario_stripped_sync_payload(rng: random.Random) -> ChaosResult:
    """The wire loses the out-of-band TraceBack triple (an
    uninstrumented hop): SYNC chains break at the network."""
    strip_after = rng.randrange(2)

    calls = {"n": 0}

    def hook(request):
        calls["n"] += 1
        if calls["n"] > strip_after:
            return "strip-sync"
        return None

    snaps, mapfiles, _ = build_base(rpc_chaos=hook)
    return ChaosResult(
        name="stripped-sync-payload",
        snaps=[copy_snap(s) for s in snaps],
        mapfiles=mapfiles,
        injected=[f"SYNC payload stripped after {strip_after} RPC(s)"],
        expected_machines=list(MACHINES),
    )


def scenario_killed_callee(rng: random.Random) -> ChaosResult:
    """The callee process is killed by the network instead of serving
    (server died between registration and dispatch)."""

    def hook(request):
        return "kill-callee" if request.service == 8 else None

    snaps, mapfiles, _ = build_base(rpc_chaos=hook)
    return ChaosResult(
        name="killed-callee",
        snaps=[copy_snap(s) for s in snaps],
        mapfiles=mapfiles,
        injected=["backend killed on first dispatch to service 8"],
        expected_machines=list(MACHINES),
    )


#: Crashing client for the vault scenarios: same RPC chain, then a
#: divide-by-zero after the reply — the unhandled trigger that starts
#: the group fan-out.
CLIENT_CRASH_SRC = """
int argbuf[1];
int retbuf[1];
int main() {
    argbuf[0] = 20;
    int status;
    status = rpc_call(7, argbuf, 1, retbuf, 1);
    print_int(status);
    int z;
    z = 1 / (retbuf[0] - retbuf[0]);
    return 0;
}
"""


def build_vault_run(
    vault_root: str | None = None,
    upload_chaos=None,
    collector_options: dict | None = None,
):
    """The standard chain, crashing client, draining into a snap vault.

    Every machine's service process is linked to the others, all three
    processes form one snap group ("chain"), and a collector forwards
    every snap into a :class:`~repro.fleet.store.SnapVault`.  Returns
    ``(vault, collector, session)`` with the network parked right after
    the crash's group fan-out has been uploaded — callers decide who to
    kill next.
    """
    from repro.distributed.session import DistributedSession
    from repro.fleet.store import SnapVault
    from repro.runtime.runtime import RuntimeConfig
    from repro.runtime.snap import SnapPolicy

    reset_runtime_ids()
    root = vault_root or tempfile.mkdtemp(prefix="tb-vault-")
    vault = SnapVault(root, shards=4)
    session = DistributedSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled")
        )
    )
    machines = [
        session.add_machine(name, clock_skew=skew)
        for name, skew in zip(MACHINES, (0, 1_000_000, -500_000))
    ]
    options = dict(batch_size=2, queue_limit=8)
    options.update(collector_options or {})
    collector = session.attach_vault(vault, **options)
    if upload_chaos is not None:
        session.network.upload_chaos = upload_chaos
    services = list(session.services.values())
    for service in services:
        service.configure_group("chain", ["client", "frontend", "backend"])
    for i, a in enumerate(services):
        for b in services[i + 1 :]:
            a.link(b)
    session.add_process(machines[0], "client", CLIENT_CRASH_SRC, start=True)
    session.add_process(
        machines[1], "frontend", FRONTEND_SRC, services={7: "handle"}
    )
    session.add_process(
        machines[2], "backend", BACKEND_SRC, services={8: "handle"}
    )
    for handle in session.nodes.values():
        if handle.entry_module is not None:
            handle.process.start(handle.entry_module)
    # Run until the crash has snapped and fanned out, then drain the
    # uplink so the evidence is durably in the vault.
    client_store = session.nodes["client"].runtime.snap_store
    for _ in range(500):
        total = sum(m.cycles for m in session.network.machines)
        session.network.run(max_total_cycles=total + 2_000)
        if client_store.snaps:
            break
    collector.drain()
    return vault, collector, session


def scenario_vault_machine_loss(rng: random.Random) -> ChaosResult:
    """A machine is ``kill -9``'d mid-run *after* its group snap was
    uploaded: the vault keeps the evidence the machine can no longer
    produce, and the surviving group snap still reconstructs.

    Uploads are also chaos-dropped with probability 1/3 (seeded), so
    the run only passes because retry-with-backoff redelivers.
    """

    def upload_chaos(machine, snap, attempt):
        return "drop" if rng.random() < (1 / 3) else None

    vault, collector, session = build_vault_run(upload_chaos=upload_chaos)
    uploaded_before_kill = len(vault)
    # The frontend machine dies abruptly; its pre-uploaded snaps are
    # the only evidence of it that will ever exist.
    for process in session.nodes["frontend"].process.machine.processes:
        process.kill()
    session.network.run()
    collector.drain()

    entries = vault.select()
    snaps = []
    salvage_notes: dict[str, list[str]] = {}
    for entry in entries:
        snap, notes = vault.load(entry.digest, salvage=True)
        snaps.append(snap)
        if notes:
            salvage_notes[entry.machine] = notes
    return ChaosResult(
        name="vault-machine-loss",
        snaps=snaps,
        mapfiles=session.mapfiles,
        injected=[
            "frontend machine killed after group-snap upload "
            f"({uploaded_before_kill} snap(s) already in the vault)",
            f"{collector.metrics.drops} upload(s) chaos-dropped in transit",
        ],
        expected_machines=list(MACHINES),
        salvage_notes=salvage_notes,
        vault_dir=vault.root,
    )


#: Regional vault layout for the federated scenarios: the crash chain
#: spans two regions, so one incident's evidence is split across vaults
#: that share no manifest — machine-c's group snap lives only in the
#: west vault.
REGIONS = {
    "vault-east": ("machine-a", "machine-b"),
    "vault-west": ("machine-c",),
}

#: The vault the federated scenarios lose.  Deliberately the *west*
#: vault: the client's triggering crash snap lives in the east, so the
#: partial result still contains the true first fault — what the
#: coverage ladder promises a responder ("partial" names the lost
#: region; the reachable evidence stays correct).
FEDERATION_VICTIM = "vault-west"


def build_federated_fleet(vault_roots: dict | None = None):
    """The crashing chain draining into two regional vaults.

    Same topology and crash as :func:`build_vault_run`, but each
    machine's service process forwards to its *region's* collector:
    machines a and b drain into the east vault, machine c into the
    west.  Every mapfile is stored in every vault before ingest (so
    each region mines signatures standalone).  Returns
    ``(vaults, session)`` with the crash fan-out drained — one
    distributed incident whose snaps are split across the two stores.
    """
    from repro.fleet.collector import Collector
    from repro.fleet.store import SnapVault
    from repro.runtime.runtime import RuntimeConfig
    from repro.runtime.snap import SnapPolicy

    reset_runtime_ids()
    roots = vault_roots or {
        name: tempfile.mkdtemp(prefix=f"tb-{name}-") for name in REGIONS
    }
    vaults = {name: SnapVault(roots[name], shards=4) for name in REGIONS}
    session = DistributedSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled")
        )
    )
    machines = [
        session.add_machine(name, clock_skew=skew)
        for name, skew in zip(MACHINES, (0, 1_000_000, -500_000))
    ]
    collectors = {
        name: Collector(
            vault,
            network=session.network,
            name=f"tb-collector-{name}",
            batch_size=2,
            queue_limit=8,
        )
        for name, vault in vaults.items()
    }
    for machine in machines:
        region = next(
            name for name, members in REGIONS.items() if machine.name in members
        )
        session.services[machine].forward_to(collectors[region])
    services = list(session.services.values())
    for service in services:
        service.configure_group("chain", ["client", "frontend", "backend"])
    for i, a in enumerate(services):
        for b in services[i + 1 :]:
            a.link(b)
    session.add_process(machines[0], "client", CLIENT_CRASH_SRC, start=True)
    session.add_process(
        machines[1], "frontend", FRONTEND_SRC, services={7: "handle"}
    )
    session.add_process(
        machines[2], "backend", BACKEND_SRC, services={8: "handle"}
    )
    # Sig mining happens at ingest; every region needs every mapfile
    # *before* the first snap arrives.
    for mapfile in session.mapfiles:
        for vault in vaults.values():
            vault.put_mapfile(mapfile)
    for handle in session.nodes.values():
        if handle.entry_module is not None:
            handle.process.start(handle.entry_module)
    client_store = session.nodes["client"].runtime.snap_store
    for _ in range(500):
        total = sum(m.cycles for m in session.network.machines)
        session.network.run(max_total_cycles=total + 2_000)
        if client_store.snaps:
            break
    for collector in collectors.values():
        collector.drain()
    return vaults, session


def serve_federation(
    vaults: dict,
    network,
    rng: random.Random | None = None,
    deadline: int = 20_000,
    max_retries: int = 1,
    backoff_base: int = 200,
    timeout: int = 200_000,
):
    """Serve every vault on ``network`` and return the federated view.

    Returns ``(federated, clients)`` where ``clients`` maps vault name
    to its :class:`~repro.fleet.remote.RemoteVaultClient` (handy for
    fetching blobs from the survivors after a partial answer).
    """
    from repro.fleet.federation import FederatedQuery
    from repro.fleet.remote import RemoteVaultClient, VaultService

    clients = {}
    for name, vault in vaults.items():
        network.register_vault_service(VaultService(vault, name=name))
        clients[name] = RemoteVaultClient(
            network,
            service=name,
            deadline=deadline,
            max_retries=max_retries,
            backoff_base=backoff_base,
            seed=rng.randrange(1 << 30) if rng is not None else 0,
        )
    return FederatedQuery(clients, timeout=timeout), clients


def _federated_result(
    name: str, rng: random.Random, verdict: str, injected_note: str
) -> ChaosResult:
    """Run the two-vault fleet, lose the west vault at query time via
    ``verdict``, gather the partial federated answer, and load the
    surviving evidence through the remote clients (blob CRC path)."""
    from repro.fleet.remote import RemoteQueryError

    vaults, session = build_federated_fleet()
    federated, clients = serve_federation(vaults, session.network, rng=rng)

    def query_chaos(service, op, attempt):
        return verdict if service == FEDERATION_VICTIM else None

    session.network.query_chaos = query_chaos
    incidents, report = federated.incidents()
    reachable = [
        clients[status.name] for status in report.vaults if status.answered
    ]
    snaps: list[SnapFile | None] = []
    salvage_notes: dict[str, list[str]] = {}
    for incident in incidents:
        for entry in incident.entries:
            for client in reachable:
                try:
                    snap, notes = client.load(entry.digest, salvage=True)
                except RemoteQueryError:
                    continue  # not this region's snap
                snaps.append(snap)
                if notes:
                    salvage_notes.setdefault(entry.machine, []).extend(notes)
                break
    lost = ", ".join(report.degraded_vaults()) or "none"
    return ChaosResult(
        name=name,
        snaps=snaps,
        mapfiles=session.mapfiles,
        injected=[
            f"vault {FEDERATION_VICTIM}: {injected_note}",
            f"federation coverage {report.coverage}; lost vault(s): {lost}",
        ],
        expected_machines=list(MACHINES),
        salvage_notes=salvage_notes,
        vault_dir=vaults["vault-east"].root,
        vault_dirs=[vault.root for vault in vaults.values()],
        federation=report.to_dict(),
    )


def scenario_federated_vault_loss(rng: random.Random) -> ChaosResult:
    """The west vault's query server dies mid-stream: the federated
    answer degrades to ``partial``, names the lost region, and the east
    evidence (including the true first fault) still reconstructs."""
    return _federated_result(
        "federated-vault-loss",
        rng,
        verdict="kill-server",
        injected_note="query server killed mid-stream",
    )


def scenario_slow_vault_timeout(rng: random.Random) -> ChaosResult:
    """Every reply from the west vault lands past the client's deadline:
    retries with backoff exhaust, the vault is reported timed out, and
    the federation degrades to a named partial answer instead of
    hanging."""
    return _federated_result(
        "slow-vault-timeout",
        rng,
        verdict="delay",
        injected_note="responses delayed past every deadline",
    )


SCENARIOS = {
    "corrupt-buffer": scenario_corrupt_buffer,
    "torn-header": scenario_torn_header,
    "truncated-buffer": scenario_truncated_buffer,
    "truncated-archive": scenario_truncated_archive,
    "corrupt-archive": scenario_corrupt_archive,
    "missing-machine": scenario_missing_machine,
    "dropped-sync": scenario_dropped_sync,
    "duplicated-sync": scenario_duplicated_sync,
    "clock-skew": scenario_clock_skew,
    "abrupt-kill": scenario_abrupt_kill,
    "stripped-sync-payload": scenario_stripped_sync_payload,
    "killed-callee": scenario_killed_callee,
    "vault-machine-loss": scenario_vault_machine_loss,
    "federated-vault-loss": scenario_federated_vault_loss,
    "slow-vault-timeout": scenario_slow_vault_timeout,
}


def run_scenario(name: str, seed: int = 0) -> ChaosResult:
    """Build and damage one named scenario, reproducibly."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}"
        ) from None
    return scenario(random.Random(seed))
