"""Fault injection ("chaos") for TraceBack artifacts (§2.1, §4.1).

TraceBack's value proposition is diagnosing the *first* fault from
whatever evidence survives — wrapped buffers, torn archives, ``kill
-9``'d processes, machines that never sent their snap.  This package
damages snaps and the distributed substrate systematically and
reproducibly, so salvage-mode reconstruction can be tested against
ground truth: every injector returns a description of exactly what it
destroyed, and every scenario pairs a damaged run with the machines it
expected.  See DESIGN.md, "Degradation ladder".
"""

from repro.chaos.inject import (
    clobber_header,
    copy_snap,
    corrupt_archive,
    damage_ndlog,
    drop_machine,
    drop_sync_records,
    duplicate_sync_records,
    flip_bits,
    skew_clock,
    tear_archive,
    truncate_buffer,
    zero_words,
)
from repro.chaos.scenarios import (
    MACHINES,
    SCENARIOS,
    ChaosResult,
    build_base,
    build_vault_run,
    run_scenario,
)

__all__ = [
    "MACHINES",
    "SCENARIOS",
    "ChaosResult",
    "build_base",
    "build_vault_run",
    "clobber_header",
    "copy_snap",
    "corrupt_archive",
    "damage_ndlog",
    "drop_machine",
    "drop_sync_records",
    "duplicate_sync_records",
    "flip_bits",
    "run_scenario",
    "skew_clock",
    "tear_archive",
    "truncate_buffer",
    "zero_words",
]
