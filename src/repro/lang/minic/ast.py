"""MiniC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class IntLit:
    value: int
    line: int = 0


@dataclass
class StrLit:
    value: str
    line: int = 0


@dataclass
class Var:
    """A scalar variable reference, an array decaying to its address, or
    a function name decaying to its code address."""

    name: str
    line: int = 0


@dataclass
class Index:
    """``base[index]`` where base names a local or global array."""

    name: str
    index: "Expr"
    line: int = 0


@dataclass
class Unary:
    op: str  # '-' or '!'
    operand: "Expr"
    line: int = 0


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass
class Call:
    """A user function call or a builtin (syscall wrapper)."""

    name: str
    args: list["Expr"]
    line: int = 0


Expr = IntLit | StrLit | Var | Index | Unary | Binary | Call


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Decl:
    """``int x;`` / ``int x = e;`` / ``int a[N];`` local declaration."""

    name: str
    size: int | None  # None = scalar; int = array of that many words
    init: Expr | None
    line: int = 0


@dataclass
class Assign:
    target: Var | Index
    value: Expr
    line: int = 0


@dataclass
class ExprStmt:
    expr: Expr
    line: int = 0


@dataclass
class If:
    cond: Expr
    then_body: list["Stmt"]
    else_body: list["Stmt"]
    line: int = 0


@dataclass
class While:
    cond: Expr
    body: list["Stmt"]
    line: int = 0


@dataclass
class For:
    init: "Stmt | None"
    cond: Expr | None
    step: "Stmt | None"
    body: list["Stmt"]
    line: int = 0


@dataclass
class Return:
    value: Expr | None
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


@dataclass
class Throw:
    value: Expr
    line: int = 0


@dataclass
class Try:
    body: list["Stmt"]
    catch_var: str
    catch_body: list["Stmt"]
    line: int = 0


Stmt = (
    Decl | Assign | ExprStmt | If | While | For | Return | Break
    | Continue | Throw | Try
)


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
@dataclass
class Param:
    name: str
    line: int = 0


@dataclass
class Function:
    name: str
    params: list[Param]
    body: list[Stmt]
    line: int = 0


@dataclass
class GlobalVar:
    """A module-level variable.  ``const`` variables go to rodata — a
    write through their address is an access violation (the Figure 6
    failure shape)."""

    name: str
    size: int | None
    init_values: list[int] = field(default_factory=list)
    const: bool = False
    line: int = 0


@dataclass
class ExternDecl:
    """``extern int f(...)``: a cross-module import."""

    name: str
    arity: int
    line: int = 0


@dataclass
class Program:
    functions: list[Function] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)
    externs: list[ExternDecl] = field(default_factory=list)
