"""MiniC: the C-like source language compiled to TBVM binaries."""

from repro.lang.minic.codegen import (
    BUILTINS,
    CodeGen,
    CompileError,
    compile_source,
    compile_to_asm,
)
from repro.lang.minic.lexer import LexError, Token, tokenize
from repro.lang.minic.parser import ParseError, parse

__all__ = [
    "BUILTINS",
    "CodeGen",
    "CompileError",
    "LexError",
    "ParseError",
    "Token",
    "compile_source",
    "compile_to_asm",
    "parse",
    "tokenize",
]
