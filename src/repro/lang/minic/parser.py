"""MiniC recursive-descent parser."""

from __future__ import annotations

from repro.lang.minic import ast
from repro.lang.minic.lexer import Token, tokenize


class ParseError(SyntaxError):
    """Syntax error with line information."""


class Parser:
    """One-token-lookahead recursive descent."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tok
        self._pos += 1
        return tok

    def _check(self, kind: str) -> bool:
        return self._tok.kind == kind

    def _accept(self, kind: str) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str) -> Token:
        if not self._check(kind):
            raise ParseError(
                f"line {self._tok.line}: expected {kind!r}, "
                f"found {self._tok.kind!r} ({self._tok.value!r})"
            )
        return self._advance()

    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._check("eof"):
            if self._check("extern"):
                program.externs.append(self._extern())
                continue
            const = self._accept("const") is not None
            self._expect_type()
            name = self._expect("ident")
            if self._check("(") and not const:
                program.functions.append(self._function(name))
            else:
                program.globals.append(self._global(name, const))
        return program

    def _expect_type(self) -> None:
        if not (self._accept("int") or self._accept("void")):
            raise ParseError(
                f"line {self._tok.line}: expected a type, found "
                f"{self._tok.value!r}"
            )

    def _extern(self) -> ast.ExternDecl:
        tok = self._expect("extern")
        self._expect_type()
        name = self._expect("ident")
        self._expect("(")
        arity = 0
        if not self._check(")"):
            while True:
                self._expect_type()
                self._accept("ident")
                arity += 1
                if not self._accept(","):
                    break
        self._expect(")")
        self._expect(";")
        return ast.ExternDecl(name=str(name.value), arity=arity, line=tok.line)

    def _function(self, name: Token) -> ast.Function:
        self._expect("(")
        params: list[ast.Param] = []
        if not self._check(")"):
            while True:
                self._expect_type()
                pname = self._expect("ident")
                params.append(ast.Param(name=str(pname.value), line=pname.line))
                if not self._accept(","):
                    break
        self._expect(")")
        body = self._block()
        return ast.Function(
            name=str(name.value), params=params, body=body, line=name.line
        )

    def _global(self, name: Token, const: bool) -> ast.GlobalVar:
        size: int | None = None
        if self._accept("["):
            size = int(self._expect("int").value)
            self._expect("]")
        init_values: list[int] = []
        if self._accept("="):
            if self._accept("{"):
                while not self._check("}"):
                    sign = -1 if self._accept("-") else 1
                    init_values.append(sign * int(self._expect("int").value))
                    if not self._accept(","):
                        break
                self._expect("}")
            elif self._check("string"):
                text = str(self._advance().value)
                init_values = [ord(c) for c in text] + [0]
                if size is None:
                    size = len(init_values)
            else:
                sign = -1 if self._accept("-") else 1
                init_values.append(sign * int(self._expect("int").value))
        self._expect(";")
        return ast.GlobalVar(
            name=str(name.value),
            size=size,
            init_values=init_values,
            const=const,
            line=name.line,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _block(self) -> list[ast.Stmt]:
        self._expect("{")
        stmts: list[ast.Stmt] = []
        while not self._check("}"):
            stmts.append(self._statement())
        self._expect("}")
        return stmts

    def _statement(self) -> ast.Stmt:
        tok = self._tok
        if tok.kind == "int":
            return self._decl()
        if tok.kind == "if":
            return self._if()
        if tok.kind == "while":
            return self._while()
        if tok.kind == "for":
            return self._for()
        if tok.kind == "return":
            self._advance()
            value = None if self._check(";") else self._expression()
            self._expect(";")
            return ast.Return(value=value, line=tok.line)
        if tok.kind == "break":
            self._advance()
            self._expect(";")
            return ast.Break(line=tok.line)
        if tok.kind == "continue":
            self._advance()
            self._expect(";")
            return ast.Continue(line=tok.line)
        if tok.kind == "throw":
            self._advance()
            value = self._expression()
            self._expect(";")
            return ast.Throw(value=value, line=tok.line)
        if tok.kind == "try":
            return self._try()
        if tok.kind == "{":
            # Anonymous block: flatten into an If(1) for simplicity?  No
            # — parse as statements inside an always-true If keeps
            # scoping honest enough for MiniC (single function scope).
            body = self._block()
            return ast.If(
                cond=ast.IntLit(1, tok.line), then_body=body, else_body=[],
                line=tok.line,
            )
        return self._simple_statement(semicolon=True)

    def _simple_statement(self, semicolon: bool) -> ast.Stmt:
        """Assignment or expression statement (used by for-clauses)."""
        tok = self._tok
        expr = self._expression()
        if self._accept("="):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError(f"line {tok.line}: bad assignment target")
            value = self._expression()
            if semicolon:
                self._expect(";")
            return ast.Assign(target=expr, value=value, line=tok.line)
        if semicolon:
            self._expect(";")
        return ast.ExprStmt(expr=expr, line=tok.line)

    def _decl(self) -> ast.Decl:
        tok = self._expect("int")
        name = self._expect("ident")
        size: int | None = None
        if self._accept("["):
            size = int(self._expect("int").value)
            self._expect("]")
        init = None
        if self._accept("="):
            if size is not None:
                raise ParseError(f"line {tok.line}: array initializers are "
                                 "only supported at global scope")
            init = self._expression()
        self._expect(";")
        return ast.Decl(name=str(name.value), size=size, init=init, line=tok.line)

    def _if(self) -> ast.If:
        tok = self._expect("if")
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        then_body = self._block()
        else_body: list[ast.Stmt] = []
        if self._accept("else"):
            if self._check("if"):
                else_body = [self._if()]
            else:
                else_body = self._block()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body,
                      line=tok.line)

    def _while(self) -> ast.While:
        tok = self._expect("while")
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        return ast.While(cond=cond, body=self._block(), line=tok.line)

    def _for(self) -> ast.For:
        tok = self._expect("for")
        self._expect("(")
        init: ast.Stmt | None = None
        if not self._check(";"):
            if self._check("int"):
                init = self._decl()  # consumes the ';'
            else:
                init = self._simple_statement(semicolon=True)
        else:
            self._expect(";")
        cond = None if self._check(";") else self._expression()
        self._expect(";")
        step = None if self._check(")") else self._simple_statement(semicolon=False)
        self._expect(")")
        return ast.For(init=init, cond=cond, step=step, body=self._block(),
                       line=tok.line)

    def _try(self) -> ast.Try:
        tok = self._expect("try")
        body = self._block()
        self._expect("catch")
        self._expect("(")
        var = self._expect("ident")
        self._expect(")")
        catch_body = self._block()
        return ast.Try(body=body, catch_var=str(var.value),
                       catch_body=catch_body, line=tok.line)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    _PRECEDENCE = {
        "||": 1,
        "&&": 2,
        "|": 3,
        "^": 4,
        "&": 5,
        "==": 6, "!=": 6,
        "<": 7, "<=": 7, ">": 7, ">=": 7,
        "<<": 8, ">>": 8,
        "+": 9, "-": 9,
        "*": 10, "/": 10, "%": 10,
    }

    def _expression(self, min_prec: int = 1) -> ast.Expr:
        left = self._unary()
        while True:
            op = self._tok.kind
            prec = self._PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return left
            tok = self._advance()
            right = self._expression(prec + 1)
            left = ast.Binary(op=op, left=left, right=right, line=tok.line)

    def _unary(self) -> ast.Expr:
        tok = self._tok
        if self._accept("-"):
            return ast.Unary(op="-", operand=self._unary(), line=tok.line)
        if self._accept("!"):
            return ast.Unary(op="!", operand=self._unary(), line=tok.line)
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._advance()
        if tok.kind in ("int", "char"):
            return ast.IntLit(value=int(tok.value), line=tok.line)
        if tok.kind == "string":
            return ast.StrLit(value=str(tok.value), line=tok.line)
        if tok.kind == "(":
            expr = self._expression()
            self._expect(")")
            return expr
        if tok.kind == "ident":
            name = str(tok.value)
            if self._accept("("):
                args: list[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._expression())
                        if not self._accept(","):
                            break
                self._expect(")")
                return ast.Call(name=name, args=args, line=tok.line)
            if self._accept("["):
                index = self._expression()
                self._expect("]")
                return ast.Index(name=name, index=index, line=tok.line)
            return ast.Var(name=name, line=tok.line)
        raise ParseError(
            f"line {tok.line}: unexpected {tok.kind!r} in expression"
        )


def parse(source: str) -> ast.Program:
    """Parse MiniC ``source`` into a :class:`~repro.lang.minic.ast.Program`."""
    return Parser(tokenize(source)).parse_program()
