"""MiniC code generator: AST -> TBVM assembly -> Module.

The generated code is deliberately straightforward (a stack machine for
expression temporaries, a frame pointer in r10): unoptimized code with
small basic blocks is what real compilers hand binary instrumenters, and
it keeps every line boundary visible to the tracer.

Calling convention: arguments in r0..r5 (max 6), result in r0, r10 is
the frame pointer (saved/restored by the callee's prologue/epilogue).
``.line`` directives are emitted per statement, so reconstruction's
source-line traces are exact.

With ``bounds_checks=True`` (the IL / managed-language mode) every array
index is range-checked and raises ``ARRAY_BOUNDS`` — the Java
``ArrayIndexOutOfBoundsException`` analog from the paper's §3.6 example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.asm import assemble
from repro.isa.module import Module
from repro.lang.minic import ast
from repro.lang.minic.parser import parse
from repro.vm.errors import ExcCode

#: builtin name -> (syscall number, arity)
BUILTINS = {
    "print_int": (1, 1),
    "print_str": (2, 1),
    "putc": (3, 1),
    "exit_thread": (4, 1),
    "exit": (5, 1),
    "sbrk": (6, 1),
    "clock": (7, 0),
    "sleep": (8, 1),
    "io_read": (9, 1),
    "io_write": (10, 1),
    "thread_create": (11, 2),
    "lock": (12, 1),
    "unlock": (13, 1),
    "rpc_call": (14, 5),
    "yield": (15, 0),
    "rand": (16, 0),
    "gettid": (17, 0),
    "signal": (18, 2),
    "snap": (19, 1),
}

MAX_PARAMS = 6


class CompileError(Exception):
    """Semantic error in a MiniC program."""


@dataclass
class _LocalInfo:
    slot: int
    size: int | None  # None = scalar


@dataclass
class _GlobalInfo:
    size: int | None
    const: bool


class CodeGen:
    """Compiles one MiniC translation unit into assembly text."""

    def __init__(
        self,
        program: ast.Program,
        module_name: str,
        file_name: str,
        bounds_checks: bool = False,
    ):
        self.program = program
        self.module_name = module_name
        self.file_name = file_name
        self.bounds_checks = bounds_checks
        self.lines: list[str] = []
        self._strings: dict[str, str] = {}
        self._label_counter = 0
        self._functions = {f.name for f in program.functions}
        self._externs = {e.name for e in program.externs}
        self._globals: dict[str, _GlobalInfo] = {
            g.name: _GlobalInfo(size=g.size, const=g.const) for g in program.globals
        }
        # Per-function state.
        self._locals: dict[str, _LocalInfo] = {}
        self._frame_slots = 0
        self._loop_stack: list[tuple[str, str]] = []  # (break, continue)
        self._handlers: list[str] = []
        self._current_line = -1

    # ------------------------------------------------------------------
    def generate(self) -> str:
        """Produce the full assembly text."""
        for func in self.program.functions:
            if func.name in BUILTINS:
                raise CompileError(
                    f"line {func.line}: {func.name!r} is a builtin"
                )
        out = self.lines
        out.append(f".module {self.module_name}")
        if "main" in self._functions:
            out.append(".entry main")
        for extern in self.program.externs:
            out.append(f".import {extern.name}")
        for func in self.program.functions:
            out.append(f".export {func.name}")
        for func in self.program.functions:
            self._function(func)
        self._data_sections()
        return "\n".join(out) + "\n"

    def module(self) -> Module:
        """Generate and assemble into a binary module."""
        return assemble(self.generate())

    # ------------------------------------------------------------------
    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return f"L{hint}_{self._label_counter}"

    def _emit(self, text: str) -> None:
        self.lines.append(f"  {text}")

    def _emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def _emit_line_marker(self, line: int) -> None:
        if line > 0 and line != self._current_line:
            self.lines.append(f".line {self.file_name} {line}")
            self._current_line = line

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def _collect_locals(self, func: ast.Function) -> int:
        """Assign frame slots to params, declarations, and catch vars."""
        self._locals = {}
        slot = 0
        for param in func.params:
            self._locals[param.name] = _LocalInfo(slot=slot, size=None)
            slot += 1

        def walk(stmts: list[ast.Stmt]) -> None:
            nonlocal slot
            for stmt in stmts:
                if isinstance(stmt, ast.Decl):
                    if stmt.name not in self._locals:
                        width = stmt.size if stmt.size is not None else 1
                        self._locals[stmt.name] = _LocalInfo(
                            slot=slot, size=stmt.size
                        )
                        slot += width
                elif isinstance(stmt, ast.If):
                    walk(stmt.then_body)
                    walk(stmt.else_body)
                elif isinstance(stmt, ast.While):
                    walk(stmt.body)
                elif isinstance(stmt, ast.For):
                    if stmt.init is not None:
                        walk([stmt.init])
                    if stmt.step is not None:
                        walk([stmt.step])
                    walk(stmt.body)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body)
                    if stmt.catch_var not in self._locals:
                        self._locals[stmt.catch_var] = _LocalInfo(
                            slot=slot, size=None
                        )
                        slot += 1
                    walk(stmt.catch_body)

        walk(func.body)
        return slot

    def _function(self, func: ast.Function) -> None:
        if len(func.params) > MAX_PARAMS:
            raise CompileError(
                f"line {func.line}: {func.name} has more than "
                f"{MAX_PARAMS} parameters"
            )
        n = self._collect_locals(func)
        self._frame_slots = n
        self._current_line = -1
        self.lines.append(f".func {func.name}")
        self.lines.append(f".frame {n + 1}")  # +1 for the saved fp
        self._emit_line_marker(func.line)
        self._emit("push r10")
        self._emit("mov r10, sp")
        if n:
            self._emit(f"addi sp, sp, {-n}")
        for i, param in enumerate(func.params):
            info = self._locals[param.name]
            self._emit(f"stw r{i}, r10, {info.slot - n}")
        self._stmts(func.body)
        # Implicit `return 0` at the end of the body.
        self._emit("li r0, 0")
        self._epilogue()
        for handler in self._handlers:
            self.lines.append(handler)
        self._handlers = []
        self.lines.append(".endfunc")

    def _epilogue(self) -> None:
        self._emit("mov sp, r10")
        self._emit("pop r10")
        self._emit("ret")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _stmts(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt) -> None:
        self._emit_line_marker(stmt.line)
        if isinstance(stmt, ast.Decl):
            if stmt.init is not None:
                self._expr(stmt.init)
                info = self._locals[stmt.name]
                self._emit(f"stw r0, r10, {info.slot - self._frame_slots}")
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            else:
                self._emit("li r0, 0")
            self._epilogue()
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise CompileError(f"line {stmt.line}: break outside a loop")
            self._emit(f"br {self._loop_stack[-1][0]}")
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise CompileError(f"line {stmt.line}: continue outside a loop")
            self._emit(f"br {self._loop_stack[-1][1]}")
        elif isinstance(stmt, ast.Throw):
            self._expr(stmt.value)
            self._emit("throw r0")
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"unhandled statement {stmt!r}")

    def _assign(self, stmt: ast.Assign) -> None:
        self._expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Var):
            if target.name in self._locals:
                info = self._locals[target.name]
                if info.size is not None:
                    raise CompileError(
                        f"line {stmt.line}: cannot assign to array "
                        f"{target.name!r}"
                    )
                self._emit(f"stw r0, r10, {info.slot - self._frame_slots}")
            elif target.name in self._globals:
                # Writes to const globals are emitted as-is: the fault
                # happens at runtime (the Figure 6 shape).
                self._emit(f"la r1, {target.name}")
                self._emit("stw r0, r1, 0")
            else:
                raise CompileError(
                    f"line {stmt.line}: unknown variable {target.name!r}"
                )
        else:  # Index
            self._emit("push r0")  # the value
            self._elem_address(target)  # address into r0
            self._emit("pop r1")
            self._emit("stw r1, r0, 0")

    def _if(self, stmt: ast.If) -> None:
        l_else = self._label("else")
        l_end = self._label("endif")
        self._expr(stmt.cond)
        self._emit(f"bz r0, {l_else}")
        self._stmts(stmt.then_body)
        self._emit(f"br {l_end}")
        self._emit_label(l_else)
        self._stmts(stmt.else_body)
        self._emit_label(l_end)

    def _while(self, stmt: ast.While) -> None:
        l_cond = self._label("while")
        l_end = self._label("endwhile")
        self._emit_label(l_cond)
        self._emit_line_marker(stmt.line)
        self._expr(stmt.cond)
        self._emit(f"bz r0, {l_end}")
        self._loop_stack.append((l_end, l_cond))
        self._stmts(stmt.body)
        self._loop_stack.pop()
        self._emit(f"br {l_cond}")
        self._emit_label(l_end)

    def _for(self, stmt: ast.For) -> None:
        l_cond = self._label("for")
        l_step = self._label("forstep")
        l_end = self._label("endfor")
        if stmt.init is not None:
            self._stmt(stmt.init)
        self._emit_label(l_cond)
        if stmt.cond is not None:
            self._emit_line_marker(stmt.line)
            self._expr(stmt.cond)
            self._emit(f"bz r0, {l_end}")
        self._loop_stack.append((l_end, l_step))
        self._stmts(stmt.body)
        self._loop_stack.pop()
        self._emit_label(l_step)
        if stmt.step is not None:
            self._stmt(stmt.step)
        self._emit(f"br {l_cond}")
        self._emit_label(l_end)

    def _try(self, stmt: ast.Try) -> None:
        l_try0 = self._label("try")
        l_try1 = self._label("endtry")
        l_catch = self._label("catch")
        l_done = self._label("donetry")
        self._emit_label(l_try0)
        self._stmts(stmt.body)
        self._emit_label(l_try1)
        self._emit(f"br {l_done}")
        self._emit_label(l_catch)
        # Re-derive the frame pointer: the unwinder restored sp to the
        # post-prologue value, but r10 may hold a callee's frame.
        self._emit("mov r10, sp")
        if self._frame_slots:
            self._emit(f"addi r10, r10, {self._frame_slots}")
        info = self._locals[stmt.catch_var]
        self._emit(f"stw r0, r10, {info.slot - self._frame_slots}")
        self._stmts(stmt.catch_body)
        self._emit_label(l_done)
        self._handlers.append(f".handler {l_try0} {l_try1} {l_catch}")

    # ------------------------------------------------------------------
    # Expressions (result in r0; temporaries on the guest stack)
    # ------------------------------------------------------------------
    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLit):
            self._emit(f"li r0, {expr.value}")
        elif isinstance(expr, ast.StrLit):
            self._emit(f"la r0, {self._intern(expr.value)}")
        elif isinstance(expr, ast.Var):
            self._var(expr)
        elif isinstance(expr, ast.Index):
            self._elem_address(expr)
            self._emit("ldw r0, r0, 0")
        elif isinstance(expr, ast.Unary):
            self._expr(expr.operand)
            if expr.op == "-":
                self._emit("li r1, 0")
                self._emit("sub r0, r1, r0")
            else:  # '!'
                self._emit("li r1, 0")
                self._emit("seq r0, r0, r1")
        elif isinstance(expr, ast.Binary):
            self._binary(expr)
        elif isinstance(expr, ast.Call):
            self._call(expr)
        else:  # pragma: no cover
            raise CompileError(f"unhandled expression {expr!r}")

    def _var(self, expr: ast.Var) -> None:
        name = expr.name
        if name in self._locals:
            info = self._locals[name]
            offset = info.slot - self._frame_slots
            if info.size is None:
                self._emit(f"ldw r0, r10, {offset}")
            else:  # array decays to its address
                self._emit(f"addi r0, r10, {offset}")
        elif name in self._globals:
            info = self._globals[name]
            self._emit(f"la r0, {name}")
            if info.size is None:
                self._emit("ldw r0, r0, 0")
        elif name in self._functions:
            self._emit(f"la r0, {name}")  # function value (thread entry)
        else:
            raise CompileError(f"line {expr.line}: unknown name {name!r}")

    def _elem_address(self, expr: ast.Index) -> None:
        """Address of ``name[index]`` into r0 (with optional bounds check)."""
        name = expr.name
        self._expr(expr.index)
        size: int | None = None
        if name in self._locals:
            size = self._locals[name].size
            if size is None:
                raise CompileError(
                    f"line {expr.line}: {name!r} is not an array"
                )
        elif name in self._globals:
            size = self._globals[name].size
        else:
            raise CompileError(f"line {expr.line}: unknown array {name!r}")
        if self.bounds_checks and size is not None:
            l_ok = self._label("bok")
            l_throw = self._label("bthrow")
            self._emit("li r1, 0")
            self._emit(f"blt r0, r1, {l_throw}")
            self._emit(f"li r1, {size}")
            self._emit(f"blt r0, r1, {l_ok}")
            self._emit_label(l_throw)
            self._emit(f"li r1, {ExcCode.ARRAY_BOUNDS}")
            self._emit("throw r1")
            self._emit_label(l_ok)
        self._emit("push r0")
        if name in self._locals:
            info = self._locals[name]
            self._emit(f"addi r0, r10, {info.slot - self._frame_slots}")
        else:
            self._emit(f"la r0, {name}")
        self._emit("pop r1")
        self._emit("add r0, r0, r1")

    _CMP = {
        "==": "seq r0, r1, r0",
        "!=": "sne r0, r1, r0",
        "<": "slt r0, r1, r0",
        "<=": "sle r0, r1, r0",
        ">": "slt r0, r0, r1",
        ">=": "sle r0, r0, r1",
    }
    _ARITH = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
        "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    }

    def _binary(self, expr: ast.Binary) -> None:
        if expr.op == "&&":
            l_false = self._label("andf")
            l_end = self._label("ande")
            self._expr(expr.left)
            self._emit(f"bz r0, {l_false}")
            self._expr(expr.right)
            self._emit(f"bz r0, {l_false}")
            self._emit("li r0, 1")
            self._emit(f"br {l_end}")
            self._emit_label(l_false)
            self._emit("li r0, 0")
            self._emit_label(l_end)
            return
        if expr.op == "||":
            l_true = self._label("ort")
            l_end = self._label("ore")
            self._expr(expr.left)
            self._emit(f"bnz r0, {l_true}")
            self._expr(expr.right)
            self._emit(f"bnz r0, {l_true}")
            self._emit("li r0, 0")
            self._emit(f"br {l_end}")
            self._emit_label(l_true)
            self._emit("li r0, 1")
            self._emit_label(l_end)
            return
        self._expr(expr.left)
        self._emit("push r0")
        self._expr(expr.right)
        self._emit("pop r1")  # r1 = left, r0 = right
        if expr.op in self._CMP:
            self._emit(self._CMP[expr.op])
        else:
            self._emit(f"{self._ARITH[expr.op]} r0, r1, r0")

    def _call(self, expr: ast.Call) -> None:
        name = expr.name
        arity = len(expr.args)
        if name == "peek":
            # peek(addr): raw memory read — how RPC handlers reach their
            # marshaled argument buffers.
            if arity != 1:
                raise CompileError(f"line {expr.line}: peek wants 1 arg")
            self._expr(expr.args[0])
            self._emit("ldw r0, r0, 0")
            return
        if name == "poke":
            # poke(addr, value): raw memory write.
            if arity != 2:
                raise CompileError(f"line {expr.line}: poke wants 2 args")
            self._expr(expr.args[0])
            self._emit("push r0")
            self._expr(expr.args[1])
            self._emit("pop r1")
            self._emit("stw r0, r1, 0")
            return
        if name in BUILTINS:
            number, want = BUILTINS[name]
            if arity != want:
                raise CompileError(
                    f"line {expr.line}: {name} wants {want} args, got {arity}"
                )
        elif name not in self._functions and name not in self._externs:
            raise CompileError(f"line {expr.line}: unknown function {name!r}")
        if arity > MAX_PARAMS:
            raise CompileError(f"line {expr.line}: too many arguments")
        for arg in expr.args:
            self._expr(arg)
            self._emit("push r0")
        for i in reversed(range(arity)):
            self._emit(f"pop r{i}")
        if name in BUILTINS:
            self._emit(f"sys {BUILTINS[name][0]}")
        elif name in self._functions:
            self._emit(f"call {name}")
        else:
            self._emit(f"callx {name}")

    # ------------------------------------------------------------------
    # Data sections
    # ------------------------------------------------------------------
    def _intern(self, text: str) -> str:
        if text not in self._strings:
            self._strings[text] = f"__str_{len(self._strings)}"
        return self._strings[text]

    def _data_sections(self) -> None:
        data = [g for g in self.program.globals if not g.const]
        rodata = [g for g in self.program.globals if g.const]
        if data:
            self.lines.append(".data")
            for g in data:
                self._global_words(g)
        if rodata or self._strings:
            self.lines.append(".rodata")
            for g in rodata:
                self._global_words(g)
            for text, label in self._strings.items():
                escaped = text.replace("\\", "\\\\").replace('"', '\\"')
                escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
                self.lines.append(f'{label}: .str "{escaped}"')

    def _global_words(self, g: ast.GlobalVar) -> None:
        size = g.size if g.size is not None else 1
        values = list(g.init_values[:size])
        values += [0] * (size - len(values))
        words = " ".join(str(v) for v in values)
        self.lines.append(f"{g.name}: .word {words}")


def compile_source(
    source: str,
    module_name: str = "main",
    file_name: str | None = None,
    bounds_checks: bool = False,
) -> Module:
    """Compile MiniC source into an (uninstrumented) TBVM module."""
    program = parse(source)
    gen = CodeGen(
        program,
        module_name=module_name,
        file_name=file_name or f"{module_name}.c",
        bounds_checks=bounds_checks,
    )
    return gen.module()


def compile_to_asm(
    source: str,
    module_name: str = "main",
    file_name: str | None = None,
    bounds_checks: bool = False,
) -> str:
    """Compile MiniC source to assembly text (debugging aid)."""
    program = parse(source)
    return CodeGen(
        program,
        module_name=module_name,
        file_name=file_name or f"{module_name}.c",
        bounds_checks=bounds_checks,
    ).generate()
