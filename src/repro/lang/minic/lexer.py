"""MiniC lexer.

MiniC is the C-like source language of the reproduction: the substrate
"compiler producing binaries" whose output TraceBack instruments.  The
lexer produces a flat token stream with line numbers — line numbers are
load-bearing, since the whole point of reconstruction is a source-line
trace.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "int",
    "void",
    "const",
    "extern",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "try",
    "catch",
    "throw",
}

#: Multi-character operators, longest first.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class LexError(SyntaxError):
    """Bad input character or malformed literal."""


@dataclass(frozen=True)
class Token:
    """One token: kind is 'ident', 'int', 'string', 'char', a keyword,
    an operator, or 'eof'."""

    kind: str
    value: str | int
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r}, line={self.line})"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens (ending with one 'eof' token)."""
    tokens: list[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(f"line {line}: unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isalnum() or source[j] == "x"):
                j += 1
            text = source[i:j]
            try:
                value = int(text, 0)
            except ValueError:
                raise LexError(f"line {line}: bad number {text!r}") from None
            tokens.append(Token("int", value, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if ch == '"':
            j = i + 1
            chars = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    chars.append({"n": "\n", "t": "\t", "0": "\0",
                                  "\\": "\\", '"': '"'}.get(esc, esc))
                    j += 2
                else:
                    chars.append(source[j])
                    j += 1
            if j >= n:
                raise LexError(f"line {line}: unterminated string")
            tokens.append(Token("string", "".join(chars), line))
            i = j + 1
            continue
        if ch == "'":
            if i + 2 < n and source[i + 1] == "\\" and source[i + 3] == "'":
                esc = source[i + 2]
                value = ord({"n": "\n", "t": "\t", "0": "\0"}.get(esc, esc))
                tokens.append(Token("char", value, line))
                i += 4
                continue
            if i + 2 < n and source[i + 2] == "'":
                tokens.append(Token("char", ord(source[i + 1]), line))
                i += 3
                continue
            raise LexError(f"line {line}: bad character literal")
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line))
                i += len(op)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
