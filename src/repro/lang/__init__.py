"""Source-language frontends targeting TBVM."""
