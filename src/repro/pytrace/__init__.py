"""pytrace: a sys.settrace flight recorder using TraceBack's record
format and display pipeline — first-fault diagnosis for real Python."""

from repro.pytrace.tracer import (
    PY_CALL,
    PY_RETURN,
    LineSite,
    PyTracer,
    flight_recorded,
)

__all__ = ["LineSite", "PY_CALL", "PY_RETURN", "PyTracer", "flight_recorded"]
