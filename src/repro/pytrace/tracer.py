"""A TraceBack-style flight recorder for real Python programs.

The calibration note for this reproduction observes that the only
faithful Python analog of binary instrumentation is ``sys.settrace`` —
so this package provides exactly that: a per-thread ring-buffer flight
recorder that writes the *same 32-bit record format* as the TBVM probes
(DAG records per executed line, extended records for calls, returns,
and exceptions) and reconstructs with the same display machinery.

Mapping onto the paper's design:

* each traced code object is a "module"; each of its source lines is a
  single-block DAG (the IL-mode degenerate case of §2.4, where blocks
  are line-granular and exception reporting is exact);
* DAG ids are allocated on first sight of a code object — runtime
  rebasing, in effect, with the id table doubling as the mapfile;
* buffers are rings of sub-buffers with sentinels and commit counters,
  so a process killed hard still yields "the last non-zero entry";
* exceptions write EXCEPTION records; the most recent history survives
  in the ring exactly as in §3.2.

Usage::

    tracer = PyTracer()
    with tracer:
        buggy_function()
    print(tracer.render(tracer.reconstruct()))
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field

from repro.reconstruct.model import LineStep, ThreadTrace, TraceEvent
from repro.runtime.records import (
    DagRecord,
    ExtKind,
    ExtRecord,
    INVALID,
    MAX_DAG_ID,
    SENTINEL,
    read_forward,
)

#: MODULE_EVENT inline payloads used for Python call/return markers.
PY_CALL = 1
PY_RETURN = 2


def flight_recorded(fn=None, *, stream=None, **tracer_kwargs):
    """Decorator: record ``fn``; on an uncaught exception, print the
    flight recording before re-raising.

    The snap-on-fault workflow in one line::

        @flight_recorded
        def main(): ...
    """
    import functools

    def wrap(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            tracer = PyTracer(**tracer_kwargs)
            try:
                with tracer:
                    return func(*args, **kwargs)
            except Exception:
                import sys as _sys

                out = stream if stream is not None else _sys.stderr
                print(
                    f"--- flight recording of {func.__name__} "
                    "(uncaught exception) ---",
                    file=out,
                )
                print(tracer.render(), file=out)
                raise

        return wrapper

    if fn is not None:
        return wrap(fn)
    return wrap


@dataclass
class LineSite:
    """One (code object, line) site: a single-block DAG."""

    dag_id: int
    filename: str
    funcname: str
    lineno: int


@dataclass
class _Ring:
    """A per-thread ring of sub-buffers (host-side TraceBuffer)."""

    sub_count: int
    sub_size: int
    words: list[int] = field(default_factory=list)
    cursor: int = -1  # index of the last written word
    committed: int = -1
    commits: int = 0

    def __post_init__(self) -> None:
        self.words = [INVALID] * (self.sub_count * self.sub_size)
        for sub in range(self.sub_count):
            self.words[self.sub_end(sub)] = SENTINEL

    def sub_start(self, sub: int) -> int:
        return sub * self.sub_size

    def sub_end(self, sub: int) -> int:
        return self.sub_start(sub) + self.sub_size - 1

    def _wrap(self, sentinel_pos: int) -> int:
        sub = sentinel_pos // self.sub_size
        self.committed = sub
        self.commits += 1
        nxt = (sub + 1) % self.sub_count
        start, end = self.sub_start(nxt), self.sub_end(nxt)
        for i in range(start, end):
            self.words[i] = INVALID
        return start

    def append_words(self, words: list[int]) -> None:
        pos = self.cursor + 1
        if pos >= len(self.words):
            pos = self._wrap(self.sub_end(self.sub_count - 1))
        sub = pos // self.sub_size
        if pos + len(words) > self.sub_end(sub):
            pos = self._wrap(self.sub_end(sub))
        for i, word in enumerate(words):
            self.words[pos + i] = word
        self.cursor = pos + len(words) - 1

    def append(self, record) -> None:
        encoded = record.encode()
        self.append_words([encoded] if isinstance(encoded, int) else encoded)


class PyTracer:
    """The flight recorder.  One instance traces one ``with`` region (or
    explicit install/uninstall pair), across all threads started inside
    it."""

    def __init__(
        self,
        sub_buffers: int = 8,
        sub_buffer_words: int = 4096,
        trace_stdlib: bool = False,
    ):
        self.sub_buffers = sub_buffers
        self.sub_buffer_words = sub_buffer_words
        self.trace_stdlib = trace_stdlib
        #: (code id, lineno) -> LineSite; the in-memory mapfile.
        self.sites: dict[tuple[int, int], LineSite] = {}
        self.rings: dict[int, _Ring] = {}
        self._next_dag = 16
        self._lock = threading.Lock()
        self._installed = False
        self._prev_trace = None
        self._exc_names: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Start recording (``sys.settrace`` + ``threading.settrace``)."""
        self._prev_trace = sys.gettrace()
        sys.settrace(self._trace)
        threading.settrace(self._trace)
        self._installed = True

    def uninstall(self) -> None:
        """Stop recording."""
        sys.settrace(self._prev_trace)
        threading.settrace(self._prev_trace)  # type: ignore[arg-type]
        self._installed = False

    def __enter__(self) -> "PyTracer":
        self.install()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    def run(self, fn, *args, **kwargs):
        """Trace one call; the exception (if any) stays recorded and is
        re-raised."""
        with self:
            return fn(*args, **kwargs)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _ring(self) -> _Ring:
        tid = threading.get_ident()
        ring = self.rings.get(tid)
        if ring is None:
            ring = _Ring(sub_count=self.sub_buffers, sub_size=self.sub_buffer_words)
            self.rings[tid] = ring
            ring.append(
                ExtRecord(ExtKind.THREAD_START, inline=0,
                          payload=(tid & 0xFFFFFFFF, 0, 0))
            )
        return ring

    def _should_trace(self, frame) -> bool:
        filename = frame.f_code.co_filename
        if filename.startswith("<"):
            return True
        if not self.trace_stdlib and (
            "site-packages" in filename
            or filename.startswith(sys.prefix)
        ):
            return False
        if "repro/pytrace" in filename.replace("\\", "/"):
            return False  # never trace the tracer
        return True

    def _site(self, frame) -> LineSite:
        code = frame.f_code
        key = (id(code), frame.f_lineno)
        site = self.sites.get(key)
        if site is None:
            with self._lock:
                site = self.sites.get(key)
                if site is None:
                    if self._next_dag >= MAX_DAG_ID:
                        raise RuntimeError("pytrace DAG id space exhausted")
                    site = LineSite(
                        dag_id=self._next_dag,
                        filename=code.co_filename,
                        funcname=code.co_qualname
                        if hasattr(code, "co_qualname")
                        else code.co_name,
                        lineno=frame.f_lineno,
                    )
                    self._next_dag += 1
                    self.sites[key] = site
        return site

    def _trace(self, frame, event, arg):
        if not self._should_trace(frame):
            return None
        ring = self._ring()
        if event == "line":
            ring.append(DagRecord(dag_id=self._site(frame).dag_id, path_bits=0))
        elif event == "call":
            site = self._site(frame)
            ring.append(
                ExtRecord(ExtKind.MODULE_EVENT, inline=PY_CALL,
                          payload=(site.dag_id,))
            )
        elif event == "return":
            site = self._site(frame)
            ring.append(
                ExtRecord(ExtKind.MODULE_EVENT, inline=PY_RETURN,
                          payload=(site.dag_id,))
            )
        elif event == "exception":
            exc_type = arg[0]
            site = self._site(frame)
            code = hash(exc_type.__name__) & 0xFFFF
            ring.append(
                ExtRecord(ExtKind.EXCEPTION, inline=code,
                          payload=(code, site.dag_id, 0, 0))
            )
            self._exc_names[code] = exc_type.__name__
        return self._trace

    # ------------------------------------------------------------------
    # Reconstruction (reuses the TraceBack display model)
    # ------------------------------------------------------------------
    def _site_by_dag(self) -> dict[int, LineSite]:
        return {site.dag_id: site for site in self.sites.values()}

    def reconstruct(self) -> list[ThreadTrace]:
        """Ring buffers -> ThreadTrace objects (one per thread)."""
        by_dag = self._site_by_dag()
        traces = []
        for tid, ring in self.rings.items():
            trace = ThreadTrace(
                tid=tid & 0xFFFF,
                buffer_index=0,
                process_name="python",
                machine_name="host",
                truncated=ring.commits >= ring.sub_count,
            )
            records = self._mine(ring)
            seq = 0
            depth = 0
            for record in records:
                step = self._to_step(record, by_dag)
                if step is None:
                    continue
                step.seq = seq
                seq += 1
                # Depth from the Python call/return events themselves.
                if isinstance(step, LineStep) and step.is_func_entry:
                    depth += 1
                    step.depth = depth
                elif isinstance(step, TraceEvent) and step.kind == "py_return":
                    step.depth = depth
                    depth = max(0, depth - 1)
                else:
                    step.depth = depth
                trace.steps.append(step)
            traces.append(trace)
        return traces

    def _mine(self, ring: _Ring):
        records = []
        if ring.committed < 0:
            order = [0]
        else:
            current = (ring.committed + 1) % ring.sub_count
            order = [
                (current + 1 + i) % ring.sub_count for i in range(ring.sub_count)
            ]
        for sub in order:
            records.extend(
                read_forward(ring.words, ring.sub_start(sub), ring.sub_end(sub))
            )
        return records

    def _to_step(self, record, by_dag):
        if isinstance(record, DagRecord):
            site = by_dag.get(record.dag_id)
            if site is None:
                return TraceEvent(kind="untraced",
                                  detail={"why": "unknown-dag"})
            return LineStep(
                module=site.filename.rsplit("/", 1)[-1],
                func=site.funcname,
                file=site.filename,
                line=site.lineno,
                block_id=record.dag_id,
            )
        if isinstance(record, ExtRecord):
            if record.kind == ExtKind.MODULE_EVENT:
                site = by_dag.get(record.payload[0])
                if site is None:
                    return None
                if record.inline == PY_CALL:
                    step = LineStep(
                        module=site.filename.rsplit("/", 1)[-1],
                        func=site.funcname,
                        file=site.filename,
                        line=site.lineno,
                        block_id=record.payload[0],
                        is_func_entry=True,
                    )
                    return step
                return TraceEvent(kind="py_return",
                                  detail={"func": site.funcname})
            if record.kind == ExtKind.EXCEPTION:
                site = by_dag.get(record.payload[1])
                detail = {
                    "code": record.payload[0],
                    "exception": self._exc_names.get(record.inline, "?"),
                }
                if site is not None:
                    detail["file"] = site.filename
                    detail["line"] = site.lineno
                    detail["func"] = site.funcname
                return TraceEvent(kind="exception", detail=detail)
            if record.kind == ExtKind.THREAD_START:
                return TraceEvent(kind="thread_start",
                                  detail={"tid": record.payload[0]})
        return None

    # ------------------------------------------------------------------
    def render(self, traces: list[ThreadTrace] | None = None) -> str:
        """A flat text rendering of the recorded histories."""
        if traces is None:
            traces = self.reconstruct()
        out = []
        for trace in traces:
            out.append(f"--- python thread {trace.tid} "
                       f"{'(truncated)' if trace.truncated else ''}---")
            for step in trace.steps:
                if isinstance(step, LineStep):
                    marker = " [call]" if step.is_func_entry else ""
                    out.append(
                        f"  {'  ' * step.depth}{step.module}:{step.line} "
                        f"{step.func}{marker}"
                    )
                elif step.kind == "exception":
                    d = step.detail
                    out.append(
                        f"  {'  ' * step.depth}*** {d.get('exception')} at "
                        f"{d.get('file', '?')}:{d.get('line', '?')}"
                    )
                elif step.kind == "py_return":
                    out.append(f"  {'  ' * step.depth}<- return from "
                               f"{step.detail['func']}")
        return "\n".join(out)
