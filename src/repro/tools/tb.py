"""``tbtrace`` — the TraceBack command line.

Usage::

    python -m repro.tools.tb run app.c              # trace a MiniC program
    python -m repro.tools.tb run app.c --mode il --tree
    python -m repro.tools.tb run app.c --save-snap crash.json \\
                                       --save-mapfile app.map.json
    python -m repro.tools.tb view crash.json app.map.json
    python -m repro.tools.tb tile app.c             # show CFGs + DAG tiling
    python -m repro.tools.tb disasm app.c --instrument

The ``run``/``view`` split mirrors production use: instrumented programs
run and snap in one place; mapfiles + snap files travel to wherever the
engineer reconstructs them.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import build_all_cfgs
from repro.api import TraceSession
from repro.instrument import (
    InstrumentConfig,
    Mapfile,
    instrument_module,
    tile,
)
from repro.isa import disassemble
from repro.lang.minic import compile_source, compile_to_asm
from repro.reconstruct import (
    Reconstructor,
    RecoveryError,
    render_degradation,
    render_distributed,
    render_flat,
    render_tree,
    select_view,
)
from repro.runtime import (
    ArchiveError,
    RuntimeConfig,
    SnapFile,
    SnapPolicy,
    salvage_decompress,
)
from repro.runtime.archive import load_compressed


def _read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _fail(message: str) -> int:
    """One-line diagnosis on stderr, nonzero exit — never a traceback."""
    print(f"tbtrace: error: {message}", file=sys.stderr)
    return 1


def _load_snap(path: str, salvage: bool = False) -> tuple[SnapFile, list[str]]:
    """Read a snap artifact — JSON or a TBSZ* compressed container.

    Returns ``(snap, notes)``; raises ``ArchiveError`` / ``ValueError``
    / ``OSError`` with a human message on damage in strict mode.
    """
    with open(path, "rb") as fh:
        head = fh.read(8)
    if head.startswith(b"TBSZ"):
        if not salvage:
            return load_compressed(path), []
        with open(path, "rb") as fh:
            snap, notes = salvage_decompress(fh.read())
        if snap is None:
            raise ArchiveError(
                "; ".join(notes) or "container unrecoverable"
            )
        return snap, notes
    try:
        return SnapFile.load(path), []
    except (KeyError, TypeError) as exc:
        raise ValueError(f"snap file {path} is malformed: {exc!r}") from exc


def cmd_run(args: argparse.Namespace) -> int:
    source = _read(args.source)
    policy = (
        SnapPolicy.load(args.policy) if args.policy else SnapPolicy()
    )
    session = TraceSession(
        process_name=args.name,
        runtime_config=RuntimeConfig(policy=policy),
        instrument_config=InstrumentConfig(mode=args.mode),
    )
    session.add_minic(source, name=args.name, file_name=args.source)
    run = session.run(max_cycles=args.max_cycles)

    print(f"status: {run.status}; process {run.process.exit_state}")
    if run.output:
        print("output:", " ".join(run.output))
    if run.snap is not None:
        print(f"snap: {run.snap.reason} {run.snap.detail}")
        print()
        trace = run.trace()
        if args.tree and trace.threads:
            print(render_tree(trace.threads[-1]))
        else:
            print(select_view(trace))
        if args.save_snap:
            run.snap.save(args.save_snap)
            print(f"\nsnap written to {args.save_snap}")
    else:
        print("no snap was taken (clean run; use --policy to snap more)")
    if args.save_mapfile:
        run.mapfiles[0].save(args.save_mapfile)
        print(f"mapfile written to {args.save_mapfile}")
    return 0 if run.process.exit_state == "exited" else 1


def cmd_view(args: argparse.Namespace) -> int:
    try:
        snap, load_notes = _load_snap(args.snap, salvage=args.salvage)
    except (RecoveryError, ArchiveError, ValueError, OSError) as exc:
        return _fail(f"cannot load snap {args.snap}: {exc}")
    try:
        mapfiles = [Mapfile.load(path) for path in args.mapfiles]
    except (ValueError, KeyError, OSError) as exc:
        return _fail(f"cannot load mapfiles: {exc}")
    try:
        trace = Reconstructor(mapfiles).reconstruct(
            snap, strict=not args.salvage
        )
    except (RecoveryError, ValueError) as exc:
        return _fail(
            f"reconstruction failed: {exc} (re-run with --salvage to "
            "recover what survives)"
        )
    print(f"snap: {snap.reason} in {snap.process_name} on {snap.machine_name}")
    for note in load_notes:
        print(f"note: {note}")
    for note in trace.notes:
        print(f"note: {note}")
    if args.salvage and trace.salvage:
        from repro.reconstruct.model import DegradationSummary

        summary = DegradationSummary(
            losses=[r.summary() for r in trace.salvage if r.damaged]
        )
        print(render_degradation(summary))
    if args.flat:
        for thread in trace.threads:
            print()
            print(render_flat(thread))
    else:
        print()
        print(select_view(trace))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """``tbtrace info <archive>``: structural report, no reconstruction."""
    from repro.runtime.archive import inspect_container

    try:
        with open(args.archive, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        return _fail(f"cannot read {args.archive}: {exc}")
    info = inspect_container(data)
    if info["version"] is None:
        return _fail(
            f"{args.archive}: {'; '.join(info['problems']) or 'not a container'}"
        )
    print(f"archive: {args.archive}")
    print(f"  container: TBSZ{info['version']}, {info['size']} bytes")
    if info["length_ok"] is not None:
        print(f"  length check: {'ok' if info['length_ok'] else 'FAILED'}")
    crc = info["crc_ok"]
    crc_text = "ok" if crc else "no checksums (v1)" if crc is None else "FAILED"
    print(f"  blobs: {len(info['blobs'])}, CRC {crc_text}")
    for blob in info["blobs"]:
        print(
            f"    buffer {blob['index']}: {blob['present']}/{blob['bytes']} "
            f"bytes, crc {blob['crc']}"
        )
    meta = info["meta"]
    if meta is not None:
        print(
            f"  snap: {meta['reason']} in {meta['process_name']} "
            f"on {meta['machine_name']} at clock {meta['clock']}"
        )
        print(
            f"  contents: {meta['modules']} module(s), "
            f"{meta['threads']} thread(s), {meta['buffers']} buffer(s)"
        )
        if meta.get("ndlog_format"):
            print(
                f"  replayable: {meta['replayable']} "
                f"({meta['ndlog_format']})"
            )
        else:
            print(f"  replayable: {meta['replayable']}")
    for problem in info["problems"]:
        print(f"  problem: {problem}")
    return 0 if not info["problems"] else 1


def _open_vault(args: argparse.Namespace):
    from repro.fleet import SnapVault, VaultQuery

    vault = SnapVault(_vault_roots(args)[0])
    return vault, VaultQuery(vault)


def _vault_roots(args: argparse.Namespace) -> list[str]:
    """``--vault`` values as a list (the flag is repeatable)."""
    roots = args.vault
    return roots if isinstance(roots, list) else [roots]


def _check_wire_flags(args: argparse.Namespace) -> str | None:
    """Validate --remote/--federate/--vault combinations."""
    roots = _vault_roots(args)
    if args.remote and args.federate:
        return "--remote and --federate are mutually exclusive"
    if len(roots) > 1 and not args.federate:
        return "multiple --vault roots require --federate"
    if args.timeout is not None and not (args.remote or args.federate):
        return "--timeout only applies with --remote or --federate"
    return None


def _remote_clients(args: argparse.Namespace) -> dict:
    """Serve each ``--vault`` root in-process and return name -> client.

    The wire is the simulated network: every query goes through the
    versioned protocol (CRC frames, pagination, deadlines) exactly as a
    cross-region query would, just without a socket under it.
    """
    import os

    from repro.distributed.network import Network
    from repro.fleet import SnapVault
    from repro.fleet.remote import RemoteVaultClient, VaultService

    network = Network()
    clients: dict = {}
    for root in _vault_roots(args):
        base = os.path.basename(os.path.normpath(root)) or "vault"
        name, n = base, 1
        while name in clients:
            n += 1
            name = f"{base}-{n}"
        network.register_vault_service(VaultService(SnapVault(root), name=name))
        deadline = args.timeout if args.remote and args.timeout else 20_000
        clients[name] = RemoteVaultClient(network, service=name, deadline=deadline)
    return clients


def _federated(args: argparse.Namespace):
    from repro.fleet import FederatedQuery

    return FederatedQuery(
        _remote_clients(args), timeout=args.timeout or 200_000
    )


def _print_coverage(report, as_json: bool) -> None:
    """Per-vault coverage, as a trailing JSON line or indented text."""
    if as_json:
        print(json.dumps({"federation": report.to_dict()}, sort_keys=True))
    else:
        for line in report.describe():
            print(line)


def cmd_collect(args: argparse.Namespace) -> int:
    """``tbtrace collect``: run the three-machine incident demo into a
    vault — crash, group fan-out, uploads (optionally chaos-dropped),
    and a mid-run machine kill that the vault makes survivable."""
    import random as random_mod

    from repro.chaos.scenarios import build_vault_run

    rng = random_mod.Random(args.seed)
    upload_chaos = None
    if args.drop_rate > 0:

        def upload_chaos(machine, snap, attempt):
            return "drop" if rng.random() < args.drop_rate else None

    vault, collector, session = build_vault_run(
        vault_root=args.vault,
        upload_chaos=upload_chaos,
        collector_options={
            "batch_size": args.batch_size,
            "queue_limit": args.queue_limit,
            "seed": args.seed,
        },
    )
    uploaded = len(vault)
    if args.kill_machine:
        killed = False
        for machine in session.network.machines:
            if machine.name == args.kill_machine:
                for process in machine.processes:
                    process.kill()
                killed = True
        if not killed:
            return _fail(f"no machine named {args.kill_machine!r} in the run")
        print(
            f"killed {args.kill_machine} mid-run "
            f"({uploaded} snap(s) already uploaded)"
        )
    session.network.run()
    collector.drain()
    print(f"vault {vault.root}: {len(vault)} snap(s) stored")
    for entry in vault.select():
        print(
            f"  {entry.digest[:12]}  seq {entry.seq}  {entry.machine}/"
            f"{entry.process}  {entry.reason}  clock {entry.clock}"
        )
    if collector.dead:
        print(f"  {len(collector.dead)} upload(s) dead-lettered")
    print()
    print(vault.metrics.render())
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``tbtrace query``: filter the vault; --show reconstructs one."""
    from repro.runtime import ArchiveError

    problem = _check_wire_flags(args)
    if problem:
        return _fail(problem)
    filters = dict(
        machine=args.machine,
        process=args.process,
        reason=args.reason,
        since=args.since,
        until=args.until,
        group=args.group,
    )
    if args.remote or args.federate:
        from repro.fleet.remote import RemoteQueryError

        if args.show:
            return _fail("--show needs a local vault (wire queries list only)")
        try:
            clients = _remote_clients(args)
        except (OSError, ValueError) as exc:
            return _fail(f"cannot open vault: {exc}")
        if args.federate:
            entries, report = _federated(args).select(**filters)
        else:
            try:
                entries = next(iter(clients.values())).select(**filters)
            except RemoteQueryError as exc:
                return _fail(str(exc))
            report = None
        if args.json:
            for entry in entries:
                print(json.dumps(entry.to_dict(), sort_keys=True))
        else:
            print(f"{len(entries)} snap(s) match")
            for entry in entries:
                print(
                    f"  {entry.digest[:12]}  {entry.machine}/{entry.process}"
                    f"  {entry.reason}  clock {entry.clock}  {entry.size}B"
                )
        if report is not None:
            _print_coverage(report, args.json)
        return 0
    try:
        vault, query = _open_vault(args)
    except (OSError, ValueError) as exc:
        return _fail(f"cannot open vault {_vault_roots(args)[0]}: {exc}")
    if args.show:
        matches = [
            e for e in vault.index.values() if e.digest.startswith(args.show)
        ]
        if not matches:
            return _fail(f"no stored snap matches digest {args.show!r}")
        if len(matches) > 1:
            return _fail(f"digest prefix {args.show!r} is ambiguous")
        entry = matches[0]
        try:
            trace, notes = query.reconstruct_entry(
                entry, salvage=args.salvage
            )
        except (RecoveryError, ArchiveError, ValueError, OSError) as exc:
            return _fail(
                f"reconstruction failed: {exc} (re-run with --salvage "
                "to recover what survives)"
            )
        print(
            f"snap: {entry.reason} in {entry.process} on {entry.machine} "
            f"(digest {entry.digest})"
        )
        for note in notes + trace.notes:
            print(f"note: {note}")
        print()
        print(select_view(trace))
        return 0
    entries = query.select(
        machine=args.machine,
        process=args.process,
        reason=args.reason,
        since=args.since,
        until=args.until,
        group=args.group,
    )
    if args.json:
        for entry in entries:
            print(json.dumps(entry.to_dict(), sort_keys=True))
        return 0
    print(f"{len(entries)} snap(s) match")
    for entry in entries:
        tags = []
        if entry.group:
            tags.append(f"group={entry.group} initiator={entry.initiator}")
        if entry.sync_ids:
            tags.append(f"{len(entry.sync_ids)} sync id(s)")
        print(
            f"  {entry.digest[:12]}  seq {entry.seq}  {entry.machine}/"
            f"{entry.process}  {entry.reason}  clock {entry.clock}  "
            f"{entry.size}B  {' '.join(tags)}"
        )
    return 0


def cmd_incidents(args: argparse.Namespace) -> int:
    """``tbtrace incidents``: group the vault's snaps and reconstruct."""
    problem = _check_wire_flags(args)
    if problem:
        return _fail(problem)
    if args.remote or args.federate:
        from repro.fleet.remote import RemoteQueryError

        if args.window is not None:
            return _fail("--window needs a local vault")
        try:
            clients = _remote_clients(args)
        except (OSError, ValueError) as exc:
            return _fail(f"cannot open vault: {exc}")
        report = None
        if args.federate:
            incidents, report = _federated(args).incidents()
        else:
            try:
                incidents = next(iter(clients.values())).incidents()
            except RemoteQueryError as exc:
                return _fail(str(exc))
        if args.json:
            for incident in incidents:
                print(json.dumps(incident.to_dict(), sort_keys=True))
            if report is not None:
                _print_coverage(report, as_json=True)
            return 0
        where = (
            f"{len(clients)} federated vault(s)"
            if args.federate
            else f"remote vault {next(iter(clients))!r}"
        )
        print(f"{len(incidents)} incident(s) in {where}")
        for incident in incidents:
            print(incident.describe())
            for entry in incident.entries:
                print(
                    f"    {entry.digest[:12]}  {entry.machine}/"
                    f"{entry.process}  {entry.reason}"
                )
            if args.list or args.federate:
                # Federated entries span vaults; evidence fetch is a
                # per-vault operation — listing only.
                continue
            client = next(iter(clients.values()))
            try:
                trace = client.reconstruct_incident(
                    incident, salvage=not args.strict
                )
            except (RecoveryError, RemoteQueryError, ValueError) as exc:
                print(f"    reconstruction failed: {exc}")
                continue
            if trace.degradation is not None and trace.degradation.degraded:
                print(render_degradation(trace.degradation))
            print(render_distributed(trace))
        if report is not None:
            _print_coverage(report, as_json=False)
        return 0
    try:
        vault, query = _open_vault(args)
    except (OSError, ValueError) as exc:
        return _fail(f"cannot open vault {_vault_roots(args)[0]}: {exc}")
    if args.window is None:
        # No explicit window: serve straight from the persisted
        # incident index (O(result), built at ingest).
        incidents = query.incidents()
    else:
        incidents = query.incidents(window=args.window)
    if args.json:
        for incident in incidents:
            print(json.dumps(incident.to_dict(), sort_keys=True))
        return 0
    print(f"{len(incidents)} incident(s) in {vault.root}")
    for incident in incidents:
        print(incident.describe())
        for entry in incident.entries:
            print(
                f"    {entry.digest[:12]}  {entry.machine}/{entry.process}  "
                f"{entry.reason}"
            )
        if args.list:
            continue
        try:
            trace = query.reconstruct_incident(
                incident, salvage=not args.strict
            )
        except (RecoveryError, ValueError) as exc:
            print(f"    reconstruction failed: {exc}")
            continue
        if trace.degradation is not None and trace.degradation.degraded:
            print(render_degradation(trace.degradation))
        print(render_distributed(trace))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """``tbtrace top``: ranked crash buckets — the fleet's top crashers."""
    problem = _check_wire_flags(args)
    if problem:
        return _fail(problem)
    if args.remote or args.federate:
        from repro.fleet.remote import RemoteQueryError

        try:
            clients = _remote_clients(args)
        except (OSError, ValueError) as exc:
            return _fail(f"cannot open vault: {exc}")
        if args.federate:
            buckets, report = _federated(args).top(limit=args.limit)
            if args.json:
                for bucket in buckets:
                    print(json.dumps(bucket, sort_keys=True))
                _print_coverage(report, as_json=True)
                return 0
            print(
                f"{len(buckets)} crash bucket(s) across "
                f"{len(clients)} federated vault(s)"
            )
            for rank, bucket in enumerate(buckets, start=1):
                print(
                    f"  #{rank} [{bucket['key']}] {bucket['count']} snap(s) "
                    f"in {bucket['incidents']} incident(s) on "
                    f"{len(bucket['machines'])} machine(s): {bucket['sig']}"
                )
            _print_coverage(report, as_json=False)
            return 0
        try:
            buckets = next(iter(clients.values())).top(limit=args.limit)
        except RemoteQueryError as exc:
            return _fail(str(exc))
        if args.json:
            for bucket in buckets:
                print(json.dumps(bucket.to_dict(), sort_keys=True))
            return 0
        print(
            f"{len(buckets)} crash bucket(s) in remote vault "
            f"{next(iter(clients))!r}"
        )
        for rank, bucket in enumerate(buckets, start=1):
            print(f"  #{rank} {bucket.describe()}")
        return 0
    try:
        vault, query = _open_vault(args)
    except (OSError, ValueError) as exc:
        return _fail(f"cannot open vault {_vault_roots(args)[0]}: {exc}")
    buckets = query.top(limit=args.limit)
    if args.json:
        for bucket in buckets:
            print(json.dumps(bucket.to_dict(), sort_keys=True))
        return 0
    fault_snaps = sum(1 for e in vault.index.values() if e.sig is not None)
    print(
        f"{len(buckets)} crash bucket(s) in {vault.root} "
        f"({fault_snaps}/{len(vault)} snap(s) bucketed)"
    )
    for rank, bucket in enumerate(buckets, start=1):
        print(f"  #{rank} {bucket.describe()}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``tbtrace serve``: host a vault behind the query protocol.

    The network is simulated, so "serving" registers the vault's
    :class:`~repro.fleet.remote.VaultService` and proves the wire works
    end to end: a client performs the full hello / select / paginate
    exchange through CRC-checked frames and the summary is printed.
    """
    from repro.distributed.network import Network
    from repro.fleet import SnapVault
    from repro.fleet.remote import (
        PROTOCOL,
        RemoteQueryError,
        RemoteVaultClient,
        VaultService,
    )

    try:
        vault = SnapVault(args.vault)
    except (OSError, ValueError) as exc:
        return _fail(f"cannot open vault {args.vault}: {exc}")
    network = Network()
    server = VaultService(vault, name=args.name, page_limit=args.page_limit)
    network.register_vault_service(server)
    client = RemoteVaultClient(network, service=args.name)
    try:
        hello = client.hello()
        entries = client.select()
    except RemoteQueryError as exc:
        return _fail(f"protocol self-check failed: {exc}")
    print(f"serving vault {vault.root} as service {args.name!r} ({PROTOCOL})")
    print(
        f"  {hello.get('snaps', 0)} snap(s) from machines: "
        f"{', '.join(hello.get('machines', [])) or 'none'}"
    )
    print(f"  page limit {hello.get('page_limit')}")
    pages = -(-len(entries) // server.page_limit) if entries else 0
    print(
        f"  self-check: {server.requests_served} request(s) served, "
        f"{len(entries)} entr(ies) over {pages} page(s), frames CRC-clean"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``tbtrace report``: the full triage report (text/JSON/HTML)."""
    from repro.fleet.triage import (
        build_report,
        render_report_html,
        render_report_text,
    )

    try:
        _vault, query = _open_vault(args)
    except (OSError, ValueError) as exc:
        return _fail(f"cannot open vault {args.vault}: {exc}")
    report = build_report(
        query,
        limit=args.limit,
        exemplar_lines=args.exemplar_lines,
        verify=args.verify,
    )
    if args.html:
        html_text = render_report_html(report)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(html_text)
            print(f"report written to {args.out}")
        else:
            print(html_text, end="")
        return 0
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
    else:
        text = "\n".join(render_report_text(report))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _replay_resolve(args: argparse.Namespace):
    """Resolve a digest prefix to ``(digest, snap)`` — local or remote."""
    if args.remote:
        from repro.fleet.remote import RemoteQueryError

        try:
            clients = _remote_clients(args)
        except (OSError, ValueError) as exc:
            raise ValueError(f"cannot open vault: {exc}") from exc
        client = next(iter(clients.values()))
        try:
            entries = client.select()
        except RemoteQueryError as exc:
            raise ValueError(str(exc)) from exc
        matches = [e for e in entries if e.digest.startswith(args.digest)]
        loader = client.load
    else:
        from repro.fleet import SnapVault

        vault = SnapVault(_vault_roots(args)[0])
        matches = [
            e for e in vault.index.values() if e.digest.startswith(args.digest)
        ]
        loader = vault.load
    if not matches:
        raise ValueError(f"no stored snap matches digest {args.digest!r}")
    if len(matches) > 1:
        raise ValueError(f"digest prefix {args.digest!r} is ambiguous")
    digest = matches[0].digest
    snap, _notes = loader(digest, salvage=True)
    if snap is None:
        raise ValueError(f"snap {digest[:12]} unrecoverable")
    return digest, snap


def _replay_frame_line(frame: dict) -> str:
    where = f"pc {frame['pc']:#x}"
    if "func" in frame:
        where += f"  {frame.get('module', '?')}.{frame['func']}"
    if "file" in frame:
        where += f" ({frame['file']}:{frame['line']})"
    return where


def _replay_print_stop(engine, stop: dict) -> None:
    print(
        f"stopped: {stop['reason']}  tid {stop['tid']}  cycle "
        f"{stop['cycle']}  event {stop['events_applied']}/"
        f"{stop['events_total']}"
    )
    if stop["pc"] is not None:
        print(f"  at {_replay_frame_line(engine.resolve_pc(stop['pc']))}")
    if stop["fault"] is not None:
        fault = stop["fault"]
        print(
            f"  fault: code {fault['code']} at pc {fault['pc']:#x}: "
            f"{fault['detail']}"
        )


def _replay_interactive(engine) -> int:
    """The stdin debugger loop behind ``tbtrace replay -i``."""
    print(
        "commands: step [N] | continue | run | break PC | unbreak PC | "
        "regs [TID] | bt [TID] | mem ADDR [N] | threads | info | quit"
    )
    while True:
        try:
            line = input("(tb-replay) ").strip()
        except EOFError:
            return 0
        if not line:
            continue
        words = line.split()
        op, rest = words[0], words[1:]
        try:
            if op in ("q", "quit", "exit"):
                return 0
            elif op in ("s", "step"):
                stop = engine.step(int(rest[0], 0) if rest else 1)
                _replay_print_stop(engine, stop)
            elif op in ("c", "continue"):
                _replay_print_stop(engine, engine.cont())
            elif op == "run":
                _replay_print_stop(engine, engine.run_to_fault())
            elif op in ("b", "break"):
                engine.add_breakpoint(int(rest[0], 0))
                print(f"breakpoint at pc {int(rest[0], 0):#x}")
            elif op == "unbreak":
                engine.remove_breakpoint(int(rest[0], 0))
            elif op == "regs":
                regs = engine.registers(int(rest[0]) if rest else None)
                print(
                    f"tid {regs['tid']} ({regs['name']}) {regs['state']}  "
                    f"pc {regs['pc']:#x}  {regs['instructions']} instr"
                )
                for base in range(0, len(regs["regs"]), 8):
                    row = regs["regs"][base : base + 8]
                    print(
                        f"  r{base:<2}: "
                        + " ".join(f"{w:>10}" for w in row)
                    )
            elif op == "bt":
                for frame in engine.backtrace(int(rest[0]) if rest else None):
                    print(f"  {_replay_frame_line(frame)}")
            elif op == "mem":
                addr = int(rest[0], 0)
                count = int(rest[1], 0) if len(rest) > 1 else 8
                words_out = engine.read_memory(addr, count)
                print(
                    f"  {addr:#x}: "
                    + " ".join(
                        "????????" if w is None else f"{w:>10}"
                        for w in words_out
                    )
                )
            elif op == "threads":
                for t in engine.threads():
                    blocked = (
                        f" ({t['block_reason']})" if t["block_reason"] else ""
                    )
                    print(
                        f"  tid {t['tid']:<3} {t['state']:<8} pc "
                        f"{t['pc']:#x}  {t['name']}{blocked}"
                    )
            elif op == "info":
                print(
                    f"  {'done' if engine.finished else 'replaying'}; "
                    f"breakpoints: "
                    + (
                        ", ".join(
                            f"{pc:#x}" for pc in sorted(engine.breakpoints)
                        )
                        or "none"
                    )
                )
            else:
                print(f"unknown command {op!r}")
        except (ValueError, IndexError) as exc:
            print(f"error: {exc}")


def cmd_replay(args: argparse.Namespace) -> int:
    """``tbtrace replay <digest>``: time-travel debug a stored snap."""
    from repro.replay import ReplayDivergence, ReplayUnavailable
    from repro.replay.engine import ReplayEngine

    try:
        digest, snap = _replay_resolve(args)
    except (OSError, ValueError, ArchiveError) as exc:
        return _fail(str(exc))
    print(
        f"replaying {digest[:12]}: {snap.reason} in {snap.process_name} "
        f"on {snap.machine_name} (replayable: {snap.replayable})"
    )
    try:
        engine = ReplayEngine(snap, breakpoints=args.breakpoints)
    except ReplayUnavailable as exc:
        return _fail(f"cannot replay {digest[:12]}: {exc}")
    try:
        if args.interactive:
            return _replay_interactive(engine)
        if args.step is not None:
            stop = engine.step(args.step)
        elif args.breakpoints:
            stop = engine.cont()
        else:
            stop = engine.run_to_fault()
    except ReplayDivergence as exc:
        return _fail(f"replay diverged from the recording: {exc}")
    except ReplayUnavailable as exc:
        return _fail(f"cannot replay {digest[:12]}: {exc}")
    _replay_print_stop(engine, stop)
    print("backtrace:")
    for frame in engine.backtrace():
        print(f"  {_replay_frame_line(frame)}")
    print("threads:")
    for t in engine.threads():
        blocked = f" ({t['block_reason']})" if t["block_reason"] else ""
        print(
            f"  tid {t['tid']:<3} {t['state']:<8} pc {t['pc']:#x}  "
            f"{t['name']}{blocked}"
        )
    return 0


def cmd_gc(args: argparse.Namespace) -> int:
    """``tbtrace gc``: apply a retention policy to a vault.

    ``--dry-run`` prints the exact plan a real pass would apply —
    header line ``plan: delete N snap(s), reclaim B bytes, keep M,
    P pin(s) honored`` followed by one indented line per victim
    (``digest  seq  machine/process  reason  clock  size``) — and
    deletes nothing.
    """
    from repro.fleet.retention import RetentionError, RetentionPolicy

    try:
        vault, _query = _open_vault(args)
    except (OSError, ValueError) as exc:
        return _fail(f"cannot open vault {args.vault}: {exc}")
    try:
        policy = RetentionPolicy(
            max_age=args.max_age,
            max_entries_per_shard=args.max_per_shard,
            max_bytes_per_shard=args.max_bytes_per_shard,
            pin_open_incidents=not args.no_pin_incidents,
            pin_bucket_exemplars=not args.no_pin_buckets,
        )
        plan = vault.plan_compaction(policy, now=args.now)
    except RetentionError as exc:
        return _fail(str(exc))
    if args.json:
        report = plan.to_dict()
        report["dry_run"] = bool(args.dry_run)
        print(json.dumps(report, sort_keys=True))
        if args.dry_run:
            return 0
    else:
        for line in plan.describe():
            print(line)
        if args.dry_run:
            print("dry run: nothing deleted")
            return 0
    vault.compact(plan=plan)
    if not args.json:
        print(
            f"gc: deleted {len(plan.victims)} snap(s), reclaimed "
            f"{plan.reclaimed_bytes} bytes, {len(vault)} snap(s) remain"
        )
        print()
        print(vault.metrics.render())
    return 0


def cmd_tile(args: argparse.Namespace) -> int:
    module = compile_source(_read(args.source), "app", file_name=args.source,
                            bounds_checks=(args.mode == "il"))
    for name, cfg in build_all_cfgs(module).items():
        plan = tile(cfg)
        print(f"function {name}: {len(cfg.blocks)} blocks, "
              f"{len(plan.dags)} DAGs")
        for dag in plan.dags:
            members = ", ".join(
                f"{block}"
                + (f"[bit {bit}]" if bit is not None else
                   "[hdr]" if block == dag.entry else "[implied]")
                for block, bit in dag.members.items()
            )
            print(f"  DAG {dag.index}: {members}")
    return 0


def cmd_dagbase(args: argparse.Namespace) -> int:
    import os

    from repro.instrument import DagBaseFile

    sizes: dict[str, int] = {}
    for path in args.sources:
        name = os.path.splitext(os.path.basename(path))[0]
        result = instrument_module(
            compile_source(_read(path), name, file_name=path)
        )
        sizes[name] = result.module.dag_count
    dagbase = DagBaseFile()
    dagbase.allocate(sizes)
    text = dagbase.render()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    module = compile_source(_read(args.source), "app", file_name=args.source)
    if args.asm:
        print(compile_to_asm(_read(args.source), "app", file_name=args.source))
        return 0
    if args.instrument:
        result = instrument_module(module, InstrumentConfig(mode=args.mode))
        module = result.module
        print(f"; instrumented: {result.stats}")
    print("\n".join(disassemble(module)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tbtrace", description="TraceBack first-fault diagnosis tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile, instrument, run, snap")
    run.add_argument("source", help="MiniC source file")
    run.add_argument("--name", default="app")
    run.add_argument("--mode", choices=["native", "il"], default="native")
    run.add_argument("--max-cycles", type=int, default=50_000_000)
    run.add_argument("--policy", help="snap policy file (§3.6 format)")
    run.add_argument("--tree", action="store_true", help="call-tree view")
    run.add_argument("--save-snap", help="write the snap file here")
    run.add_argument("--save-mapfile", help="write the mapfile here")
    run.set_defaults(fn=cmd_run)

    view = sub.add_parser("view", help="reconstruct a snap from files")
    view.add_argument("snap", help="snap file (JSON or TBSZ container)")
    view.add_argument("mapfiles", nargs="+", help="mapfile JSON files")
    view.add_argument("--flat", action="store_true")
    view.add_argument(
        "--salvage",
        action="store_true",
        help="recover what survives from a damaged snap instead of "
        "failing on the first integrity error",
    )
    view.set_defaults(fn=cmd_view)

    info = sub.add_parser(
        "info", help="archive version, blobs, CRC status, snap metadata"
    )
    info.add_argument("archive", help="TBSZ1/TBSZ2 compressed snap container")
    info.set_defaults(fn=cmd_info)

    collect = sub.add_parser(
        "collect", help="run the fleet incident demo into a snap vault"
    )
    collect.add_argument("--vault", required=True, help="vault root directory")
    collect.add_argument("--seed", type=int, default=0)
    collect.add_argument(
        "--drop-rate", type=float, default=0.0,
        help="probability each upload is lost in transit (retried)",
    )
    collect.add_argument(
        "--kill-machine", default="machine-b",
        help="machine to kill -9 mid-run ('' to kill nobody)",
    )
    collect.add_argument("--batch-size", type=int, default=2)
    collect.add_argument("--queue-limit", type=int, default=8)
    collect.set_defaults(fn=cmd_collect)

    def add_wire_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--remote", action="store_true",
            help="query through the vault wire protocol instead of "
            "opening the store directly",
        )
        cmd.add_argument(
            "--federate", action="store_true",
            help="scatter-gather across every --vault root and merge; "
            "lost vaults degrade the answer instead of failing it",
        )
        cmd.add_argument(
            "--timeout", type=int,
            help="cycles: per-request deadline (--remote) or per-vault "
            "budget (--federate)",
        )

    query = sub.add_parser("query", help="filter stored snaps in a vault")
    query.add_argument(
        "--vault", required=True, action="append",
        help="vault root directory (repeat with --federate)",
    )
    add_wire_flags(query)
    query.add_argument("--machine")
    query.add_argument("--process")
    query.add_argument("--reason")
    query.add_argument("--since", type=int, help="min snap clock (inclusive)")
    query.add_argument("--until", type=int, help="max snap clock (inclusive)")
    query.add_argument("--group", help="group-snap fan-out name")
    query.add_argument(
        "--show", metavar="DIGEST",
        help="reconstruct one stored snap (digest prefix ok)",
    )
    query.add_argument("--salvage", action="store_true")
    query.add_argument(
        "--json", action="store_true",
        help="one JSON object per matching snap (JSON lines)",
    )
    query.set_defaults(fn=cmd_query)

    incidents = sub.add_parser(
        "incidents", help="group a vault's snaps into incidents"
    )
    incidents.add_argument(
        "--vault", required=True, action="append",
        help="vault root directory (repeat with --federate)",
    )
    add_wire_flags(incidents)
    incidents.add_argument(
        "--window", type=int,
        help="only link snaps within this many ingest sequence numbers",
    )
    incidents.add_argument(
        "--list", action="store_true", help="list only, skip reconstruction"
    )
    incidents.add_argument(
        "--strict", action="store_true",
        help="strict reconstruction (default is salvage + banner)",
    )
    incidents.add_argument(
        "--json", action="store_true",
        help="one JSON object per incident (JSON lines), no reconstruction",
    )
    incidents.set_defaults(fn=cmd_incidents)

    top = sub.add_parser(
        "top", help="rank a vault's crash buckets (top crashers)"
    )
    top.add_argument(
        "--vault", required=True, action="append",
        help="vault root directory (repeat with --federate)",
    )
    add_wire_flags(top)
    top.add_argument(
        "--limit", type=int, help="show at most this many buckets"
    )
    top.add_argument(
        "--json", action="store_true",
        help="one JSON object per bucket (JSON lines)",
    )
    top.set_defaults(fn=cmd_top)

    serve = sub.add_parser(
        "serve", help="host a vault behind the query protocol (self-check)"
    )
    serve.add_argument("--vault", required=True, help="vault root directory")
    serve.add_argument(
        "--name", default="vault", help="service id clients connect to"
    )
    serve.add_argument(
        "--page-limit", type=int, default=64,
        help="server-side bound on list-response pages",
    )
    serve.set_defaults(fn=cmd_serve)

    replay = sub.add_parser(
        "replay",
        help="deterministically re-execute a stored snap to its fault",
    )
    replay.add_argument(
        "digest", help="content digest prefix of the stored snap"
    )
    replay.add_argument("--vault", required=True, help="vault root directory")
    replay.add_argument(
        "--remote", action="store_true",
        help="fetch the snap blob through the vault wire protocol",
    )
    replay.add_argument(
        "--timeout", type=int, help="cycles: per-request deadline (--remote)"
    )
    replay.add_argument(
        "--break", dest="breakpoints", action="append", default=[],
        type=lambda s: int(s, 0), metavar="PC",
        help="stop when the replayed pc reaches PC (repeatable)",
    )
    replay.add_argument(
        "--step", type=int, metavar="N",
        help="execute only the first N replayed instructions",
    )
    replay.add_argument(
        "-i", "--interactive", action="store_true",
        help="drive the replay from a debugger prompt on stdin",
    )
    replay.set_defaults(fn=cmd_replay)

    report = sub.add_parser(
        "report", help="full triage report with exemplar traces"
    )
    report.add_argument("--vault", required=True, help="vault root directory")
    report.add_argument(
        "--limit", type=int, help="report at most this many buckets"
    )
    report.add_argument(
        "--exemplar-lines", type=int, default=30,
        help="max rendered trace rows per exemplar (tail-clipped)",
    )
    report.add_argument(
        "--verify", action="store_true",
        help="replay each bucket's exemplar and stamp replay_verified",
    )
    report.add_argument(
        "--json", action="store_true", help="canonical JSON document"
    )
    report.add_argument(
        "--html", action="store_true", help="self-contained HTML page"
    )
    report.add_argument("--out", help="write the report here instead of stdout")
    report.set_defaults(fn=cmd_report)

    gc = sub.add_parser(
        "gc", help="apply a retention policy to a vault (compaction)"
    )
    gc.add_argument("--vault", required=True, help="vault root directory")
    gc.add_argument(
        "--max-age", type=int,
        help="expire snaps whose clock is older than NOW - MAX_AGE",
    )
    gc.add_argument(
        "--max-per-shard", type=int,
        help="keep at most this many snaps per shard (newest first)",
    )
    gc.add_argument(
        "--max-bytes-per-shard", type=int,
        help="keep at most this many compressed bytes per shard",
    )
    gc.add_argument(
        "--now", type=int,
        help="reference clock for --max-age (default: newest snap clock)",
    )
    gc.add_argument(
        "--no-pin-incidents", action="store_true",
        help="allow collecting part of an incident (default keeps whole "
        "incidents alive while any member is retained)",
    )
    gc.add_argument(
        "--no-pin-buckets", action="store_true",
        help="allow collecting triage-bucket exemplars (default keeps "
        "one exemplar snap per open crash bucket)",
    )
    gc.add_argument(
        "--dry-run", action="store_true",
        help="print the plan and delete nothing",
    )
    gc.add_argument(
        "--json", action="store_true",
        help="one JSON object describing the plan",
    )
    gc.set_defaults(fn=cmd_gc)

    tile_cmd = sub.add_parser("tile", help="show CFGs and DAG tiling")
    tile_cmd.add_argument("source")
    tile_cmd.add_argument("--mode", choices=["native", "il"], default="native")
    tile_cmd.set_defaults(fn=cmd_tile)

    dagbase_cmd = sub.add_parser(
        "dagbase", help="emit a DAG base file for a set of sources (§2.3)"
    )
    dagbase_cmd.add_argument("sources", nargs="+", help="MiniC source files")
    dagbase_cmd.add_argument("--out", help="write the base file here")
    dagbase_cmd.set_defaults(fn=cmd_dagbase)

    disasm_cmd = sub.add_parser("disasm", help="disassemble compiled code")
    disasm_cmd.add_argument("source")
    disasm_cmd.add_argument("--instrument", action="store_true")
    disasm_cmd.add_argument("--asm", action="store_true",
                            help="show compiler assembly output instead")
    disasm_cmd.add_argument("--mode", choices=["native", "il"], default="native")
    disasm_cmd.set_defaults(fn=cmd_disasm)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # `tbtrace query ... | head` closes our stdout mid-print; die
        # quietly like other Unix tools instead of dumping a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
