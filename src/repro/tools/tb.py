"""``tbtrace`` — the TraceBack command line.

Usage::

    python -m repro.tools.tb run app.c              # trace a MiniC program
    python -m repro.tools.tb run app.c --mode il --tree
    python -m repro.tools.tb run app.c --save-snap crash.json \\
                                       --save-mapfile app.map.json
    python -m repro.tools.tb view crash.json app.map.json
    python -m repro.tools.tb tile app.c             # show CFGs + DAG tiling
    python -m repro.tools.tb disasm app.c --instrument

The ``run``/``view`` split mirrors production use: instrumented programs
run and snap in one place; mapfiles + snap files travel to wherever the
engineer reconstructs them.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import build_all_cfgs
from repro.api import TraceSession
from repro.instrument import (
    InstrumentConfig,
    Mapfile,
    instrument_module,
    tile,
)
from repro.isa import disassemble
from repro.lang.minic import compile_source, compile_to_asm
from repro.reconstruct import (
    Reconstructor,
    RecoveryError,
    render_degradation,
    render_flat,
    render_tree,
    select_view,
)
from repro.runtime import (
    ArchiveError,
    RuntimeConfig,
    SnapFile,
    SnapPolicy,
    salvage_decompress,
)
from repro.runtime.archive import load_compressed


def _read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _fail(message: str) -> int:
    """One-line diagnosis on stderr, nonzero exit — never a traceback."""
    print(f"tbtrace: error: {message}", file=sys.stderr)
    return 1


def _load_snap(path: str, salvage: bool = False) -> tuple[SnapFile, list[str]]:
    """Read a snap artifact — JSON or a TBSZ* compressed container.

    Returns ``(snap, notes)``; raises ``ArchiveError`` / ``ValueError``
    / ``OSError`` with a human message on damage in strict mode.
    """
    with open(path, "rb") as fh:
        head = fh.read(8)
    if head.startswith(b"TBSZ"):
        if not salvage:
            return load_compressed(path), []
        with open(path, "rb") as fh:
            snap, notes = salvage_decompress(fh.read())
        if snap is None:
            raise ArchiveError(
                "; ".join(notes) or "container unrecoverable"
            )
        return snap, notes
    try:
        return SnapFile.load(path), []
    except (KeyError, TypeError) as exc:
        raise ValueError(f"snap file {path} is malformed: {exc!r}") from exc


def cmd_run(args: argparse.Namespace) -> int:
    source = _read(args.source)
    policy = (
        SnapPolicy.load(args.policy) if args.policy else SnapPolicy()
    )
    session = TraceSession(
        process_name=args.name,
        runtime_config=RuntimeConfig(policy=policy),
        instrument_config=InstrumentConfig(mode=args.mode),
    )
    session.add_minic(source, name=args.name, file_name=args.source)
    run = session.run(max_cycles=args.max_cycles)

    print(f"status: {run.status}; process {run.process.exit_state}")
    if run.output:
        print("output:", " ".join(run.output))
    if run.snap is not None:
        print(f"snap: {run.snap.reason} {run.snap.detail}")
        print()
        trace = run.trace()
        if args.tree and trace.threads:
            print(render_tree(trace.threads[-1]))
        else:
            print(select_view(trace))
        if args.save_snap:
            run.snap.save(args.save_snap)
            print(f"\nsnap written to {args.save_snap}")
    else:
        print("no snap was taken (clean run; use --policy to snap more)")
    if args.save_mapfile:
        run.mapfiles[0].save(args.save_mapfile)
        print(f"mapfile written to {args.save_mapfile}")
    return 0 if run.process.exit_state == "exited" else 1


def cmd_view(args: argparse.Namespace) -> int:
    try:
        snap, load_notes = _load_snap(args.snap, salvage=args.salvage)
    except (RecoveryError, ArchiveError, ValueError, OSError) as exc:
        return _fail(f"cannot load snap {args.snap}: {exc}")
    try:
        mapfiles = [Mapfile.load(path) for path in args.mapfiles]
    except (ValueError, KeyError, OSError) as exc:
        return _fail(f"cannot load mapfiles: {exc}")
    try:
        trace = Reconstructor(mapfiles).reconstruct(
            snap, strict=not args.salvage
        )
    except (RecoveryError, ValueError) as exc:
        return _fail(
            f"reconstruction failed: {exc} (re-run with --salvage to "
            "recover what survives)"
        )
    print(f"snap: {snap.reason} in {snap.process_name} on {snap.machine_name}")
    for note in load_notes:
        print(f"note: {note}")
    for note in trace.notes:
        print(f"note: {note}")
    if args.salvage and trace.salvage:
        from repro.reconstruct.model import DegradationSummary

        summary = DegradationSummary(
            losses=[r.summary() for r in trace.salvage if r.damaged]
        )
        print(render_degradation(summary))
    if args.flat:
        for thread in trace.threads:
            print()
            print(render_flat(thread))
    else:
        print()
        print(select_view(trace))
    return 0


def cmd_tile(args: argparse.Namespace) -> int:
    module = compile_source(_read(args.source), "app", file_name=args.source,
                            bounds_checks=(args.mode == "il"))
    for name, cfg in build_all_cfgs(module).items():
        plan = tile(cfg)
        print(f"function {name}: {len(cfg.blocks)} blocks, "
              f"{len(plan.dags)} DAGs")
        for dag in plan.dags:
            members = ", ".join(
                f"{block}"
                + (f"[bit {bit}]" if bit is not None else
                   "[hdr]" if block == dag.entry else "[implied]")
                for block, bit in dag.members.items()
            )
            print(f"  DAG {dag.index}: {members}")
    return 0


def cmd_dagbase(args: argparse.Namespace) -> int:
    import os

    from repro.instrument import DagBaseFile

    sizes: dict[str, int] = {}
    for path in args.sources:
        name = os.path.splitext(os.path.basename(path))[0]
        result = instrument_module(
            compile_source(_read(path), name, file_name=path)
        )
        sizes[name] = result.module.dag_count
    dagbase = DagBaseFile()
    dagbase.allocate(sizes)
    text = dagbase.render()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    module = compile_source(_read(args.source), "app", file_name=args.source)
    if args.asm:
        print(compile_to_asm(_read(args.source), "app", file_name=args.source))
        return 0
    if args.instrument:
        result = instrument_module(module, InstrumentConfig(mode=args.mode))
        module = result.module
        print(f"; instrumented: {result.stats}")
    print("\n".join(disassemble(module)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tbtrace", description="TraceBack first-fault diagnosis tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile, instrument, run, snap")
    run.add_argument("source", help="MiniC source file")
    run.add_argument("--name", default="app")
    run.add_argument("--mode", choices=["native", "il"], default="native")
    run.add_argument("--max-cycles", type=int, default=50_000_000)
    run.add_argument("--policy", help="snap policy file (§3.6 format)")
    run.add_argument("--tree", action="store_true", help="call-tree view")
    run.add_argument("--save-snap", help="write the snap file here")
    run.add_argument("--save-mapfile", help="write the mapfile here")
    run.set_defaults(fn=cmd_run)

    view = sub.add_parser("view", help="reconstruct a snap from files")
    view.add_argument("snap", help="snap file (JSON or TBSZ container)")
    view.add_argument("mapfiles", nargs="+", help="mapfile JSON files")
    view.add_argument("--flat", action="store_true")
    view.add_argument(
        "--salvage",
        action="store_true",
        help="recover what survives from a damaged snap instead of "
        "failing on the first integrity error",
    )
    view.set_defaults(fn=cmd_view)

    tile_cmd = sub.add_parser("tile", help="show CFGs and DAG tiling")
    tile_cmd.add_argument("source")
    tile_cmd.add_argument("--mode", choices=["native", "il"], default="native")
    tile_cmd.set_defaults(fn=cmd_tile)

    dagbase_cmd = sub.add_parser(
        "dagbase", help="emit a DAG base file for a set of sources (§2.3)"
    )
    dagbase_cmd.add_argument("sources", nargs="+", help="MiniC source files")
    dagbase_cmd.add_argument("--out", help="write the base file here")
    dagbase_cmd.set_defaults(fn=cmd_dagbase)

    disasm_cmd = sub.add_parser("disasm", help="disassemble compiled code")
    disasm_cmd.add_argument("source")
    disasm_cmd.add_argument("--instrument", action="store_true")
    disasm_cmd.add_argument("--asm", action="store_true",
                            help="show compiler assembly output instead")
    disasm_cmd.add_argument("--mode", choices=["native", "il"], default="native")
    disasm_cmd.set_defaults(fn=cmd_disasm)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
