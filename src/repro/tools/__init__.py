"""Command-line tools (``python -m repro.tools.tb``)."""
