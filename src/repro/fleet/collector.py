"""The snap collector: the uplink between service processes and the vault.

Paper §3.6.1 / §3.7.5: every machine's service process notifies a
central point of snaps.  :class:`Collector` is that uplink, built for
the chaos the fleet actually serves up:

* **registration** — ``ServiceProcess.forward_to(collector)`` makes a
  machine's service forward every snap it hears about (its own
  processes' triggers, group fan-outs, hang snaps) into the collector;
* **batching** — snaps queue and ship in batches, amortising the
  per-transfer latency the simulated :class:`~repro.distributed.network.Network`
  charges;
* **bounded queue + back-pressure** — the queue never grows past
  ``queue_limit``; a full queue forces an inline flush (the producer
  pays, evidence survives) before anything is evicted;
* **seeded retry with backoff** — a transfer the network drops goes
  back on the queue with an exponentially growing, deterministically
  jittered delay; only after ``max_retries`` does it land in the
  dead-letter list (still inspectable — evidence is never silently
  discarded);
* **GC pin protocol** — the collector registers its queued +
  dead-lettered digests as a vault pin source, so retention compaction
  (:meth:`~repro.fleet.store.SnapVault.compact`) never deletes content
  an outstanding upload still references;
* **deterministic close** — :meth:`Collector.close` flushes what it
  can and dead-letters the rest; a close racing an in-flight drain can
  never silently drop an accepted snap;
* **pipelined preparation** — with a worker pool attached, the
  CPU-heavy per-snap work (content digest, TBSZ2 compression, SYNC-id
  and crash-signature mining — :func:`repro.fleet.store.prepare_snap`)
  starts the moment a snap is submitted, so digesting overlaps the
  network transfer, and duplicates the vault already knows are caught
  *before* they are compressed at all.

Multiple collectors may feed one vault concurrently — the vault's
index lock and per-shard manifest locks make that safe — but each
collector instance belongs to a single ingest thread.
"""

from __future__ import annotations

import random
from collections import deque
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.fleet.metrics import FleetMetrics
from repro.fleet.store import (
    PreparedSnap,
    SnapVault,
    StoreResult,
    content_digest,
    prepare_snap,
)
from repro.runtime.snap import SnapFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.network import Network

#: Signature of an upload-chaos hook: (machine_name, snap, attempt) ->
#: "drop" (or any truthy value) to lose this transfer, None/False to
#: deliver.  Installed either directly on the collector or as
#: ``Network.upload_chaos``.
UploadChaos = Callable[[str, SnapFile, int], object]


def backoff_with_jitter(
    base: int,
    attempts: int,
    rng: random.Random,
    maximum: int | None = None,
) -> int:
    """Seeded exponential backoff with a jitter cap, in cycles.

    ``base * 2**(attempts-1)`` plus deterministic jitter drawn from
    ``[0, base)``, the whole clamped to ``maximum`` when one is given —
    so a long outage charges bounded cycles per retry instead of
    doubling without limit.  The jitter draw always happens, clamped or
    not, so a given seed yields the same delay sequence regardless of
    where the cap sits.

    This is *the* uplink backoff discipline: the collector's retry
    loop and the remote query client both delay through here.
    """
    delay = base * (2 ** (attempts - 1))
    if base > 0:
        delay += rng.randrange(base)
    if maximum is not None:
        delay = min(delay, maximum)
    return delay


@dataclass
class PendingUpload:
    """One queued snap on its way to the vault."""

    machine: str
    snap: SnapFile
    attempts: int = 0
    #: Backoff delay (cycles) charged before each retry, for the record.
    backoffs: list[int] = field(default_factory=list)
    #: In-flight or finished preparation (worker-pool stage); reused
    #: across retries so a redelivered snap is never re-compressed.
    prepared: "Future | PreparedSnap | None" = None
    #: Cached content digest (the GC pin protocol asks for it).
    _digest: str | None = None

    def digest(self) -> str:
        """Content digest of the queued snap, computed once."""
        if self._digest is None:
            prepared = self.prepared
            if isinstance(prepared, PreparedSnap):
                self._digest = prepared.digest
            else:
                self._digest = content_digest(self.snap)
        return self._digest


class Collector:
    """Receives snaps from service processes and ships them to a vault."""

    def __init__(
        self,
        vault: SnapVault,
        network: "Network | None" = None,
        name: str = "tb-collector",
        batch_size: int = 8,
        queue_limit: int = 64,
        max_retries: int = 5,
        backoff_base: int = 1_000,
        backoff_max: int | None = None,
        seed: int = 0,
        metrics: FleetMetrics | None = None,
        workers: int = 0,
        executor: "Executor | None" = None,
        pipelined: bool = True,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.vault = vault
        self.network = network
        self.name = name
        self.batch_size = batch_size
        self.queue_limit = queue_limit
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        #: Backoff ceiling: no single retry delay (jitter included)
        #: ever exceeds this, so an outage longer than a few doublings
        #: charges bounded cycles before the item dead-letters.  The
        #: default (32x base) sits above any delay a default-config
        #: retry ladder can reach, so it only bites when max_retries is
        #: raised — exactly the long-outage case it exists for.
        if backoff_max is None:
            backoff_max = 32 * backoff_base
        if backoff_max < backoff_base:
            raise ValueError("backoff_max must be >= backoff_base")
        self.backoff_max = backoff_max
        #: Deterministic jitter source for retry backoff.
        self.rng = random.Random(seed)
        #: Shared with the vault unless explicitly overridden, so one
        #: render covers the whole pipeline.
        self.metrics = metrics or vault.metrics
        self.queue: deque[PendingUpload] = deque()
        #: Uploads that exhausted their retries — kept, not discarded.
        self.dead: list[PendingUpload] = []
        #: Store results in upload order (tests assert dedupe here).
        self.results: list[StoreResult] = []
        #: Collector-local chaos hook; ``network.upload_chaos`` also
        #: applies when a network is attached.
        self.upload_chaos: UploadChaos | None = None
        #: ``pipelined=False`` restores the PR 3 wire behavior exactly:
        #: one ``vault.put`` (with its own fsync and manifest line) per
        #: delivered snap.  It exists for the benchmark baseline and
        #: for bisecting pipeline regressions.
        self.pipelined = pipelined
        self._own_executor = workers > 0
        self.executor: Executor | None = executor
        if workers > 0:
            if executor is not None:
                raise ValueError("pass either workers or executor, not both")
            self.executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"{name}-prep"
            )
        self._closed = False
        # The GC pin protocol: content this collector still holds
        # (queued or dead-lettered) must not be collected out of the
        # vault — a redelivery would otherwise re-store evidence the
        # engineer believed was already safe, or worse, arrive to find
        # its incident's other members gone.
        vault.add_pin_source(self.pinned_digests)

    @property
    def closed(self) -> bool:
        return self._closed

    def pinned_digests(self) -> set[str]:
        """Digests of every queued + dead-lettered snap (pin protocol)."""
        return {
            item.digest() for item in list(self.queue) + list(self.dead)
        }

    def close(self, flush: bool = True) -> None:
        """Shut down deterministically: flush or dead-letter, never drop.

        Every snap still queued at close time either lands in the vault
        (``flush=True`` gives it a final delivery run, retries and all)
        or moves to the dead-letter list (``close_dead_letters`` counts
        them) — closing can never silently lose an accepted snap, even
        when it races an in-flight :meth:`drain` from another thread.
        Also shuts down a collector-owned worker pool.  Idempotent;
        submissions after close dead-letter immediately.
        """
        if self._closed:
            return
        self._closed = True
        if flush:
            # Final delivery run.  flush_batch terminates the same way
            # drain does: every pass stores an item or advances it
            # toward the dead-letter limit.
            while self.queue:
                self.flush_batch()
            self.vault.flush_index()
        while self.queue:
            item = self.queue.popleft()
            self.dead.append(item)
            self.metrics.bump(dead_letters=1, close_dead_letters=1)
        if self._own_executor and self.executor is not None:
            self.executor.shutdown(wait=True)
            self.executor = None
            self._own_executor = False

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, snap: SnapFile) -> None:
        """A service process forwards one snap (the `forward_to` hook)."""
        self.metrics.bump(submitted=1)
        if self._closed:
            # A closed collector accepts nothing new onto the wire, but
            # evidence is never silently discarded: straight to the
            # dead-letter list, inspectable and requeue-able elsewhere.
            self.dead.append(
                PendingUpload(machine=snap.machine_name, snap=snap)
            )
            self.metrics.bump(dead_letters=1, close_dead_letters=1)
            return
        if len(self.queue) >= self.queue_limit:
            # Back-pressure: flush a batch inline rather than grow.
            self.metrics.bump(backpressure_flushes=1)
            self.flush_batch()
        if len(self.queue) >= self.queue_limit:
            # Still full (everything bounced): evict the oldest entry.
            self.queue.popleft()
            self.metrics.bump(evicted=1)
        item = PendingUpload(machine=snap.machine_name, snap=snap)
        if self.pipelined and self.executor is not None:
            # Start digesting now; it overlaps the upcoming transfer.
            item.prepared = self.executor.submit(
                prepare_snap,
                snap,
                self.vault.compress_level,
                self.vault.contains,
                self.vault.sign,
            )
        self.queue.append(item)
        self.metrics.bump_peak("queue_peak", len(self.queue))

    def pending(self) -> int:
        """Snaps queued but not yet durably stored."""
        return len(self.queue)

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    def _chaos_verdict(self, item: PendingUpload) -> object:
        hook = self.upload_chaos
        if hook is None and self.network is not None:
            hook = getattr(self.network, "upload_chaos", None)
        if hook is None:
            return None
        return hook(item.machine, item.snap, item.attempts)

    def _transfer(self, item: PendingUpload) -> bool:
        """Ship one snap across the simulated network.

        Charges the source machine's clock the wire latency (uploads
        are real traffic) and consults the chaos hook; returns False
        when the transfer is lost in transit.
        """
        item.attempts += 1
        if self.network is not None:
            for machine in self.network.machines:
                if machine.name == item.machine:
                    machine.cycles += self.network.rpc_latency
                    break
        if self._chaos_verdict(item):
            self.metrics.bump(drops=1)
            return False
        return True

    def _prepared(self, item: PendingUpload) -> PreparedSnap:
        """The item's preparation result, computing inline if needed."""
        if isinstance(item.prepared, Future):
            item.prepared = item.prepared.result()
        if item.prepared is None:
            item.prepared = prepare_snap(
                item.snap,
                self.vault.compress_level,
                self.vault.contains,
                self.vault.sign,
            )
        return item.prepared

    def flush_batch(self) -> int:
        """Upload one batch; returns how many snaps landed in the vault.

        Failed transfers re-queue with seeded exponential backoff until
        ``max_retries``, then dead-letter.  Delivered snaps commit to
        the vault as one batch (one manifest append per touched shard).
        """
        if not self.queue:
            return 0
        self.metrics.bump(batches=1)
        delivered: list[PendingUpload] = []
        for _ in range(min(self.batch_size, len(self.queue))):
            item = self.queue.popleft()
            if self._transfer(item):
                delivered.append(item)
                continue
            if item.attempts > self.max_retries:
                self.dead.append(item)
                self.metrics.bump(dead_letters=1)
                continue
            backoff = backoff_with_jitter(
                self.backoff_base, item.attempts, self.rng, self.backoff_max
            )
            item.backoffs.append(backoff)
            self.metrics.bump(backoff_cycles=backoff, retries=1)
            self.queue.append(item)
        if not delivered:
            return 0
        if self.pipelined:
            self.results.extend(
                self.vault.put_batch([self._prepared(i) for i in delivered])
            )
        else:
            self.results.extend(self.vault.put(i.snap) for i in delivered)
        self.metrics.bump(uploads=len(delivered))
        return len(delivered)

    def drain(self) -> int:
        """Flush until the queue is empty; returns total snaps stored.

        Terminates unconditionally: every pass either stores an item or
        advances its attempt counter toward the dead-letter limit.
        Checkpoints the vault's incident index once the queue is dry.
        """
        total = 0
        while self.queue:
            total += self.flush_batch()
        self.vault.flush_index()
        return total

    def requeue_dead(self) -> int:
        """Give dead-lettered uploads a fresh round of retries.

        Respects the queue bound: only as many dead letters as the
        queue has room for are admitted (oldest first — they have
        waited longest), the rest stay dead-lettered, and the *actual*
        admitted count is returned.  Overfilling the queue here used to
        make the next ``submit`` evict live entries to make room for
        previously-failed ones.  Metrics move exactly once per
        transition: ``dead_letters`` counted the entry into the list,
        ``dead_requeued`` counts the exit, so ``dead_letters -
        dead_requeued`` is always the current net dead-letter total.
        """
        admitted = 0
        while self.dead and len(self.queue) < self.queue_limit:
            item = self.dead.pop(0)
            item.attempts = 0
            self.queue.append(item)
            admitted += 1
        if admitted:
            self.metrics.bump(dead_requeued=admitted)
        self.metrics.bump_peak("queue_peak", len(self.queue))
        return admitted
