"""The incident query engine over a snap vault.

A support engineer's question is rarely "show me snap 0x4f2…"; it is
"what happened around the petstore crash on machine-b last night?".
This module turns vault manifest entries into *incidents*:

* **co-triggered group snaps** — a group snap fan-out (§3.6.1) leaves
  one snap per member process, every one tagged with the same
  ``(group, initiator, initiator_reason)``; those, plus the
  initiator's own triggering snap, are one incident, not N;
* **SYNC-linked snaps** — snaps from different machines whose trace
  buffers carry SYNC records of the same logical thread (§5.1) are
  evidence about the same distributed control flow, so they merge into
  the same incident even across machines that share no group.

Reconstruction stays lazy: grouping works from manifest metadata alone
(the SYNC logical ids are mined once, at ingest); archives are only
read when an incident is actually reconstructed — strict or salvage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.metrics import FleetMetrics
from repro.fleet.store import SnapVault, VaultEntry
from repro.instrument.mapfile import Mapfile
from repro.reconstruct import DistributedTrace, ProcessTrace, Reconstructor


@dataclass
class Incident:
    """A set of snaps that are evidence about one distributed fault."""

    incident_id: int
    entries: list[VaultEntry] = field(default_factory=list)
    #: Why entries were linked: "group-snap" and/or "sync-link".
    links: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    @property
    def machines(self) -> list[str]:
        return sorted({e.machine for e in self.entries})

    @property
    def processes(self) -> list[str]:
        return sorted({e.process for e in self.entries})

    @property
    def reasons(self) -> list[str]:
        return sorted({e.reason for e in self.entries})

    @property
    def groups(self) -> list[str]:
        return sorted({e.group for e in self.entries if e.group})

    def initiator(self) -> str | None:
        """The process whose trigger started the fan-out, if known."""
        for entry in self.entries:
            if entry.initiator:
                return entry.initiator
        return None

    def describe(self) -> str:
        """One line for listings."""
        parts = [
            f"incident #{self.incident_id}:",
            f"{len(self.entries)} snap(s)",
            f"machines {','.join(self.machines)}",
            f"reasons {','.join(self.reasons)}",
        ]
        initiator = self.initiator()
        if initiator:
            parts.append(f"initiator {initiator}")
        if self.groups:
            parts.append(f"group {','.join(self.groups)}")
        parts.append(f"links {','.join(sorted(self.links)) or 'singleton'}")
        return " ".join(parts)


class VaultQuery:
    """Filter, lazily reconstruct, and group a vault's snaps."""

    def __init__(self, vault: SnapVault, metrics: FleetMetrics | None = None):
        self.vault = vault
        self.metrics = metrics or vault.metrics

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def select(self, **filters) -> list[VaultEntry]:
        """Manifest entries matching the filters (see SnapVault.select)."""
        self.metrics.queries += 1
        entries = self.vault.select(**filters)
        self.metrics.entries_scanned += len(self.vault.index)
        return entries

    # ------------------------------------------------------------------
    # Lazy reconstruction
    # ------------------------------------------------------------------
    def reconstruct_entry(
        self,
        entry: VaultEntry | str,
        mapfiles: list[Mapfile] | None = None,
        salvage: bool = False,
    ) -> tuple[ProcessTrace, list[str]]:
        """Load and reconstruct one stored snap on demand.

        ``mapfiles`` defaults to the vault's stored mapfiles.  Returns
        ``(trace, archive_notes)``; strict mode raises on damage.
        """
        digest = entry if isinstance(entry, str) else entry.digest
        snap, notes = self.vault.load(digest, salvage=salvage)
        if snap is None:
            raise ValueError(
                f"snap {digest} unrecoverable: {'; '.join(notes) or 'gone'}"
            )
        reconstructor = Reconstructor(mapfiles or self.vault.mapfiles())
        self.metrics.reconstructions += 1
        return reconstructor.reconstruct(snap, strict=not salvage), notes

    def reconstruct_incident(
        self,
        incident: Incident,
        mapfiles: list[Mapfile] | None = None,
        salvage: bool = True,
    ) -> DistributedTrace:
        """Stitch one incident's snaps into a master trace (§5).

        Salvage is the default here — incidents are exactly the snaps
        that lived through faults, and a banner beats a traceback.
        """
        snaps = []
        salvage_notes: dict[str, list[str]] = {}
        for entry in incident.entries:
            snap, notes = self.vault.load(entry.digest, salvage=salvage)
            snaps.append(snap)
            if notes:
                salvage_notes.setdefault(entry.machine, []).extend(notes)
        reconstructor = Reconstructor(mapfiles or self.vault.mapfiles())
        self.metrics.reconstructions += len(incident.entries)
        return reconstructor.reconstruct_distributed(
            snaps,
            strict=not salvage,
            expected_machines=incident.machines,
            salvage_notes=salvage_notes,
        )

    # ------------------------------------------------------------------
    # Incident grouping
    # ------------------------------------------------------------------
    def incidents(
        self,
        entries: list[VaultEntry] | None = None,
        window: int | None = None,
    ) -> list[Incident]:
        """Group entries into incidents (union-find over both links).

        ``window`` bounds linking to entries within that many ingest
        sequence numbers of each other — useful when one vault holds
        many runs whose runtime ids (and hence SYNC logical ids) were
        deliberately reset to identical values.
        """
        if entries is None:
            entries = self.vault.select()
        parent = list(range(len(entries)))
        link_kinds: dict[int, set[str]] = {i: set() for i in parent}

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int, kind: str) -> None:
            if window is not None and abs(entries[i].seq - entries[j].seq) > window:
                return
            ri, rj = find(i), find(j)
            link_kinds[ri].add(kind)
            link_kinds[rj].add(kind)
            if ri != rj:
                parent[rj] = ri
                link_kinds[ri] |= link_kinds[rj]

        # Link 1: co-triggered group snaps + the initiating snap.
        by_fanout: dict[tuple, list[int]] = {}
        for i, entry in enumerate(entries):
            if entry.group and entry.initiator:
                key = (entry.group, entry.initiator, entry.initiator_reason)
                by_fanout.setdefault(key, []).append(i)
        for (group, initiator, initiator_reason), members in by_fanout.items():
            for a, b in zip(members, members[1:]):
                union(a, b, "group-snap")
            # The initiator's own snap carries no group tag; match it by
            # (process, reason) — that pair is what the fan-out recorded.
            for i, entry in enumerate(entries):
                if (
                    entry.process == initiator
                    and entry.reason == initiator_reason
                ):
                    union(members[0], i, "group-snap")

        # Link 2: shared SYNC logical-thread ids across snaps.
        by_sync: dict[int, list[int]] = {}
        for i, entry in enumerate(entries):
            for logical_id in entry.sync_ids:
                by_sync.setdefault(logical_id, []).append(i)
        for members in by_sync.values():
            for a, b in zip(members, members[1:]):
                union(a, b, "sync-link")

        clusters: dict[int, list[int]] = {}
        for i in range(len(entries)):
            clusters.setdefault(find(i), []).append(i)
        incidents = []
        for root, members in sorted(
            clusters.items(), key=lambda kv: min(entries[m].seq for m in kv[1])
        ):
            incidents.append(
                Incident(
                    incident_id=len(incidents),
                    entries=[entries[m] for m in sorted(
                        members, key=lambda m: entries[m].seq
                    )],
                    links=set(link_kinds[root]),
                )
            )
        self.metrics.incidents_built += len(incidents)
        return incidents
