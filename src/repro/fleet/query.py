"""The incident query engine over a snap vault.

A support engineer's question is rarely "show me snap 0x4f2…"; it is
"what happened around the petstore crash on machine-b last night?".
This module turns vault manifest entries into *incidents*:

* **co-triggered group snaps** — a group snap fan-out (§3.6.1) leaves
  one snap per member process, every one tagged with the same
  ``(group, initiator, initiator_reason)``; those, plus the
  initiator's own triggering snap, are one incident, not N;
* **SYNC-linked snaps** — snaps from different machines whose trace
  buffers carry SYNC records of the same logical thread (§5.1) are
  evidence about the same distributed control flow, so they merge into
  the same incident even across machines that share no group.

Reconstruction stays lazy: grouping works from manifest metadata alone
(the SYNC logical ids are mined once, at ingest); archives are only
read when an incident is actually reconstructed — strict or salvage.

Since the parallel-ingest PR, the grouping itself is also done once,
at ingest: the vault maintains a persisted
:class:`~repro.fleet.index.IncidentIndex`, so the default
:meth:`VaultQuery.incidents` call reads a precomputed partition
(O(result)) instead of re-running union-find over the whole manifest
(O(vault)), and :meth:`VaultQuery.incident_of` answers "what happened
around *this* snap" in time proportional to that one incident.  The
original batch grouper remains for ad-hoc entry lists and explicit
``window`` overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.index import batch_group
from repro.fleet.metrics import FleetMetrics
from repro.fleet.store import SnapVault, VaultEntry
from repro.instrument.mapfile import Mapfile
from repro.reconstruct import DistributedTrace, ProcessTrace, Reconstructor

#: Sentinel for "use whatever window the vault's persisted index was
#: built with" — distinct from an explicit ``window=None`` (unbounded).
USE_INDEX_WINDOW = object()


@dataclass
class Incident:
    """A set of snaps that are evidence about one distributed fault."""

    incident_id: int
    entries: list[VaultEntry] = field(default_factory=list)
    #: Why entries were linked: "group-snap" and/or "sync-link".
    links: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    @property
    def machines(self) -> list[str]:
        return sorted({e.machine for e in self.entries})

    @property
    def processes(self) -> list[str]:
        return sorted({e.process for e in self.entries})

    @property
    def reasons(self) -> list[str]:
        return sorted({e.reason for e in self.entries})

    @property
    def groups(self) -> list[str]:
        return sorted({e.group for e in self.entries if e.group})

    def initiator(self) -> str | None:
        """The process whose trigger started the fan-out, if known."""
        for entry in self.entries:
            if entry.initiator:
                return entry.initiator
        return None

    def describe(self) -> str:
        """One line for listings."""
        parts = [
            f"incident #{self.incident_id}:",
            f"{len(self.entries)} snap(s)",
            f"machines {','.join(self.machines)}",
            f"reasons {','.join(self.reasons)}",
        ]
        initiator = self.initiator()
        if initiator:
            parts.append(f"initiator {initiator}")
        if self.groups:
            parts.append(f"group {','.join(self.groups)}")
        parts.append(f"links {','.join(sorted(self.links)) or 'singleton'}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """Machine-readable form (``tbtrace incidents --json``)."""
        return {
            "incident_id": self.incident_id,
            "snaps": len(self.entries),
            "machines": self.machines,
            "processes": self.processes,
            "reasons": self.reasons,
            "groups": self.groups,
            "initiator": self.initiator(),
            "links": sorted(self.links),
            "entries": [e.digest for e in self.entries],
        }


class VaultQuery:
    """Filter, lazily reconstruct, and group a vault's snaps."""

    def __init__(self, vault: SnapVault, metrics: FleetMetrics | None = None):
        self.vault = vault
        self.metrics = metrics or vault.metrics

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def select(self, **filters) -> list[VaultEntry]:
        """Manifest entries matching the filters (see SnapVault.select)."""
        self.metrics.queries += 1
        entries = self.vault.select(**filters)
        self.metrics.entries_scanned += len(self.vault.index)
        return entries

    # ------------------------------------------------------------------
    # Lazy reconstruction
    # ------------------------------------------------------------------
    def reconstruct_entry(
        self,
        entry: VaultEntry | str,
        mapfiles: list[Mapfile] | None = None,
        salvage: bool = False,
    ) -> tuple[ProcessTrace, list[str]]:
        """Load and reconstruct one stored snap on demand.

        ``mapfiles`` defaults to the vault's stored mapfiles.  Returns
        ``(trace, archive_notes)``; strict mode raises on damage.
        """
        digest = entry if isinstance(entry, str) else entry.digest
        snap, notes = self.vault.load(digest, salvage=salvage)
        if snap is None:
            raise ValueError(
                f"snap {digest} unrecoverable: {'; '.join(notes) or 'gone'}"
            )
        reconstructor = Reconstructor(mapfiles or self.vault.mapfiles())
        self.metrics.reconstructions += 1
        return reconstructor.reconstruct(snap, strict=not salvage), notes

    def reconstruct_incident(
        self,
        incident: Incident,
        mapfiles: list[Mapfile] | None = None,
        salvage: bool = True,
    ) -> DistributedTrace:
        """Stitch one incident's snaps into a master trace (§5).

        Salvage is the default here — incidents are exactly the snaps
        that lived through faults, and a banner beats a traceback.
        """
        snaps = []
        salvage_notes: dict[str, list[str]] = {}
        for entry in incident.entries:
            snap, notes = self.vault.load(entry.digest, salvage=salvage)
            snaps.append(snap)
            if notes:
                salvage_notes.setdefault(entry.machine, []).extend(notes)
        reconstructor = Reconstructor(mapfiles or self.vault.mapfiles())
        self.metrics.reconstructions += len(incident.entries)
        return reconstructor.reconstruct_distributed(
            snaps,
            strict=not salvage,
            expected_machines=incident.machines,
            salvage_notes=salvage_notes,
        )

    # ------------------------------------------------------------------
    # Incident grouping
    # ------------------------------------------------------------------
    def incidents(
        self,
        entries: list[VaultEntry] | None = None,
        window=USE_INDEX_WINDOW,
        machine: str | None = None,
        process: str | None = None,
        reason: str | None = None,
        group: str | None = None,
        sync_id: int | None = None,
    ) -> list[Incident]:
        """Group snaps into incidents.

        The default call (no ``entries``, no explicit ``window``) reads
        the vault's persisted incident index: the partition was built
        incrementally at ingest, so only the requested incidents are
        materialized.  The ``machine``/``process``/``reason``/
        ``group``/``sync_id`` filters narrow via the index's secondary
        maps — O(matching entries), not O(vault) — and return every
        incident *touching* a matching snap (the whole incident, not
        just its matching members: the bystander evidence is the
        point).

        Passing an explicit ``entries`` list, or a ``window`` other
        than the one the vault's index was built with, falls back to
        the original one-shot union-find (``window`` bounds linking to
        entries within that many ingest sequence numbers — useful when
        one vault holds many runs whose runtime ids were deliberately
        reset to identical values).
        """
        index = getattr(self.vault, "incident_index", None)
        use_index = (
            entries is None
            and index is not None
            and (window is USE_INDEX_WINDOW or window == index.window)
        )
        if use_index:
            return self._incidents_indexed(
                index,
                machine=machine,
                process=process,
                reason=reason,
                group=group,
                sync_id=sync_id,
            )
        if window is USE_INDEX_WINDOW:
            window = None
        if entries is None:
            entries = self.vault.select()
        entries = [
            e
            for e in entries
            if (machine is None or e.machine == machine)
            and (process is None or e.process == process)
            and (reason is None or e.reason == reason)
            and (group is None or e.group == group)
            and (sync_id is None or sync_id in e.sync_ids)
        ]
        return self._incidents_batch(entries, window)

    def top(self, limit: int | None = None):
        """Ranked "top crashers" buckets — O(buckets), no archives.

        Served straight from the vault's incrementally-maintained
        bucket state (:class:`~repro.fleet.index.IncidentIndex`); see
        :func:`repro.fleet.triage.top_buckets` for the ranking rules.
        Returns :class:`~repro.fleet.triage.CrashBucket` objects.
        """
        from repro.fleet.triage import top_buckets

        self.metrics.top_queries += 1
        return top_buckets(self.vault, limit=limit)

    def verify_bucket(self, bucket) -> dict:
        """Replay a crash bucket's pinned exemplar to confirm the
        diagnosis.

        Loads the exemplar (salvage), re-executes its recorded run with
        :class:`~repro.replay.ReplayEngine`, and checks that the replay
        (a) reaches a fault and (b) produces a snap whose mined crash
        signature equals the bucket's.  Returns a verdict dict::

            {"verified": bool, "reason": str, "digest": str | None,
             "replay_sig": str | None}

        Never raises: legacy/seed-only exemplars report
        ``replay-unavailable``, a diverging replay reports
        ``divergence`` — both are findings, not errors.
        """
        from repro.reconstruct.signature import snap_signature
        from repro.replay import ReplayDivergence, ReplayUnavailable
        from repro.replay.engine import ReplayEngine

        digest = getattr(bucket, "exemplar", None)
        verdict = {
            "verified": False,
            "reason": "",
            "digest": digest,
            "replay_sig": None,
        }
        if digest is None:
            verdict["reason"] = "no exemplar recorded"
            return verdict
        try:
            snap, _notes = self.vault.load(digest, salvage=True)
        except OSError as exc:
            verdict["reason"] = f"exemplar unreadable: {exc}"
            return verdict
        if snap is None:
            verdict["reason"] = "exemplar unrecoverable"
            return verdict
        try:
            engine = ReplayEngine(snap)
            stop = engine.run_to_fault()
            replayed = engine.replayed_snap()
        except ReplayUnavailable as exc:
            verdict["reason"] = f"replay-unavailable[{exc.segment}]: {exc}"
            return verdict
        except ReplayDivergence as exc:
            verdict["reason"] = f"divergence: {exc}"
            return verdict
        self.metrics.reconstructions += 1
        replay_sig = snap_signature(replayed, self.vault.mapfiles())
        verdict["replay_sig"] = replay_sig
        if stop["reason"] != "fault":
            verdict["reason"] = (
                f"replay ended without a fault (stop={stop['reason']})"
            )
            return verdict
        if replay_sig != bucket.sig:
            verdict["reason"] = (
                f"signature mismatch: replayed {replay_sig!r}, "
                f"bucket {bucket.sig!r}"
            )
            return verdict
        verdict["verified"] = True
        verdict["reason"] = "replayed exemplar reproduces the bucket signature"
        return verdict

    def incident_of(self, digest_or_entry: VaultEntry | str) -> Incident | None:
        """The one incident containing this snap — O(incident).

        ``incident_id`` here is the incident's first ingest sequence
        number (stable across vault growth), unlike the positional ids
        of a full listing.
        """
        digest = (
            digest_or_entry
            if isinstance(digest_or_entry, str)
            else digest_or_entry.digest
        )
        component = self.vault.incident_index.component_of(digest)
        self.metrics.incident_lookups += 1
        if component is None:
            return None
        # .get(): a compaction racing this lookup may have dropped a
        # member between the component read and here; serve the
        # members that still exist rather than KeyError on a digest
        # the next index swap will forget.
        entries = [
            e
            for e in (self.vault.index.get(d) for d in component.digests)
            if e is not None
        ]
        if not entries:
            return None
        return Incident(
            incident_id=component.min_seq,
            entries=entries,
            links=component.kinds,
        )

    def _incidents_indexed(
        self,
        index,
        machine=None,
        process=None,
        reason=None,
        group=None,
        sync_id=None,
    ) -> list[Incident]:
        candidates: list[str] | None = None
        for filter_value, secondary in (
            (machine, index.by_machine),
            (process, index.by_process),
            (reason, index.by_reason),
            (group, index.by_group),
            (sync_id, index.by_sync),
        ):
            if filter_value is None:
                continue
            matching = secondary.get(filter_value, [])
            if candidates is None:
                candidates = list(matching)
            else:
                keep = set(matching)
                candidates = [d for d in candidates if d in keep]
        if candidates is not None:
            self.metrics.incident_lookups += 1
        incidents = []
        for position, component in enumerate(index.components(candidates)):
            entries = [
                e
                for e in (self.vault.index.get(d) for d in component.digests)
                if e is not None
            ]
            if not entries:
                continue  # every member compacted away mid-listing
            incidents.append(
                Incident(
                    incident_id=position,
                    entries=entries,
                    links=component.kinds,
                )
            )
        self.metrics.incidents_built += len(incidents)
        return incidents

    def _incidents_batch(
        self, entries: list[VaultEntry], window: int | None
    ) -> list[Incident]:
        """The original one-shot union-find grouper."""
        clusters, kinds = batch_group(entries, window)
        incidents = []
        for position, members in enumerate(clusters):
            incidents.append(
                Incident(
                    incident_id=position,
                    entries=[entries[m] for m in members],
                    links=kinds[position],
                )
            )
        self.metrics.incidents_built += len(incidents)
        return incidents
