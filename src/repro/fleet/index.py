"""The persisted incident index: ingest-time correlation, O(result) queries.

PR 3's :meth:`VaultQuery.incidents` re-ran union-find over the whole
manifest on every query — fine at 1k snaps, quadratic-feeling at 100k.
Like Magpie's online event correlation (PAPERS.md), this module moves
the correlation work to *ingest time*:

* every stored :class:`~repro.fleet.store.VaultEntry` is fed to
  :meth:`IncidentIndex.add` (in ingest-sequence order, under the
  vault's index lock), which applies exactly the link rules the batch
  grouper used — group-snap fan-outs, initiator matching, shared SYNC
  logical-thread ids — incrementally, as union-find edges;
* the resulting partition is checkpointed to ``incidents.idx`` at the
  vault root (atomic replace, torn-write tolerant), and **rebuildable
  from the manifests alone**: replaying every manifest entry in
  sequence order reproduces the file bit-identically, because the
  serialization is a pure, canonical function of the partition — never
  of parent-pointer shapes or query history;
* secondary indexes (machine / process / reason / group / SYNC id →
  entry digests) make filtered incident queries and single-incident
  lookups O(result) instead of O(vault);
* crash-signature **triage buckets** ride the same structure: every
  entry carries its mined signature (``VaultEntry.sig``), each
  component's bucket is the minimum of its members' signatures
  (order-free, so any union interleaving lands in the same bucket),
  and ``buckets`` maps signature → components — the ranked "top
  crashers" view, maintained incrementally at ingest and checkpointed
  (and rebuilt bit-identically) with the partition.

The edge rules replicate :func:`batch_group` (the original algorithm,
kept both as the explicit-``window``/ad-hoc-entry-list path and as the
differential-testing oracle): chains link consecutive members, the
fan-out's *first* member anchors initiator matches, and an optional
``window`` bounds every edge by ingest-sequence distance so one vault
holding many runs with reset runtime ids does not cross-link them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.fleet.store import VaultEntry
from repro.runtime.archive import write_atomic

#: Filename of the persisted index, directly under the vault root.
INDEX_FILE = "incidents.idx"

#: Schema 2 adds crash-signature triage state: each member carries its
#: mined signature, each component its bucket signature, and the file a
#: canonical bucket summary.  Schema-1 checkpoints fail the schema
#: check and fall back to a rebuild from the manifests — the normal
#: stale-checkpoint path, not an error.
SCHEMA = "tb-incident-index/2"


# ----------------------------------------------------------------------
# The original batch grouper (explicit windows, ad-hoc entry lists, and
# the oracle the incremental index is differentially tested against).
# ----------------------------------------------------------------------
def batch_group(
    entries: list[VaultEntry], window: int | None = None
) -> tuple[list[list[int]], dict[int, set[str]]]:
    """Union-find over ``entries``; returns (clusters, kinds-per-cluster).

    Clusters are lists of indexes into ``entries`` sorted by seq, the
    cluster list itself ordered by first-ingest seq.  The kinds dict is
    keyed by cluster position.
    """
    parent = list(range(len(entries)))
    link_kinds: dict[int, set[str]] = {i: set() for i in parent}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int, kind: str) -> None:
        if window is not None and abs(entries[i].seq - entries[j].seq) > window:
            return
        ri, rj = find(i), find(j)
        link_kinds[ri].add(kind)
        link_kinds[rj].add(kind)
        if ri != rj:
            parent[rj] = ri
            link_kinds[ri] |= link_kinds[rj]

    # Link 1: co-triggered group snaps + the initiating snap.
    by_fanout: dict[tuple, list[int]] = {}
    for i, entry in enumerate(entries):
        if entry.group and entry.initiator:
            key = (entry.group, entry.initiator, entry.initiator_reason)
            by_fanout.setdefault(key, []).append(i)
    for (group, initiator, initiator_reason), members in by_fanout.items():
        for a, b in zip(members, members[1:]):
            union(a, b, "group-snap")
        # The initiator's own snap carries no group tag; match it by
        # (process, reason) — that pair is what the fan-out recorded.
        for i, entry in enumerate(entries):
            if (
                entry.process == initiator
                and entry.reason == initiator_reason
            ):
                union(members[0], i, "group-snap")

    # Link 2: shared SYNC logical-thread ids across snaps.
    by_sync: dict[int, list[int]] = {}
    for i, entry in enumerate(entries):
        for logical_id in entry.sync_ids:
            by_sync.setdefault(logical_id, []).append(i)
    for members in by_sync.values():
        for a, b in zip(members, members[1:]):
            union(a, b, "sync-link")

    clusters: dict[int, list[int]] = {}
    for i in range(len(entries)):
        clusters.setdefault(find(i), []).append(i)
    ordered = sorted(
        clusters.items(), key=lambda kv: min(entries[m].seq for m in kv[1])
    )
    out_clusters = []
    out_kinds = {}
    for position, (root, members) in enumerate(ordered):
        out_clusters.append(sorted(members, key=lambda m: entries[m].seq))
        out_kinds[position] = set(link_kinds[root])
    return out_clusters, out_kinds


# ----------------------------------------------------------------------
# The incremental index
# ----------------------------------------------------------------------
@dataclass
class IndexedIncident:
    """One component of the incident partition, by digest."""

    digests: list[str]  # sorted by ingest seq
    kinds: set[str] = field(default_factory=set)
    min_seq: int = 0
    #: The component's triage-bucket signature: the minimum of its
    #: members' mined signatures (None when no member carries one).
    #: Min-of-members is order-free, so the same partition always
    #: yields the same bucket no matter how its unions interleaved.
    sig: str | None = None


class IncidentIndex:
    """Incrementally-maintained union-find over vault entries.

    ``add()`` must be called in ingest-sequence order (the vault holds
    its index lock across seq assignment and ``add``, which guarantees
    it even under concurrent multi-collector ingest); replaying the
    manifests in seq order therefore reproduces this object — and its
    serialized form — exactly.
    """

    def __init__(self, window: int | None = None):
        self.window = window
        #: digest -> ingest seq (the window metric and sort key).
        self.seq: dict[str, int] = {}
        #: Union-find parent pointers, by digest.
        self._parent: dict[str, str] = {}
        #: root digest -> members (unsorted; sorted at query time).
        self._members: dict[str, list[str]] = {}
        #: root digest -> link kinds attempted on this component.
        self._kinds: dict[str, set[str]] = {}
        #: root digest -> smallest member seq.
        self._min_seq: dict[str, int] = {}
        #: digest -> mined crash signature (None for non-fault snaps).
        self.sig: dict[str, str | None] = {}
        #: root digest -> the component's bucket signature (min of its
        #: members' non-None signatures).
        self._root_sig: dict[str, str | None] = {}
        #: signature -> component roots carrying it (the triage
        #: buckets, maintained incrementally alongside the union-find).
        self.buckets: dict[str, set[str]] = {}
        # -- chain state replicating batch_group's edge set ------------
        self._fanout_prev: dict[tuple, str] = {}
        self._fanout_anchor: dict[tuple, str] = {}
        self._sync_prev: dict[int, str] = {}
        #: (process, reason) -> digests, ingest order.
        self._by_proc_reason: dict[tuple, list[str]] = {}
        #: (initiator, initiator_reason) -> anchor digests, ingest order.
        self._anchors_by_pair: dict[tuple, list[str]] = {}
        # -- secondary indexes (rebuilt from entries at load) ----------
        self.by_machine: dict[str, list[str]] = {}
        self.by_process: dict[str, list[str]] = {}
        self.by_reason: dict[str, list[str]] = {}
        self.by_group: dict[str, list[str]] = {}
        self.by_sync: dict[int, list[str]] = {}
        #: Adds since the last persist (the vault checkpoints on flush).
        self.dirty = 0

    def __len__(self) -> int:
        return len(self.seq)

    def __contains__(self, digest: str) -> bool:
        return digest in self.seq

    # ------------------------------------------------------------------
    # Union-find core
    # ------------------------------------------------------------------
    def find(self, digest: str) -> str:
        parent = self._parent
        root = digest
        while parent[root] != root:
            root = parent[root]
        while parent[digest] != root:  # path compression
            parent[digest], digest = root, parent[digest]
        return root

    def _union(self, a: str, b: str, kind: str) -> None:
        if (
            self.window is not None
            and abs(self.seq[a] - self.seq[b]) > self.window
        ):
            return
        ra, rb = self.find(a), self.find(b)
        self._kinds[ra].add(kind)
        self._kinds[rb].add(kind)
        if ra == rb:
            return
        # Small-into-large keeps member-merging near-linear overall.
        if len(self._members[ra]) < len(self._members[rb]):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._members[ra].extend(self._members.pop(rb))
        self._kinds[ra] |= self._kinds.pop(rb)
        self._min_seq[ra] = min(self._min_seq[ra], self._min_seq.pop(rb))
        # Re-key the triage buckets: both components leave under their
        # old signatures, the merged one enters under the min of the
        # two (min over members is associative, so merge order cannot
        # change which bucket a partition lands in).
        sa, sb = self._root_sig[ra], self._root_sig.pop(rb)
        for sig, root in ((sa, ra), (sb, rb)):
            if sig is None:
                continue
            carriers = self.buckets[sig]
            carriers.discard(root)
            if not carriers:
                del self.buckets[sig]
        merged = sb if sa is None else sa if sb is None else min(sa, sb)
        self._root_sig[ra] = merged
        if merged is not None:
            self.buckets.setdefault(merged, set()).add(ra)

    # ------------------------------------------------------------------
    # Ingest-time maintenance
    # ------------------------------------------------------------------
    def add(self, entry: VaultEntry) -> None:
        """Fold one just-stored entry into the partition.

        Replicates :func:`batch_group`'s edges exactly: chain to the
        previous fan-out member / previous SYNC carrier, anchor the
        fan-out's first member against every (process, reason) match —
        past matches now, future matches as they arrive.
        """
        digest = entry.digest
        if digest in self.seq:
            return
        self.seq[digest] = entry.seq
        self._parent[digest] = digest
        self._members[digest] = [digest]
        self._kinds[digest] = set()
        self._min_seq[digest] = entry.seq
        # Bucket state first: the link sections below may union this
        # singleton away immediately, and _union re-keys buckets.
        self.sig[digest] = entry.sig
        self._root_sig[digest] = entry.sig
        if entry.sig is not None:
            self.buckets.setdefault(entry.sig, set()).add(digest)

        self.by_machine.setdefault(entry.machine, []).append(digest)
        self.by_process.setdefault(entry.process, []).append(digest)
        self.by_reason.setdefault(entry.reason, []).append(digest)
        if entry.group:
            self.by_group.setdefault(entry.group, []).append(digest)

        # Link 1a: this entry is a fan-out member.
        if entry.group and entry.initiator:
            key = (entry.group, entry.initiator, entry.initiator_reason)
            prev = self._fanout_prev.get(key)
            if prev is None:
                # First member: it anchors every initiator match.
                self._fanout_anchor[key] = digest
                pair = (entry.initiator, entry.initiator_reason)
                self._anchors_by_pair.setdefault(pair, []).append(digest)
                for match in self._by_proc_reason.get(pair, ()):
                    self._union(digest, match, "group-snap")
            else:
                self._union(prev, digest, "group-snap")
            self._fanout_prev[key] = digest

        # Link 1b: this entry matches an existing fan-out's initiator.
        pair = (entry.process, entry.reason)
        self._by_proc_reason.setdefault(pair, []).append(digest)
        for anchor in self._anchors_by_pair.get(pair, ()):
            if anchor != digest:
                self._union(anchor, digest, "group-snap")

        # Link 2: shared SYNC logical-thread ids.
        for logical_id in entry.sync_ids:
            self.by_sync.setdefault(logical_id, []).append(digest)
            prev = self._sync_prev.get(logical_id)
            if prev is not None:
                self._union(prev, digest, "sync-link")
            self._sync_prev[logical_id] = digest

        self.dirty += 1

    # ------------------------------------------------------------------
    # Queries (O(result), never O(vault))
    # ------------------------------------------------------------------
    def _component(self, root: str) -> IndexedIncident:
        return IndexedIncident(
            digests=sorted(self._members[root], key=self.seq.__getitem__),
            kinds=set(self._kinds[root]),
            min_seq=self._min_seq[root],
            sig=self._root_sig.get(root),
        )

    def component_of(self, digest: str) -> IndexedIncident | None:
        """The full component containing ``digest``, or None."""
        if digest not in self.seq:
            return None
        return self._component(self.find(digest))

    def components(
        self, digests: list[str] | None = None
    ) -> list[IndexedIncident]:
        """Distinct components, ordered by first-ingest seq.

        With ``digests`` given, only components touching those digests
        are materialized — O(matching), not O(vault).
        """
        if digests is None:
            roots = list(self._members)
        else:
            roots = list({self.find(d) for d in digests if d in self.seq})
        roots.sort(key=self._min_seq.__getitem__)
        return [self._component(r) for r in roots]

    # ------------------------------------------------------------------
    # Triage buckets ("top crashers")
    # ------------------------------------------------------------------
    def bucket_components(self, sig: str) -> list[IndexedIncident]:
        """Components bucketed under ``sig``, first-ingest order."""
        roots = sorted(
            self.buckets.get(sig, ()), key=self._min_seq.__getitem__
        )
        return [self._component(r) for r in roots]

    def buckets_ranked(self) -> list[tuple[str, list[IndexedIncident]]]:
        """Every bucket with its components, biggest crasher first.

        Ranked by total member snaps (desc), then first-seen seq, then
        signature — a total order, so listings and reports are stable.
        """
        ranked = [
            (sig, self.bucket_components(sig)) for sig in self.buckets
        ]
        ranked.sort(
            key=lambda item: (
                -sum(len(c.digests) for c in item[1]),
                item[1][0].min_seq,
                item[0],
            )
        )
        return ranked

    def exemplar_digest(self, sig: str) -> str | None:
        """The bucket's exemplar: its earliest signature-carrying snap.

        Kept for a future ``tbtrace replay`` to confirm the bucket's
        diagnosis; a pure function of the partition + member sigs, so
        GC pinning it is deterministic across rebuilds.
        """
        best: str | None = None
        for root in self.buckets.get(sig, ()):
            for digest in self._members[root]:
                if self.sig.get(digest) != sig:
                    continue
                if best is None or self.seq[digest] < self.seq[best]:
                    best = digest
        return best

    def exemplar_digests(self) -> set[str]:
        """One exemplar digest per open bucket (the GC pin set)."""
        out: set[str] = set()
        for sig in self.buckets:
            exemplar = self.exemplar_digest(sig)
            if exemplar is not None:
                out.add(exemplar)
        return out

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @staticmethod
    def checksum(digests) -> str:
        """Order-independent identity of the indexed entry set."""
        joined = "\n".join(sorted(digests)).encode()
        return hashlib.sha256(joined).hexdigest()[:32]

    def to_bytes(self) -> bytes:
        """Canonical serialization: a pure function of the partition.

        Components are keyed by (min seq, first digest) and members
        sorted by seq, so the bytes depend only on *what is grouped
        with what* — not on parent-pointer shapes, path-compression
        history, or arrival interleavings that produce the same
        partition.  That is what makes `rebuild from manifests alone`
        bit-identical.
        """
        components = []
        for inc in self.components():
            components.append(
                {
                    "members": [
                        [self.seq[d], d, self.sig.get(d)]
                        for d in inc.digests
                    ],
                    "kinds": sorted(inc.kinds),
                    "sig": inc.sig,
                }
            )
        # The bucket summary is derivable from the components; it is
        # serialized anyway so the triage state is inspectable in the
        # checkpoint, and it stays canonical because both the signature
        # keys and the counts are pure functions of the partition.
        buckets = {
            sig: sum(len(self._members[r]) for r in roots)
            for sig, roots in self.buckets.items()
        }
        doc = {
            "schema": SCHEMA,
            "window": self.window,
            "entries": len(self.seq),
            "checksum": self.checksum(self.seq),
            "buckets": buckets,
            "components": components,
        }
        return (json.dumps(doc, sort_keys=True) + "\n").encode()

    def persist(self, root_dir: str) -> str:
        """Checkpoint to ``<vault>/incidents.idx`` atomically."""
        path = os.path.join(root_dir, INDEX_FILE)
        write_atomic(self.to_bytes(), path)
        self.dirty = 0
        return path

    # ------------------------------------------------------------------
    # Load / rebuild
    # ------------------------------------------------------------------
    @classmethod
    def rebuild(
        cls, entries: list[VaultEntry], window: int | None = None
    ) -> "IncidentIndex":
        """Replay manifest entries (seq order) into a fresh index."""
        index = cls(window=window)
        for entry in sorted(entries, key=lambda e: e.seq):
            index.add(entry)
        return index

    @classmethod
    def load(
        cls,
        root_dir: str,
        entries: list[VaultEntry],
        window: int | None = None,
    ) -> tuple["IncidentIndex", str]:
        """Open the persisted index against the vault's live entries.

        Returns ``(index, how)`` where ``how`` is one of:

        * ``"loaded"`` — checkpoint covers exactly the manifest set;
        * ``"caught-up"`` — checkpoint was a strict prefix (ingest ran
          past the last flush, or a kill landed between a manifest
          append and the checkpoint); the missing entries, all newer
          than the checkpoint, were replayed on top;
        * ``"rebuilt"`` — no checkpoint, a torn/garbled one, a window
          mismatch, or a checkpoint that disagrees with the manifests
          (e.g. after `rebuild_index()` reassigned seqs): replayed from
          the manifests alone.

        Every path ends in the same state the incremental maintenance
        would have produced — the checkpoint is an accelerator, never
        an authority the manifests cannot overrule.
        """
        entries = sorted(entries, key=lambda e: e.seq)
        path = os.path.join(root_dir, INDEX_FILE)
        doc = None
        try:
            with open(path, "rb") as fh:
                doc = json.loads(fh.read())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            doc = None
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != SCHEMA
            or doc.get("window", "missing") != window
            or not isinstance(doc.get("components"), list)
        ):
            return cls.rebuild(entries, window=window), "rebuilt"

        by_digest = {e.digest: e for e in entries}
        idx_digests: set[str] = set()
        max_idx_seq = -1
        consistent = True
        for component in doc["components"]:
            for item in component.get("members", ()):
                if not (isinstance(item, list) and len(item) == 3):
                    consistent = False
                    break
                seq, digest, sig = item
                entry = by_digest.get(digest)
                if entry is None or entry.seq != seq or entry.sig != sig:
                    # A sig mismatch means the checkpoint predates a
                    # re-mining (e.g. mapfiles changed before a
                    # rebuild_index); the manifests win.
                    consistent = False
                    break
                idx_digests.add(digest)
                max_idx_seq = max(max_idx_seq, seq)
            if not consistent:
                break
        if not consistent or doc.get("checksum") != cls.checksum(idx_digests):
            return cls.rebuild(entries, window=window), "rebuilt"
        missing = [e for e in entries if e.digest not in idx_digests]
        if any(e.seq <= max_idx_seq for e in missing):
            # The checkpoint is not a clean prefix of the manifests;
            # replay order would diverge.  Manifests win.
            return cls.rebuild(entries, window=window), "rebuilt"

        index = cls(window=window)
        # Rebuild chain + secondary state by scanning the covered
        # entries in seq order (no unions — the partition is adopted
        # from the checkpoint below, so this is a cheap linear pass).
        for entry in entries:
            if entry.digest not in idx_digests:
                continue
            digest = entry.digest
            index.seq[digest] = entry.seq
            index.sig[digest] = entry.sig
            index.by_machine.setdefault(entry.machine, []).append(digest)
            index.by_process.setdefault(entry.process, []).append(digest)
            index.by_reason.setdefault(entry.reason, []).append(digest)
            if entry.group:
                index.by_group.setdefault(entry.group, []).append(digest)
            if entry.group and entry.initiator:
                key = (entry.group, entry.initiator, entry.initiator_reason)
                if key not in index._fanout_anchor:
                    index._fanout_anchor[key] = digest
                    pair = (entry.initiator, entry.initiator_reason)
                    index._anchors_by_pair.setdefault(pair, []).append(digest)
                index._fanout_prev[key] = digest
            pair = (entry.process, entry.reason)
            index._by_proc_reason.setdefault(pair, []).append(digest)
            for logical_id in entry.sync_ids:
                index.by_sync.setdefault(logical_id, []).append(digest)
                index._sync_prev[logical_id] = digest
        # Adopt the partition: flat parents under a canonical root.
        for component in doc["components"]:
            members = [d for _seq, d, _sig in component["members"]]
            root = members[0]
            for digest in members:
                index._parent[digest] = root
            index._members[root] = list(members)
            index._kinds[root] = set(component.get("kinds", ()))
            index._min_seq[root] = min(index.seq[d] for d in members)
            root_sig = component.get("sig")
            index._root_sig[root] = root_sig
            if root_sig is not None:
                index.buckets.setdefault(root_sig, set()).add(root)
        if not missing:
            return index, "loaded"
        for entry in missing:
            index.add(entry)
        return index, "caught-up"
