"""Federated scatter-gather queries over N regional vaults.

One fleet, many vaults: each region's collectors drain into their own
:class:`~repro.fleet.store.SnapVault`, so a distributed incident's
evidence is split across stores that share no manifest.  This module
asks all of them and merges what comes back:

* :class:`FederatedQuery` scatters one query across N
  :class:`~repro.fleet.remote.RemoteVaultClient`\\ s with a per-vault
  cycle budget, gathers the pages each vault managed to serve, and
  **never raises on a lost vault** — degradation is data, not an
  exception, exactly the stance salvage reconstruction established;
* incident partitions merge by re-running the union-find link rules
  over the union of fetched entries.  Every rule (group-snap fan-outs,
  initiator matching, shared SYNC logical ids) is a pure function of
  entry metadata, so within-vault edges are rediscovered and
  cross-vault edges — the SYNC ids that already cross machines —
  appear exactly as they would had every snap landed in one merged
  vault;
* triage buckets merge under min-signature union over the merged
  incidents, the same bucket key rule the incident index maintains;
* every answer carries a :class:`FederationReport` whose **coverage
  ladder** mirrors the salvage degradation ladder: ``full`` (every
  vault answered completely) → ``partial`` (at least one vault
  answered; the report names each vault that timed out, failed, or
  returned truncated pages) → ``degraded`` (no vault answered at all).

Because vault-relative fields (ingest seq, shard) do not survive
federation, merged results are exposed in a canonical, vault-free form
(:func:`canonical_incidents` / :func:`canonical_buckets` /
:func:`canonical_entries`).  With zero chaos, those documents are
byte-identical to the same canonicalization of a single merged-vault
:class:`~repro.fleet.query.VaultQuery` — the fuzz sweep's oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.index import batch_group
from repro.fleet.metrics import FleetMetrics
from repro.fleet.query import Incident
from repro.fleet.remote import (
    RemoteQueryError,
    RemoteVaultClient,
    VaultTimeout,
    VaultUnavailable,
)
from repro.fleet.store import VaultEntry
from repro.reconstruct.signature import signature_key

#: The coverage ladder, best to worst.
COVERAGE_FULL = "full"
COVERAGE_PARTIAL = "partial"
COVERAGE_DEGRADED = "degraded"


@dataclass
class VaultStatus:
    """One vault's standing in a federated answer."""

    name: str
    #: "ok" | "truncated" | "timeout" | "unavailable" | "error"
    status: str
    detail: str = ""
    #: Items this vault contributed (0 for a lost vault).
    items: int = 0

    @property
    def degraded(self) -> bool:
        return self.status != "ok"

    @property
    def answered(self) -> bool:
        """The vault served at least a complete or truncated reply."""
        return self.status in ("ok", "truncated")

    def describe(self) -> str:
        line = f"vault {self.name}: {self.status}, {self.items} item(s)"
        if self.detail:
            line += f" ({self.detail})"
        return line

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "items": self.items,
        }


@dataclass
class FederationReport:
    """Coverage of one federated query: the ladder plus per-vault detail."""

    coverage: str
    vaults: list[VaultStatus] = field(default_factory=list)

    def degraded_vaults(self) -> list[str]:
        """Names of every vault that timed out, failed, or truncated."""
        return [v.name for v in self.vaults if v.degraded]

    def describe(self) -> list[str]:
        lines = [f"federation coverage: {self.coverage}"]
        lines.extend(f"  {status.describe()}" for status in self.vaults)
        return lines

    def to_dict(self) -> dict:
        return {
            "coverage": self.coverage,
            "degraded": self.degraded_vaults(),
            "vaults": [v.to_dict() for v in self.vaults],
        }


def _coverage(statuses: list[VaultStatus]) -> str:
    if statuses and all(v.status == "ok" for v in statuses):
        return COVERAGE_FULL
    if any(v.answered for v in statuses):
        return COVERAGE_PARTIAL
    return COVERAGE_DEGRADED


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def _dedupe_entries(per_vault: dict[str, list[VaultEntry]]) -> list[VaultEntry]:
    """The union of per-vault entries, one per content digest.

    Content digests are vault-independent (sha256 of the snap's
    canonical form), so the same snap uploaded to two regions
    collapses to one entry; vault-relative metadata (seq, shard) is
    taken from whichever vault answered first.
    """
    merged: dict[str, VaultEntry] = {}
    for entries in per_vault.values():
        for entry in entries:
            merged.setdefault(entry.digest, entry)
    return sorted(merged.values(), key=lambda e: e.digest)


def merge_incidents(entries: list[VaultEntry]) -> list[Incident]:
    """Merge per-vault partitions: union-find over the entry union.

    Seqs from different vaults collide, so the unbounded (window=None)
    grouper is the only correct one here; ordering is canonicalized by
    digest instead of seq.
    """
    ordered = sorted(entries, key=lambda e: e.digest)
    clusters, kinds = batch_group(ordered, None)
    incidents = []
    for position, members in enumerate(clusters):
        incidents.append(
            Incident(
                incident_id=position,
                entries=sorted(
                    (ordered[m] for m in members), key=lambda e: e.digest
                ),
                links=kinds[position],
            )
        )
    incidents.sort(key=lambda inc: inc.entries[0].digest)
    for position, incident in enumerate(incidents):
        incident.incident_id = position
    return incidents


def merge_buckets(
    incidents: list[Incident], limit: int | None = None
) -> list[dict]:
    """Triage buckets under min-signature union over merged incidents.

    The bucket key is the minimum member signature — the same
    order-free rule the incident index applies per vault, so two
    vaults' buckets for one fault land in one federated bucket.
    Vault-relative seqs don't survive federation: there are no
    first/last seq fields, and the exemplar is the smallest
    signature-carrying digest (canonical, not earliest-ingest).
    """
    grouped: dict[str, list[Incident]] = {}
    for incident in incidents:
        sigs = sorted(e.sig for e in incident.entries if e.sig is not None)
        if not sigs:
            continue
        grouped.setdefault(sigs[0], []).append(incident)
    buckets = []
    for sig, members in grouped.items():
        entries = [e for inc in members for e in inc.entries]
        buckets.append(
            {
                "key": signature_key(sig),
                "sig": sig,
                "count": len(entries),
                "incidents": len(members),
                "machines": sorted({e.machine for e in entries}),
                "processes": sorted({e.process for e in entries}),
                "exemplar": min(
                    e.digest for e in entries if e.sig is not None
                ),
            }
        )
    buckets.sort(key=lambda b: (-b["count"], b["sig"]))
    if limit is not None:
        buckets = buckets[:limit]
    return buckets


# ----------------------------------------------------------------------
# Canonical (vault-free) document forms — the bit-identity oracle
# ----------------------------------------------------------------------
def canonical_entries(entries: list[VaultEntry]) -> list[dict]:
    """Entry docs stripped of vault-relative fields, digest-ordered."""
    docs = []
    for entry in sorted(entries, key=lambda e: e.digest):
        doc = entry.to_dict()
        doc.pop("seq")
        doc.pop("shard")
        docs.append(doc)
    return docs


def canonical_incidents(incidents: list[Incident]) -> list[dict]:
    """Incident docs with positional ids and digest ordering only.

    ``Incident.to_dict`` reports the *first* entry's initiator, which
    depends on entry order (ingest seq locally, digest here); when two
    fan-outs merged through a SYNC link that pick is ambiguous, so the
    canonical form takes the lexicographic minimum instead.
    """
    docs = []
    for incident in incidents:
        doc = incident.to_dict()
        doc["entries"] = sorted(doc["entries"])
        initiators = sorted(
            {e.initiator for e in incident.entries if e.initiator}
        )
        doc["initiator"] = initiators[0] if initiators else None
        docs.append(doc)
    docs.sort(key=lambda d: d["entries"][0] if d["entries"] else "")
    for position, doc in enumerate(docs):
        doc["incident_id"] = position
    return docs


def canonical_buckets(buckets: list) -> list[dict]:
    """Bucket docs without seq/exemplar fields, rank-ordered.

    Accepts :class:`~repro.fleet.triage.CrashBucket` objects or the
    dicts :func:`merge_buckets` builds, so a local ``VaultQuery.top``
    and a federated ``top`` canonicalize through the same door.
    """
    docs = []
    for bucket in buckets:
        doc = bucket.to_dict() if hasattr(bucket, "to_dict") else dict(bucket)
        docs.append(
            {
                "key": doc["key"],
                "sig": doc["sig"],
                "count": doc["count"],
                "incidents": doc["incidents"],
                "machines": doc["machines"],
                "processes": doc["processes"],
            }
        )
    docs.sort(key=lambda d: (-d["count"], d["sig"]))
    return docs


# ----------------------------------------------------------------------
# The scatter-gather engine
# ----------------------------------------------------------------------
class FederatedQuery:
    """Fan one query out to N vaults; merge; degrade instead of erroring.

    ``clients`` maps vault name → :class:`RemoteVaultClient`; scatter
    order is the mapping order.  ``timeout`` is the per-vault cycle
    budget for pagination (each client's own ``deadline`` bounds the
    individual wire exchanges beneath it).  Every public method returns
    ``(results, FederationReport)`` and is total: a lost vault becomes
    a named rung on the coverage ladder, never an exception.
    """

    def __init__(
        self,
        clients: dict[str, RemoteVaultClient],
        timeout: int = 200_000,
        metrics: FleetMetrics | None = None,
    ):
        self.clients = dict(clients)
        self.timeout = timeout
        self.metrics = metrics or FleetMetrics()

    # ------------------------------------------------------------------
    def _scatter(self, fetch) -> tuple[dict[str, list], FederationReport]:
        """Run ``fetch(client)`` per vault; losses become statuses."""
        self.metrics.bump(federated_queries=1)
        gathered: dict[str, list] = {}
        statuses: list[VaultStatus] = []
        for name, client in self.clients.items():
            try:
                items, truncated = fetch(client)
            except VaultTimeout as exc:
                statuses.append(VaultStatus(name, "timeout", str(exc)))
                self.metrics.bump(federated_vault_losses=1)
                continue
            except VaultUnavailable as exc:
                statuses.append(VaultStatus(name, "unavailable", str(exc)))
                self.metrics.bump(federated_vault_losses=1)
                continue
            except RemoteQueryError as exc:
                statuses.append(VaultStatus(name, "error", str(exc)))
                self.metrics.bump(federated_vault_losses=1)
                continue
            gathered[name] = items
            if truncated:
                statuses.append(
                    VaultStatus(
                        name,
                        "truncated",
                        f"pagination budget exhausted after "
                        f"{len(items)} item(s)",
                        items=len(items),
                    )
                )
            else:
                statuses.append(VaultStatus(name, "ok", items=len(items)))
        return gathered, FederationReport(
            coverage=_coverage(statuses), vaults=statuses
        )

    # ------------------------------------------------------------------
    def select(self, **filters) -> tuple[list[VaultEntry], FederationReport]:
        """The union of matching entries, digest-ordered and deduped."""
        gathered, report = self._scatter(
            lambda client: client.select(
                budget=self.timeout, partial=True, **filters
            )
        )
        return _dedupe_entries(gathered), report

    def incidents(self, **filters) -> tuple[list[Incident], FederationReport]:
        """The federation-wide incident partition over reachable vaults.

        Filters keep per-vault semantics (the whole incident touching a
        match, bystanders included); members of a cross-vault incident
        whose *only* matching snaps live in a lost vault are part of
        the coverage loss the report names.
        """
        gathered, report = self._scatter(
            lambda client: client.incidents(
                budget=self.timeout, partial=True, **filters
            )
        )
        per_vault = {
            name: [e for incident in incidents for e in incident.entries]
            for name, incidents in gathered.items()
        }
        return merge_incidents(_dedupe_entries(per_vault)), report

    def top(
        self, limit: int | None = None
    ) -> tuple[list[dict], FederationReport]:
        """Fleet-wide top crashers under min-signature union."""
        incidents, report = self.incidents()
        return merge_buckets(incidents, limit=limit), report
