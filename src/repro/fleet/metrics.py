"""Fleet counters: what the vault ingested, deduped, retried, stores.

One :class:`FleetMetrics` instance is shared by a vault and the
collector(s) feeding it, so a single render answers the operational
questions §3.6.2 cares about ("useless snaps cost runtime, disk, and
attention"): how much evidence arrived, how much was duplicate, how
hard the uplink had to fight, and how big the store got.

With the parallel ingest pipeline several collector threads share one
metrics object, so shared counters go through :meth:`FleetMetrics.bump`
(a small lock) instead of bare ``+=``.  The vault's own counters are
already serialized under the vault's index lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class FleetMetrics:
    """Ingest / dedupe / retry / store-size counters."""

    # -- collector uplink ----------------------------------------------
    submitted: int = 0  # snaps handed to a collector
    batches: int = 0  # upload batches flushed
    uploads: int = 0  # upload attempts that reached the vault
    drops: int = 0  # attempts lost in transit (chaos)
    retries: int = 0  # re-queued after a drop
    dead_letters: int = 0  # transitions into the dead-letter list
    dead_requeued: int = 0  # transitions back out (requeue_dead admissions)
    close_dead_letters: int = 0  # dead-lettered by close() instead of dropped
    evicted: int = 0  # pushed out of a full queue
    backpressure_flushes: int = 0  # inline flushes forced by a full queue
    queue_peak: int = 0  # high-water mark of the bounded queue
    backoff_cycles: int = 0  # seeded-backoff delay charged, total

    # -- vault ---------------------------------------------------------
    ingested: int = 0  # snaps durably stored
    dedupe_hits: int = 0  # content-hash duplicates skipped
    early_dedupe_hits: int = 0  # duplicates caught before compression
    manifest_heals: int = 0  # orphan blobs re-registered in a manifest
    bytes_written: int = 0  # compressed container bytes on disk
    manifest_lines: int = 0  # manifest records appended
    manifest_batches: int = 0  # shard manifest flushes (batched appends)
    group_commits: int = 0  # batch-durability sync points
    sync_coalesced: int = 0  # batches made durable by another's sync
    index_rebuilds: int = 0
    signatures_mined: int = 0  # stored snaps that yielded a crash signature

    # -- retention / compaction (the GC pass) ---------------------------
    compactions: int = 0  # compact() passes that ran to completion
    entries_compacted: int = 0  # manifest entries removed by compaction
    blobs_deleted: int = 0  # TBSZ2 blobs unlinked by compaction
    reclaimed_bytes: int = 0  # compressed bytes freed by compaction
    pins_honored: int = 0  # expired entries kept by a pin rule
    tombstones_written: int = 0  # dead-entry markers appended to manifests
    gc_redo_deletes: int = 0  # interrupted deletions finished at open

    # -- incident index ------------------------------------------------
    index_persists: int = 0  # incidents.idx checkpoints written
    index_loads: int = 0  # incidents.idx adopted as-is at open
    index_catchups: int = 0  # entries replayed on top of a checkpoint
    incident_lookups: int = 0  # O(result) indexed incident queries

    # -- query engine --------------------------------------------------
    queries: int = 0
    entries_scanned: int = 0
    reconstructions: int = 0
    incidents_built: int = 0

    # -- triage ("top crashers") ----------------------------------------
    top_queries: int = 0  # ranked-bucket listings served
    reports_rendered: int = 0  # triage reports built (text/JSON/HTML)

    # -- remote query / federation --------------------------------------
    remote_requests: int = 0  # protocol exchanges started (incl. retries)
    remote_retries: int = 0  # attempts repeated after a lost exchange
    remote_timeouts: int = 0  # requests that exhausted deadline/retries
    remote_pages: int = 0  # response pages fetched
    remote_blob_fetches: int = 0  # TBSZ2 blobs pulled (CRC-checked)
    remote_backoff_cycles: int = 0  # retry delay charged, total
    federated_queries: int = 0  # scatter-gather fan-outs served
    federated_vault_losses: int = 0  # vaults a federated query lost

    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Plain attribute (not a dataclass field): excluded from
        # to_dict/vars-based rendering by the underscore convention.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def bump(self, **counters: int) -> None:
        """Atomically increment counters shared across threads."""
        with self._lock:
            for name, delta in counters.items():
                setattr(self, name, getattr(self, name) + delta)

    def bump_peak(self, name: str, value: int) -> None:
        """Atomically raise a high-water-mark counter to ``value``."""
        with self._lock:
            if value > getattr(self, name):
                setattr(self, name, value)

    # ------------------------------------------------------------------
    @property
    def dedupe_rate(self) -> float:
        """Fraction of arriving snaps that were duplicates."""
        seen = self.ingested + self.dedupe_hits
        return self.dedupe_hits / seen if seen else 0.0

    def to_dict(self) -> dict:
        d = {
            k: v
            for k, v in vars(self).items()
            if k != "extra" and not k.startswith("_")
        }
        d["dedupe_rate"] = round(self.dedupe_rate, 4)
        d.update(self.extra)
        return d

    def render(self) -> str:
        """Multi-line operator summary (the CLI's metrics block)."""
        lines = ["fleet metrics:"]
        lines.append(
            f"  uplink: {self.submitted} submitted, {self.batches} batches, "
            f"{self.uploads} uploaded, {self.drops} dropped in transit, "
            f"{self.retries} retried, {self.dead_letters} dead-lettered"
        )
        lines.append(
            f"  queue: peak {self.queue_peak}, {self.evicted} evicted, "
            f"{self.backpressure_flushes} back-pressure flushes, "
            f"{self.backoff_cycles} backoff cycles"
        )
        lines.append(
            f"  vault: {self.ingested} stored, {self.dedupe_hits} deduped "
            f"({self.dedupe_rate:.0%}, {self.early_dedupe_hits} early), "
            f"{self.manifest_heals} healed, {self.bytes_written} bytes, "
            f"{self.index_rebuilds} index rebuilds"
        )
        lines.append(
            f"  gc: {self.compactions} compactions, "
            f"{self.entries_compacted} entries compacted, "
            f"{self.blobs_deleted} blobs deleted, "
            f"{self.reclaimed_bytes} bytes reclaimed, "
            f"{self.pins_honored} pins honored"
        )
        lines.append(
            f"  incident index: {self.index_persists} persists, "
            f"{self.index_loads} loads, {self.index_catchups} catch-up "
            f"entries, {self.incident_lookups} indexed lookups"
        )
        lines.append(
            f"  query: {self.queries} queries, {self.entries_scanned} entries "
            f"scanned, {self.reconstructions} reconstructions, "
            f"{self.incidents_built} incidents"
        )
        lines.append(
            f"  triage: {self.signatures_mined} signatures mined, "
            f"{self.top_queries} top queries, "
            f"{self.reports_rendered} reports"
        )
        lines.append(
            f"  remote: {self.remote_requests} requests, "
            f"{self.remote_pages} pages, {self.remote_retries} retried, "
            f"{self.remote_timeouts} timed out, "
            f"{self.remote_blob_fetches} blobs fetched; "
            f"federation: {self.federated_queries} queries, "
            f"{self.federated_vault_losses} vault losses"
        )
        return "\n".join(lines)
