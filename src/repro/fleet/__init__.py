"""``repro.fleet`` — the fleet snap vault (§3.6.1, §3.7.5 deployment).

Five layers turn per-session snaps into durable, queryable evidence:

* :mod:`repro.fleet.store` — sharded on-disk vault of TBSZ2 archives
  (content-hash dedupe, atomic writes, JSON-lines manifests, a
  rebuildable machine/process/reason/timestamp index); concurrent
  multi-collector ingest under shard-level single-writer locks, with
  the CPU-heavy per-snap work factored into :func:`prepare_snap` for
  worker pools;
* :mod:`repro.fleet.collector` — the uplink service processes forward
  snaps through (batching, bounded queue with back-pressure, seeded
  retry-with-backoff over the simulated network, pipelined
  preparation overlapping transfer);
* :mod:`repro.fleet.index` — the persisted, incrementally-maintained
  incident index (``incidents.idx``): correlation moves to ingest
  time, queries read a precomputed partition;
* :mod:`repro.fleet.query` — filters, lazy reconstruction, and
  incident grouping (group-snap fan-outs and SYNC-linked snaps),
  O(result) through the index;
* :mod:`repro.fleet.metrics` — the ingest/dedupe/retry/store counters
  the CLI surfaces;
* :mod:`repro.fleet.retention` — declarative retention policies and
  compaction planning: ``tbtrace gc`` prints the plan,
  :meth:`SnapVault.compact` applies it crash-safely (tombstone commit
  points, redo-at-open, pins for open incidents, dead letters, and
  triage-bucket exemplars);
* :mod:`repro.fleet.triage` — crash-signature triage: ranked "top
  crashers" buckets mined from reconstructed evidence, the
  ``tbtrace top`` / ``tbtrace report`` views, and the pairwise
  precision/recall metric the chaos ground-truth harness scores the
  signature function with;
* :mod:`repro.fleet.remote` — the versioned vault query protocol
  (CRC-framed, paginated) and the :class:`RemoteVaultClient` that
  mirrors ``VaultQuery`` over the simulated network with per-request
  deadlines and seeded retry-with-backoff;
* :mod:`repro.fleet.federation` — scatter-gather over N regional
  vaults with per-vault timeouts: incident partitions merge across
  vaults through their SYNC links, triage buckets merge under
  min-signature union, and every answer carries a
  :class:`FederationReport` coverage ladder (full → partial →
  degraded) instead of erroring on a lost vault.
"""

from repro.fleet.collector import Collector, PendingUpload, backoff_with_jitter
from repro.fleet.federation import (
    FederatedQuery,
    FederationReport,
    VaultStatus,
    canonical_buckets,
    canonical_entries,
    canonical_incidents,
)
from repro.fleet.index import IncidentIndex, batch_group
from repro.fleet.metrics import FleetMetrics
from repro.fleet.query import Incident, VaultQuery
from repro.fleet.remote import (
    ProtocolError,
    RemoteQueryError,
    RemoteVaultClient,
    VaultService,
    VaultTimeout,
    VaultUnavailable,
)
from repro.fleet.retention import (
    CompactionPlan,
    RetentionError,
    RetentionPolicy,
    plan_compaction,
)
from repro.fleet.triage import (
    CrashBucket,
    build_report,
    pairwise_scores,
    render_report_html,
    render_report_text,
    top_buckets,
)
from repro.fleet.store import (
    PreparedSnap,
    SnapVault,
    StoreResult,
    VaultEntry,
    VaultError,
    content_digest,
    mine_sync_ids,
    prepare_snap,
)

__all__ = [
    "Collector",
    "CompactionPlan",
    "CrashBucket",
    "FederatedQuery",
    "FederationReport",
    "FleetMetrics",
    "Incident",
    "IncidentIndex",
    "PendingUpload",
    "PreparedSnap",
    "ProtocolError",
    "RemoteQueryError",
    "RemoteVaultClient",
    "RetentionError",
    "RetentionPolicy",
    "SnapVault",
    "StoreResult",
    "VaultEntry",
    "VaultError",
    "VaultQuery",
    "VaultService",
    "VaultStatus",
    "VaultTimeout",
    "VaultUnavailable",
    "backoff_with_jitter",
    "batch_group",
    "build_report",
    "canonical_buckets",
    "canonical_entries",
    "canonical_incidents",
    "content_digest",
    "mine_sync_ids",
    "pairwise_scores",
    "plan_compaction",
    "prepare_snap",
    "render_report_html",
    "render_report_text",
    "top_buckets",
]
