"""``repro.fleet`` — the fleet snap vault (§3.6.1, §3.7.5 deployment).

Four layers turn per-session snaps into durable, queryable evidence:

* :mod:`repro.fleet.store` — sharded on-disk vault of TBSZ2 archives
  (content-hash dedupe, atomic writes, JSON-lines manifests, a
  rebuildable machine/process/reason/timestamp index);
* :mod:`repro.fleet.collector` — the uplink service processes forward
  snaps through (batching, bounded queue with back-pressure, seeded
  retry-with-backoff over the simulated network);
* :mod:`repro.fleet.query` — filters, lazy reconstruction, and
  incident grouping (group-snap fan-outs and SYNC-linked snaps);
* :mod:`repro.fleet.metrics` — the ingest/dedupe/retry/store counters
  the CLI surfaces.
"""

from repro.fleet.collector import Collector, PendingUpload
from repro.fleet.metrics import FleetMetrics
from repro.fleet.query import Incident, VaultQuery
from repro.fleet.store import (
    SnapVault,
    StoreResult,
    VaultEntry,
    VaultError,
    content_digest,
    mine_sync_ids,
)

__all__ = [
    "Collector",
    "FleetMetrics",
    "Incident",
    "PendingUpload",
    "SnapVault",
    "StoreResult",
    "VaultEntry",
    "VaultError",
    "VaultQuery",
    "content_digest",
    "mine_sync_ids",
]
