"""Remote vault queries over the simulated network (§6's support view).

TraceBack's premise is that a support engineer diagnoses a first fault
from evidence captured at a customer site — which at fleet scale means
the evidence lives in regional snap vaults the engineer cannot copy
locally.  This module is the wire between them:

* :class:`VaultService` — one vault's query server.  It speaks a small
  versioned request/response protocol (``hello`` / ``select`` /
  ``incidents`` / ``top`` / ``fetch_blob`` / ``fetch_mapfile``) whose
  frames are JSON with a body CRC, so damage in transit is *detected*,
  never silently served.  List responses are paginated at a
  server-side ``page_limit`` — one huge vault can never wedge a query
  behind an unbounded reply.  Manifest entries travel as metadata;
  TBSZ2 blobs are fetched lazily, one digest at a time, and CRC-checked
  again on arrival.
* :class:`RemoteVaultClient` — mirrors the
  :class:`~repro.fleet.query.VaultQuery` surface over that protocol,
  with a per-attempt cycle deadline and bounded seeded
  retry-with-backoff (the collector's backoff discipline,
  :func:`~repro.fleet.collector.backoff_with_jitter`).  All waiting is
  accounted in *simulated* cycles, so a query is bounded by
  construction: it returns, or raises :class:`VaultTimeout` /
  :class:`VaultUnavailable`, in at most ``(max_retries + 1)`` attempts
  — it can never hang a test or an engineer.

Transport rides the :class:`~repro.distributed.network.Network` at the
host level (like collector uploads): wire latency is charged to the
caller's machine, and the ``Network.query_chaos`` hook injects the
four transit faults the chaos suite sweeps (drop /
delay-past-deadline / corrupt-response / kill-server-mid-stream).  A
server bound to a machine whose guest threads never quiesced — a
deadlocked or runaway vault host — is *wedged*: it answers nothing,
and the client times out instead of blocking.
"""

from __future__ import annotations

import json
import random
import zlib
from typing import TYPE_CHECKING

from repro.fleet.collector import backoff_with_jitter
from repro.fleet.metrics import FleetMetrics
from repro.fleet.query import Incident, VaultQuery
from repro.fleet.store import SnapVault, VaultEntry
from repro.fleet.triage import CrashBucket
from repro.instrument.mapfile import Mapfile
from repro.reconstruct import DistributedTrace, ProcessTrace, Reconstructor
from repro.runtime.archive import decompress_snap, salvage_decompress
from repro.runtime.snap import SnapFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.network import Network
    from repro.vm.machine import Machine

#: Protocol version string; both sides check it on every exchange.
PROTOCOL = "tb-vault-query/1"

#: Default server-side page bound for list responses.
DEFAULT_PAGE_LIMIT = 64


class RemoteQueryError(Exception):
    """Base class for remote vault query failures."""


class VaultTimeout(RemoteQueryError):
    """The request exhausted its deadline/retry budget without a reply."""


class VaultUnavailable(RemoteQueryError):
    """No live server is registered under the requested service id."""


class ProtocolError(RemoteQueryError):
    """A frame failed its integrity or protocol checks."""


# ----------------------------------------------------------------------
# Wire frames: JSON with a body CRC
# ----------------------------------------------------------------------
def encode_frame(body: dict) -> bytes:
    """Serialize one protocol frame: canonical JSON body + CRC32."""
    payload = json.dumps(body, sort_keys=True)
    return json.dumps(
        {"crc": zlib.crc32(payload.encode()), "body": payload}
    ).encode()


def decode_frame(data: bytes) -> dict:
    """Parse and integrity-check one frame; raises :class:`ProtocolError`."""
    try:
        outer = json.loads(data.decode())
        payload = outer["body"]
        crc = outer["crc"]
    except Exception as exc:  # noqa: BLE001 — any parse damage is one error
        raise ProtocolError(f"frame unparseable: {exc}") from None
    if not isinstance(payload, str) or zlib.crc32(payload.encode()) != crc:
        raise ProtocolError("frame body failed CRC check")
    return json.loads(payload)


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------
class VaultService:
    """One vault's query server: decodes frames, serves bounded pages.

    ``machine`` optionally binds the server to the simulated machine
    hosting it; a server whose machine still has live guest threads
    after a run (``Network.run()`` ended ``"stalled"`` or ``"limit"``)
    is wedged and answers nothing — the client's deadline converts that
    into a timed-out vault rather than a hung query.
    """

    def __init__(
        self,
        vault: SnapVault,
        name: str = "vault",
        page_limit: int = DEFAULT_PAGE_LIMIT,
        machine: "Machine | None" = None,
        served_by=None,
    ):
        self.vault = vault
        self.query = VaultQuery(vault)
        self.name = name
        self.page_limit = max(1, page_limit)
        self.machine = machine
        #: The ServiceProcess hosting this server, when one does.
        self.served_by = served_by
        self.alive = True
        self.requests_served = 0

    def kill(self) -> None:
        """The server process dies (chaos: ``"kill-server"``)."""
        self.alive = False

    def wedged(self) -> bool:
        """True when the serving machine cannot answer queries.

        A machine with live guest threads after its run never reached
        quiescence — a deadlock ("stalled") or a runaway loop that blew
        the cycle budget ("limit").  Either way the host serving the
        vault is not answering the wire.
        """
        if not self.alive:
            return True
        if self.machine is None:
            return False
        return bool(self.machine._live_threads())

    # ------------------------------------------------------------------
    def handle_wire(self, data: bytes) -> bytes:
        """One request frame in, one response frame out.  Never raises."""
        try:
            request = decode_frame(data)
        except ProtocolError as exc:
            return encode_frame({"ok": False, "error": str(exc)})
        return encode_frame(self.handle(request))

    def handle(self, request: dict) -> dict:
        """Serve one decoded request; errors become error responses."""
        self.requests_served += 1
        proto = request.get("proto")
        if proto != PROTOCOL:
            return {
                "ok": False,
                "error": f"protocol mismatch: got {proto!r}, "
                f"serving {PROTOCOL!r}",
            }
        op = str(request.get("op") or "")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None or not op or op.startswith("_"):
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            result = handler(request.get("args") or {})
        except RemoteQueryError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — a bad arg is the
            # client's error report, not a server crash
            return {"ok": False, "error": f"{op} failed: {exc}"}
        return {"ok": True, "result": result}

    # -- ops ------------------------------------------------------------
    def _page(self, items: list, offset) -> tuple[list, dict]:
        offset = max(0, int(offset or 0))
        page = items[offset : offset + self.page_limit]
        end = offset + len(page)
        return page, {
            "total": len(items),
            "next": end if end < len(items) else None,
        }

    def _op_hello(self, args: dict) -> dict:
        return {
            "proto": PROTOCOL,
            "service": self.name,
            "snaps": len(self.vault),
            "machines": self.vault.machines(),
            "page_limit": self.page_limit,
        }

    def _op_select(self, args: dict) -> dict:
        filters = {
            k: args[k]
            for k in ("machine", "process", "reason", "since", "until", "group")
            if args.get(k) is not None
        }
        entries = self.query.select(**filters)
        page, meta = self._page(entries, args.get("offset"))
        return {"entries": [e.to_dict() for e in page], **meta}

    def _op_incidents(self, args: dict) -> dict:
        filters = {
            k: args[k]
            for k in ("machine", "process", "reason", "group", "sync_id")
            if args.get(k) is not None
        }
        incidents = self.query.incidents(**filters)
        page, meta = self._page(incidents, args.get("offset"))
        return {
            "incidents": [
                {
                    "incident": incident.to_dict(),
                    "entries": [e.to_dict() for e in incident.entries],
                }
                for incident in page
            ],
            **meta,
        }

    def _op_top(self, args: dict) -> dict:
        buckets = self.query.top(limit=args.get("limit"))
        page, meta = self._page(buckets, args.get("offset"))
        return {"buckets": [b.to_dict() for b in page], **meta}

    def _op_fetch_blob(self, args: dict) -> dict:
        digest = args.get("digest")
        if not isinstance(digest, str) or not self.vault.contains(digest):
            raise RemoteQueryError(f"no stored blob {digest!r}")
        with open(self.vault.blob_path(digest), "rb") as fh:
            data = fh.read()
        return {"digest": digest, "blob": data.hex(), "crc": zlib.crc32(data)}

    def _op_fetch_mapfile(self, args: dict) -> dict:
        checksum = args.get("checksum")
        mapfiles = {m.checksum: m for m in self.vault.mapfiles()}
        if checksum is None:
            return {"checksums": sorted(mapfiles)}
        if checksum not in mapfiles:
            raise RemoteQueryError(f"no stored mapfile {checksum!r}")
        return {"mapfile": mapfiles[checksum].to_dict()}


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class RemoteVaultClient:
    """The :class:`~repro.fleet.query.VaultQuery` surface over the wire.

    Every exchange has a per-attempt ``deadline`` in simulated cycles:
    a dropped, delayed, or unanswered request costs the full deadline,
    then retries with the collector's seeded clamped backoff, up to
    ``max_retries`` — after which :class:`VaultTimeout` is raised.  All
    time is simulated, so the client terminates by construction.

    The ``partial=True`` form of the list methods returns
    ``(items, truncated)`` and tolerates a mid-pagination timeout or
    ``budget`` exhaustion by returning the pages already fetched —
    that is what federation builds its coverage ladder on.  The plain
    form mirrors ``VaultQuery`` exactly and never returns silently
    truncated results.
    """

    def __init__(
        self,
        network: "Network",
        service: str = "vault",
        machine: "Machine | None" = None,
        deadline: int = 20_000,
        max_retries: int = 4,
        backoff_base: int = 500,
        backoff_max: int = 8_000,
        seed: int = 0,
        metrics: FleetMetrics | None = None,
    ):
        self.network = network
        self.service = service
        #: Caller's machine; wire time is charged to its clock.
        self.machine = machine
        self.deadline = deadline
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.rng = random.Random(seed)
        self.metrics = metrics or FleetMetrics()
        #: Simulated cycles this client has spent waiting, total.
        self.cycles_spent = 0
        self._mapfile_cache: list[Mapfile] | None = None

    # ------------------------------------------------------------------
    def _charge(self, cycles: int) -> None:
        self.cycles_spent += cycles
        if self.machine is not None:
            self.machine.cycles += cycles

    def _exchange(self, op: str, args: dict, attempt: int):
        """One wire attempt -> ``(body | None, cost_cycles, failure)``."""
        network = self.network
        network.query_count += 1
        server = network.vault_service(self.service)
        if server is None:
            raise VaultUnavailable(
                f"no live vault server for service {self.service!r}"
            )
        hook = network.query_chaos
        verdict = hook(self.service, op, attempt) if hook else None
        if verdict == "drop":
            return None, self.deadline, "request dropped in transit"
        if server.wedged():
            return None, self.deadline, "vault server unresponsive"
        if verdict == "kill-server":
            server.kill()
            return None, self.deadline, "vault server died mid-stream"
        response = server.handle_wire(
            encode_frame({"proto": PROTOCOL, "op": op, "args": args})
        )
        if verdict == "delay":
            # The reply exists but lands after the deadline; the
            # client has already given up on this attempt.
            return None, self.deadline, "response delayed past deadline"
        if verdict == "corrupt":
            damaged = bytearray(response)
            damaged[self.rng.randrange(len(damaged))] ^= 0xFF
            response = bytes(damaged)
        cost = 2 * network.rpc_latency
        try:
            body = decode_frame(response)
        except ProtocolError as exc:
            return None, cost, f"response corrupt: {exc}"
        return body, cost, None

    def _request(self, op: str, args: dict | None = None) -> dict:
        """One protocol exchange with deadline + seeded backoff."""
        args = args or {}
        self.metrics.bump(remote_requests=1)
        attempts = 0
        failure = None
        while True:
            attempts += 1
            body, cost, failure = self._exchange(op, args, attempts)
            timed_out = cost > self.deadline
            self._charge(min(cost, self.deadline))
            if body is not None and not timed_out:
                if not body.get("ok"):
                    raise ProtocolError(
                        f"{op} on {self.service!r}: "
                        f"{body.get('error') or 'unknown server error'}"
                    )
                result = body.get("result")
                return result if isinstance(result, dict) else {}
            if attempts > self.max_retries:
                self.metrics.bump(remote_timeouts=1)
                raise VaultTimeout(
                    f"{op} on {self.service!r}: "
                    f"{failure or 'deadline exceeded'} "
                    f"after {attempts} attempt(s)"
                )
            backoff = backoff_with_jitter(
                self.backoff_base, attempts, self.rng, self.backoff_max
            )
            self._charge(backoff)
            self.metrics.bump(remote_retries=1, remote_backoff_cycles=backoff)

    def _paged(
        self,
        op: str,
        args: dict,
        key: str,
        budget: int | None,
        partial: bool,
    ) -> tuple[list, bool]:
        """Fetch every page of a list op -> ``(items, truncated)``.

        With ``partial=True``, a pagination budget (cycles) or a
        mid-pagination timeout ends the fetch with what arrived so far
        and ``truncated=True``; without it, every failure propagates
        and the result is always complete.
        """
        items: list = []
        offset: int | None = 0
        start = self.cycles_spent
        while offset is not None:
            if (
                partial
                and budget is not None
                and items
                and self.cycles_spent - start >= budget
            ):
                return items, True
            try:
                result = self._request(op, {**args, "offset": offset})
            except VaultTimeout:
                if partial and items:
                    return items, True
                raise
            self.metrics.bump(remote_pages=1)
            page = result.get(key)
            items.extend(page if isinstance(page, list) else [])
            offset = result.get("next")
        return items, False

    # ------------------------------------------------------------------
    # The VaultQuery mirror
    # ------------------------------------------------------------------
    def hello(self) -> dict:
        """Server identity and stats (protocol smoke check)."""
        return self._request("hello")

    def select(self, budget: int | None = None, partial: bool = False, **filters):
        """Manifest entries matching the filters (see SnapVault.select)."""
        docs, truncated = self._paged("select", filters, "entries", budget, partial)
        entries = [VaultEntry.from_dict(d) for d in docs]
        return (entries, truncated) if partial else entries

    def incidents(self, budget: int | None = None, partial: bool = False, **filters):
        """The vault's incident partition, reassembled from the wire."""
        docs, truncated = self._paged(
            "incidents", filters, "incidents", budget, partial
        )
        incidents = []
        for doc in docs:
            incidents.append(
                Incident(
                    incident_id=doc["incident"]["incident_id"],
                    entries=[VaultEntry.from_dict(d) for d in doc["entries"]],
                    links=set(doc["incident"]["links"]),
                )
            )
        return (incidents, truncated) if partial else incidents

    def top(
        self,
        limit: int | None = None,
        budget: int | None = None,
        partial: bool = False,
    ):
        """Ranked crash buckets, served by the remote vault."""
        docs, truncated = self._paged(
            "top", {"limit": limit}, "buckets", budget, partial
        )
        buckets = [CrashBucket(**doc) for doc in docs]
        return (buckets, truncated) if partial else buckets

    # ------------------------------------------------------------------
    # Lazy evidence fetch
    # ------------------------------------------------------------------
    def fetch_blob(self, digest: str) -> bytes:
        """One TBSZ2 container, CRC-checked on arrival."""
        result = self._request("fetch_blob", {"digest": digest})
        try:
            data = bytes.fromhex(result["blob"])
        except (KeyError, ValueError) as exc:
            raise ProtocolError(f"blob {digest[:12]} reply malformed: {exc}")
        if zlib.crc32(data) != result.get("crc"):
            raise ProtocolError(f"blob {digest[:12]} failed CRC on arrival")
        self.metrics.bump(remote_blob_fetches=1)
        return data

    def load(
        self, digest: str, salvage: bool = False
    ) -> tuple[SnapFile | None, list[str]]:
        """Fetch and decompress one stored snap (mirrors SnapVault.load)."""
        data = self.fetch_blob(digest)
        if salvage:
            return salvage_decompress(data)
        return decompress_snap(data), []

    def mapfiles(self) -> list[Mapfile]:
        """The vault's stored mapfiles, fetched once and cached."""
        if self._mapfile_cache is None:
            listing = self._request("fetch_mapfile", {})
            loaded = []
            for checksum in listing.get("checksums", []):
                doc = self._request("fetch_mapfile", {"checksum": checksum})
                loaded.append(Mapfile.from_dict(doc["mapfile"]))
            self._mapfile_cache = loaded
        return list(self._mapfile_cache)

    def reconstruct_entry(
        self, entry: VaultEntry | str, salvage: bool = False
    ) -> tuple[ProcessTrace, list[str]]:
        """Reconstruct one remote snap (mirrors VaultQuery)."""
        digest = entry if isinstance(entry, str) else entry.digest
        snap, notes = self.load(digest, salvage=salvage)
        if snap is None:
            raise ValueError(
                f"snap {digest} unrecoverable: {'; '.join(notes) or 'gone'}"
            )
        reconstructor = Reconstructor(self.mapfiles())
        return reconstructor.reconstruct(snap, strict=not salvage), notes

    def reconstruct_incident(
        self, incident: Incident, salvage: bool = True
    ) -> DistributedTrace:
        """Stitch one incident's remote snaps into a master trace."""
        snaps = []
        salvage_notes: dict[str, list[str]] = {}
        for entry in incident.entries:
            snap, notes = self.load(entry.digest, salvage=salvage)
            snaps.append(snap)
            if notes:
                salvage_notes.setdefault(entry.machine, []).extend(notes)
        return Reconstructor(self.mapfiles()).reconstruct_distributed(
            snaps,
            strict=not salvage,
            expected_machines=incident.machines,
            salvage_notes=salvage_notes,
        )
