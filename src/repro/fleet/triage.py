"""Fleet triage: ranked "top crashers" buckets over the incident index.

A diagnosis per incident does not scale to a fleet; the question a
support rotation actually asks is *"what are the top crashers, and
show me one good trace of each"*.  This module is that view:

* a :class:`CrashBucket` summarizes one signature's standing — how
  many snaps and incidents carry it, when it was first and last seen
  (ingest seqs), which machines and processes it hit, and the exemplar
  digest kept for a future ``tbtrace replay`` to confirm the
  diagnosis;
* :func:`top_buckets` ranks them (count desc, first-seen asc) straight
  off the vault's incrementally-maintained bucket state — O(buckets),
  no reconstruction;
* :func:`build_report` produces the forensics report ``tbtrace
  report`` emits: a canonical JSON document (no absolute paths, no
  wall-clock timestamps — byte-stable for a fixed vault, which the
  golden tests rely on) with one salvage-reconstructed exemplar trace
  rendering per bucket, and :func:`render_report_text` /
  :func:`render_report_html` turn it into the terminal listing and a
  self-contained HTML page;
* :func:`pairwise_scores` is the triage-quality metric the chaos
  ground-truth harness scores the signature function with: pairwise
  precision (no distinct faults merged) and recall (same fault not
  scattered) between a predicted and a true clustering.
"""

from __future__ import annotations

import html as html_mod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.reconstruct.signature import signature_key
from repro.reconstruct.view import select_view

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.query import VaultQuery
    from repro.fleet.store import SnapVault

#: Report document schema (bump when the JSON shape changes).
REPORT_SCHEMA = "tb-triage-report/1"


@dataclass
class CrashBucket:
    """One signature's ranked standing in the vault."""

    sig: str
    #: Short stable hash of the signature — the display/report id.
    key: str
    #: Snaps carrying evidence in this bucket (bucketed incidents'
    #: members, bystanders included — the incident is the GC unit).
    count: int
    #: Distinct incidents collapsed into this bucket.
    incidents: int
    first_seq: int
    last_seq: int
    machines: list[str] = field(default_factory=list)
    processes: list[str] = field(default_factory=list)
    #: Exemplar digest (earliest signature-carrying snap), pinned
    #: against GC while the bucket is open.
    exemplar: str | None = None

    def describe(self) -> str:
        """One line for ``tbtrace top`` listings."""
        return (
            f"[{self.key}] {self.count} snap(s) / "
            f"{self.incidents} incident(s)  "
            f"machines {','.join(self.machines)}  "
            f"seqs {self.first_seq}..{self.last_seq}  {self.sig}"
        )

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "sig": self.sig,
            "count": self.count,
            "incidents": self.incidents,
            "first_seq": self.first_seq,
            "last_seq": self.last_seq,
            "machines": self.machines,
            "processes": self.processes,
            "exemplar": self.exemplar,
        }


def top_buckets(
    vault: "SnapVault", limit: int | None = None
) -> list[CrashBucket]:
    """Ranked crash buckets, biggest first — O(buckets), no archives.

    Counts are taken against the *live* entry set (a compaction racing
    this listing may have dropped members the index still remembers),
    then ranked count-desc / first-seen-asc / signature so the order is
    a total one and listings are reproducible.
    """
    index = vault.incident_index
    buckets: list[CrashBucket] = []
    for sig, components in index.buckets_ranked():
        entries = [
            e
            for c in components
            for e in (vault.index.get(d) for d in c.digests)
            if e is not None
        ]
        if not entries:
            continue  # every member compacted away mid-listing
        seqs = [e.seq for e in entries]
        buckets.append(
            CrashBucket(
                sig=sig,
                key=signature_key(sig),
                count=len(entries),
                incidents=len(components),
                first_seq=min(seqs),
                last_seq=max(seqs),
                machines=sorted({e.machine for e in entries}),
                processes=sorted({e.process for e in entries}),
                exemplar=index.exemplar_digest(sig),
            )
        )
    buckets.sort(key=lambda b: (-b.count, b.first_seq, b.sig))
    if limit is not None:
        buckets = buckets[:limit]
    return buckets


def exemplar_rendering(
    query: "VaultQuery", bucket: CrashBucket, max_lines: int = 30
) -> list[str]:
    """The bucket's one exemplar trace, salvage-reconstructed.

    Fault-directed view selection (§4.3.3) picks the rendering; output
    is clipped to the last ``max_lines`` rows (the fault sits at the
    tail).  Never raises — a bucket whose exemplar is unreadable
    reports that instead of killing the whole report.
    """
    if bucket.exemplar is None:
        return ["(no exemplar recorded)"]
    try:
        trace, notes = query.reconstruct_entry(bucket.exemplar, salvage=True)
    except Exception as exc:  # noqa: BLE001 — report what we can
        return [f"(exemplar {bucket.exemplar[:12]} unreadable: {exc})"]
    rows = [
        f"exemplar {bucket.exemplar[:12]}: {trace.reason} in "
        f"{trace.process_name} on {trace.machine_name}"
    ]
    rows.extend(f"note: {note}" for note in notes)
    view_lines = select_view(trace).splitlines()
    if len(view_lines) > max_lines:
        skipped = len(view_lines) - max_lines
        rows.append(f"  ... {skipped} earlier row(s) clipped ...")
        view_lines = view_lines[-max_lines:]
    rows.extend(view_lines)
    return rows


def build_report(
    query: "VaultQuery",
    limit: int | None = None,
    exemplar_lines: int = 30,
    verify: bool = False,
) -> dict:
    """The triage report document (``tbtrace report``'s JSON form).

    Canonical and self-contained: ranked buckets with their exemplar
    renderings, plus coverage counts (how much of the vault is
    bucketed).  Deliberately excludes vault paths and wall-clock
    times so a fixed-seed fleet fixture reports byte-identically.

    With ``verify=True`` each bucket's exemplar is additionally
    *replayed* (:meth:`~repro.fleet.query.VaultQuery.verify_bucket`)
    and the bucket document gains a ``replay_verified`` verdict —
    opt-in because replay re-executes the recorded run.
    """
    vault = query.vault
    buckets = top_buckets(vault, limit=limit)
    fault_snaps = sum(
        1 for e in vault.index.values() if e.sig is not None
    )
    docs = []
    for bucket in buckets:
        doc = bucket.to_dict()
        doc["exemplar_trace"] = exemplar_rendering(
            query, bucket, max_lines=exemplar_lines
        )
        if verify:
            doc["replay_verified"] = query.verify_bucket(bucket)
        docs.append(doc)
    query.metrics.reports_rendered += 1
    return {
        "schema": REPORT_SCHEMA,
        "snaps": len(vault.index),
        "bucketed_snaps": fault_snaps,
        "buckets": docs,
    }


def render_report_text(report: dict) -> list[str]:
    """The terminal form of a report, one display line each."""
    lines = [
        f"top crashers: {len(report['buckets'])} bucket(s), "
        f"{report['bucketed_snaps']}/{report['snaps']} snap(s) bucketed"
    ]
    for rank, doc in enumerate(report["buckets"], start=1):
        lines.append("")
        lines.append(
            f"#{rank} [{doc['key']}] {doc['count']} snap(s) / "
            f"{doc['incidents']} incident(s)  "
            f"seqs {doc['first_seq']}..{doc['last_seq']}"
        )
        lines.append(f"   {doc['sig']}")
        lines.append(
            f"   machines {','.join(doc['machines'])}  "
            f"processes {','.join(doc['processes'])}"
        )
        verdict = doc.get("replay_verified")
        if verdict is not None:
            state = "VERIFIED" if verdict["verified"] else "unverified"
            lines.append(f"   replay: {state} - {verdict['reason']}")
        lines.extend(f"   {row}" for row in doc["exemplar_trace"])
    return lines


def render_report_html(report: dict) -> str:
    """A self-contained HTML page (inline CSS, no external assets)."""
    esc = html_mod.escape
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        "<title>TraceBack triage report</title>",
        "<style>",
        "body{font-family:sans-serif;margin:2em;background:#fafafa;}",
        "h1{font-size:1.4em;} h2{font-size:1.1em;margin-bottom:0.2em;}",
        ".bucket{background:#fff;border:1px solid #ddd;border-radius:4px;"
        "padding:1em;margin:1em 0;}",
        ".sig{font-family:monospace;color:#a33;}",
        ".meta{color:#555;font-size:0.9em;}",
        "pre{background:#f4f4f4;padding:0.8em;overflow-x:auto;"
        "font-size:0.85em;}",
        "</style>",
        "</head>",
        "<body>",
        "<h1>TraceBack triage report &mdash; top crashers</h1>",
        f"<p class=\"meta\">{len(report['buckets'])} bucket(s); "
        f"{report['bucketed_snaps']}/{report['snaps']} snap(s) "
        "bucketed</p>",
    ]
    for rank, doc in enumerate(report["buckets"], start=1):
        parts.append('<div class="bucket">')
        parts.append(
            f"<h2>#{rank} <code>[{esc(doc['key'])}]</code> "
            f"{doc['count']} snap(s) / {doc['incidents']} incident(s)</h2>"
        )
        parts.append(f'<p class="sig">{esc(doc["sig"])}</p>')
        parts.append(
            '<p class="meta">'
            f"machines {esc(','.join(doc['machines']))} &middot; "
            f"processes {esc(','.join(doc['processes']))} &middot; "
            f"seqs {doc['first_seq']}&ndash;{doc['last_seq']}</p>"
        )
        parts.append(
            "<pre>" + esc("\n".join(doc["exemplar_trace"])) + "</pre>"
        )
        parts.append("</div>")
    parts.extend(["</body>", "</html>"])
    return "\n".join(parts) + "\n"


# ----------------------------------------------------------------------
# Triage quality scoring (the chaos ground-truth harness's metric)
# ----------------------------------------------------------------------
def pairwise_scores(
    predicted: dict[str, set], truth: dict[str, set]
) -> tuple[float, float]:
    """Pairwise precision/recall of a clustering against ground truth.

    Both arguments map cluster label → item set over the same items
    (items missing from ``predicted`` count as unclustered — they form
    no pairs, costing recall but never precision, which matches the
    triage stance: an unbucketed incident is a miss, a wrongly-merged
    one is a lie).

    * precision — of the item pairs the prediction puts together, the
      fraction the truth also puts together (1.0 = no distinct faults
      ever merged);
    * recall — of the pairs the truth puts together, the fraction the
      prediction also puts together.

    Degenerate cases score 1.0: no predicted pairs → vacuous
    precision, no true pairs → vacuous recall.
    """

    def pairs(clusters: dict[str, set]) -> set[tuple]:
        out: set[tuple] = set()
        for members in clusters.values():
            ordered = sorted(members)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1 :]:
                    out.add((a, b))
        return out

    predicted_pairs = pairs(predicted)
    true_pairs = pairs(truth)
    agree = len(predicted_pairs & true_pairs)
    precision = (
        agree / len(predicted_pairs) if predicted_pairs else 1.0
    )
    recall = agree / len(true_pairs) if true_pairs else 1.0
    return precision, recall
