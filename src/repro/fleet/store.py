"""The snap vault: a sharded, indexed, on-disk store of TBSZ2 archives.

The paper's deployment (§3.6.1, §3.7.5) forwards every machine's snaps
to a central point where support engineers later query and reconstruct
them.  This module is that central point's disk format:

* **shards** — ``shard-00/ .. shard-NN/`` under the vault root; a snap
  lands in the shard named by its content hash, so load spreads evenly
  and shards can later be split across collectors;
* **content-hash dedupe** — the digest of the snap's canonical JSON is
  the blob filename; a group snap that fans out to N peers and arrives
  N times is stored once (§3.6.2's suppression argument, applied at
  the vault);
* **atomic writes** — blobs and index files go through temp-file +
  ``os.replace`` (:func:`repro.runtime.archive.write_atomic`), so the
  abrupt kills ``repro.chaos`` injects can never tear a stored archive;
* **JSON-lines manifest per shard** — ``manifest.jsonl``, append-only,
  one line per stored snap with everything queries filter on (machine,
  process, reason, clock, SYNC logical-thread ids, group-snap detail);
  a torn trailing line (kill mid-append) is skipped on load;
* **rebuildable index** — the in-memory index is derived purely from
  the manifests, and the manifests themselves can be regenerated from
  the archives via :meth:`SnapVault.rebuild_index`.

Concurrency model (the multi-collector ingest pipeline):

* the CPU-heavy per-snap work — canonical-JSON digest, TBSZ2
  compression, SYNC-id salvage mining — lives in :func:`prepare_snap`,
  which collectors run in a worker pool so digesting overlaps network
  transfer;
* one **index lock** serializes dedupe checks, sequence assignment,
  and incident-index maintenance (so incident edges are applied in
  ingest-sequence order even under concurrent collectors);
* one **lock per shard** owns that shard's manifest: a batch's lines
  are appended with a single ``os.write``, so a kill mid-batch tears
  at most the final line of one append — which loading skips;
* under ``durability="batch"``, blobs are written without per-file
  fsync and one group sync point covers the whole batch *before* any
  manifest line records it (group commit): a crash can lose at most
  the un-manifested tail of one batch, and the blobs that did land are
  healed back into a manifest on the next duplicate arrival or
  ``rebuild_index()``.

Retention + compaction (the GC pass; see :mod:`repro.fleet.retention`):

* :meth:`SnapVault.compact` applies a :class:`RetentionPolicy` plan.
  Per shard, under that shard's single-writer lock: one **tombstone
  line** (a single JSON line naming every victim digest, one
  ``os.write``) is appended first — that line is the shard's commit
  point, after which loading yields exactly the post-compaction view
  (a torn tombstone is skipped and yields exactly the pre-compaction
  view; there is no in-between) — then victim blobs are unlinked, then
  the manifest is atomically rewritten without dead entries or
  tombstones (temp + ``os.replace``);
* a kill -9 anywhere in that sequence loses no live snap: blob
  deletion is a *redo* of what the tombstone already committed, and
  opening a vault finishes any interrupted deletions
  (``gc_redo_deletes``) so no orphan blob survives a crash-interrupted
  compaction;
* the ``incidents.idx`` checkpoint is invalidated before the first
  manifest mutation and rebuilt from the surviving entries afterwards,
  so a crash can never leave a checkpoint that outlives the manifests
  it summarized;
* compaction runs concurrently with multi-collector ingest: a
  re-arrival of content being collected re-stores it as a fresh entry
  (its manifest line lands after the tombstone, and per-shard
  last-writer-wins loading resurrects it).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field

from repro.fleet.metrics import FleetMetrics
from repro.instrument.mapfile import Mapfile
from repro.reconstruct.recovery import recover_spans_salvage
from repro.runtime.archive import (
    compress_snap,
    decompress_snap,
    salvage_decompress,
    write_atomic,
)
from repro.runtime.records import ExtKind, ExtRecord
from repro.runtime.snap import SnapFile

#: Blob filename suffix inside a shard.
BLOB_SUFFIX = ".tbsz"

#: Manifest filename inside each shard directory.
MANIFEST = "manifest.jsonl"

#: Key of a dead-entry marker line in a manifest: ``{"tomb": [digests]}``.
#: One tombstone line lists every victim of one compaction pass in that
#: shard, so its single append is the shard's atomic commit point.
TOMBSTONE_KEY = "tomb"

#: Subdirectory where module mapfiles ride along with the evidence.
MAPFILE_DIR = "mapfiles"


class VaultError(ValueError):
    """The vault layout or a stored artifact is unusable."""


def content_digest(snap: SnapFile) -> str:
    """Content hash of a snap: sha256 over its canonical JSON.

    Computed on the *uncompressed* canonical form, so the digest is
    stable across compression levels and container versions.
    """
    canonical = json.dumps(snap.to_dict(), sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()[:32]


def mine_sync_ids(snap: SnapFile) -> list[int]:
    """Logical-thread ids of every SYNC record surviving in ``snap``.

    Mined with the salvage span recovery (never raises on damage), so
    incident grouping works even for snaps whose buffers are hurt.
    These ids are what link one machine's snap to its RPC partners'.
    """
    if not snap.buffers:
        return []
    ids: set[int] = set()
    try:
        recovered = recover_spans_salvage(snap.buffers)
    except Exception:  # noqa: BLE001 — mining is best-effort metadata
        return []
    for span in recovered.spans:
        for record in span.records:
            if isinstance(record, ExtRecord) and record.kind == ExtKind.SYNC:
                if len(record.payload) >= 2:
                    ids.add(record.payload[1])
    return sorted(ids)


@dataclass
class VaultEntry:
    """One manifest line: the queryable metadata of a stored snap."""

    digest: str
    seq: int  # vault-wide ingest sequence number
    shard: int
    machine: str
    process: str
    pid: int
    reason: str
    clock: int
    size: int  # compressed container bytes
    sync_ids: list[int] = field(default_factory=list)
    #: Group-snap correlation (``detail`` of reason="group" snaps, and
    #: the initiating snap's own reason for everyone else).
    group: str | None = None
    initiator: str | None = None
    initiator_reason: str | None = None
    #: Crash signature mined from the reconstructed evidence (triage
    #: bucket key); None for non-fault snaps or unminable evidence.
    #: Appended last with a default so pre-signature manifests load.
    sig: str | None = None
    #: Replay capability of the stored snap: "full" (carries a
    #: tb-ndlog, either version — classification is format-agnostic,
    #: see ``repro.replay.ndlog.replayable_status``), "seed-only", or
    #: "none".  Defaulted so pre-replay manifests load; rebuild_index
    #: re-derives it from the archive.
    replayable: str = "none"

    def to_dict(self) -> dict:
        return dict(vars(self))

    @classmethod
    def from_dict(cls, d: dict) -> "VaultEntry":
        return cls(**d)

    @classmethod
    def from_snap(
        cls,
        snap: SnapFile,
        digest: str,
        seq: int,
        shard: int,
        size: int,
        sync_ids: list[int] | None = None,
        sig: str | None = None,
    ) -> "VaultEntry":
        detail = snap.detail if isinstance(snap.detail, dict) else {}
        return cls(
            digest=digest,
            seq=seq,
            shard=shard,
            machine=snap.machine_name,
            process=snap.process_name,
            pid=snap.pid,
            reason=snap.reason,
            clock=snap.clock,
            size=size,
            sync_ids=mine_sync_ids(snap) if sync_ids is None else sync_ids,
            group=detail.get("group"),
            initiator=detail.get("initiator"),
            initiator_reason=detail.get("initiator_reason"),
            sig=sig,
            replayable=getattr(snap, "replayable", "none"),
        )


@dataclass
class StoreResult:
    """Outcome of one :meth:`SnapVault.put`."""

    digest: str
    deduped: bool
    entry: VaultEntry


@dataclass
class PreparedSnap:
    """The CPU-heavy half of a store, done off the ingest hot path.

    Collectors run :func:`prepare_snap` in a worker pool while the
    (simulated) network transfer is in flight; the vault's commit then
    only touches disk and dictionaries.  ``data is None`` marks an
    early dedupe: the digest was already known when preparation ran,
    so compression and SYNC mining were skipped.
    """

    snap: SnapFile
    digest: str
    sync_ids: list[int] | None = None
    data: bytes | None = None
    early_deduped: bool = False
    #: Crash signature (triage metadata).  ``sig_mined`` distinguishes
    #: "mined, and there is none" from "not mined yet".
    sig: str | None = None
    sig_mined: bool = False

    def ensure_sync_ids(self) -> list[int]:
        if self.sync_ids is None:
            self.sync_ids = mine_sync_ids(self.snap)
        return self.sync_ids

    def ensure_data(self, compress_level: int) -> bytes:
        if self.data is None:
            self.data = compress_snap(self.snap, compress_level)
        return self.data

    def ensure_sig(self, signer) -> str | None:
        if not self.sig_mined:
            self.sig = signer(self.snap) if signer is not None else None
            self.sig_mined = True
        return self.sig


def prepare_snap(
    snap: SnapFile,
    compress_level: int = 6,
    known=None,
    signer=None,
) -> PreparedSnap:
    """Digest, mine, and compress one snap (worker-pool stage).

    ``known`` is an optional ``digest -> bool`` predicate (typically
    :meth:`SnapVault.contains`): when it already knows the digest, the
    expensive compression and mining are skipped and the commit path
    records an early dedupe.  The check is advisory — the vault
    re-checks under its lock, so a stale verdict only costs work,
    never correctness.

    ``signer`` is an optional ``snap -> str | None`` (typically
    :meth:`SnapVault.sign`) mining the crash signature here, in the
    worker pool, instead of under the vault's index lock at commit.
    """
    digest = content_digest(snap)
    if known is not None and known(digest):
        return PreparedSnap(snap=snap, digest=digest, early_deduped=True)
    prepared = PreparedSnap(
        snap=snap,
        digest=digest,
        sync_ids=mine_sync_ids(snap),
        data=compress_snap(snap, compress_level),
    )
    if signer is not None:
        prepared.ensure_sig(signer)
    return prepared


class SnapVault:
    """A sharded snap store rooted at a directory.

    Safe for concurrent ``put``/``put_batch`` from multiple collector
    threads: dedupe + sequence assignment + incident-index maintenance
    run under one index lock, blob writes are atomic renames, and each
    shard's manifest has a single-writer lock.
    """

    def __init__(
        self,
        root: str,
        shards: int = 4,
        metrics: FleetMetrics | None = None,
        compress_level: int = 6,
        link_window: int | None = None,
        durability: str = "strict",
    ):
        if shards < 1:
            raise VaultError(f"shard count must be >= 1, got {shards}")
        if durability not in ("strict", "batch"):
            raise VaultError(
                f"durability must be 'strict' or 'batch', got {durability!r}"
            )
        self.root = root
        self.shards = shards
        self.metrics = metrics or FleetMetrics()
        self.compress_level = compress_level
        self.link_window = link_window
        self.durability = durability
        #: digest -> entry, insertion-ordered by ingest sequence.
        self.index: dict[str, VaultEntry] = {}
        self._next_seq = 0
        self._lock = threading.RLock()
        self._shard_locks = [threading.Lock() for _ in range(shards)]
        #: One compaction / manifest-regeneration pass at a time.
        self._compact_lock = threading.Lock()
        #: ``digest -> set()`` callables whose results pin content
        #: against GC (collectors register their queues/dead letters).
        self._pin_sources: list = []
        #: Crash-injection hook for the GC fuzz tests: called with a
        #: label at every point a kill -9 could land mid-compaction.
        self._crash_hook = None
        # Group-commit sync coalescing (durability="batch"): a batch is
        # durable once ANY os.sync() that started after its blob writes
        # completed finishes, so concurrent batches share sync points
        # instead of each paying for their own.
        self._sync_cond = threading.Condition()
        self._write_epoch = 0
        self._synced_epoch = 0
        self._sync_in_progress = False
        #: Parsed-mapfile cache for signature mining, keyed by the
        #: mapfile directory listing (invalidated by put_mapfile and by
        #: another process adding files — the listing changes).
        self._mapfile_cache: tuple[tuple[str, ...], list[Mapfile]] | None = (
            None
        )
        os.makedirs(root, exist_ok=True)
        for shard in range(shards):
            os.makedirs(self._shard_dir(shard), exist_ok=True)
        os.makedirs(os.path.join(root, MAPFILE_DIR), exist_ok=True)
        self._load_manifests()
        #: Digests durably recorded in a manifest (preloaded at open so
        #: duplicate submissions into a reopened vault still register
        #: as dedupe hits).
        self._digests: set[str] = set(self.index)
        #: Digests whose manifest line is durably on disk — the only
        #: entries compaction may victimize (an entry mid-commit has no
        #: durable line yet; tombstoning it would let its own append
        #: resurrect a deleted blob).
        self._manifested: set[str] = set(self.index)
        #: Blobs on disk (a superset after a kill between a blob write
        #: and its manifest line — those orphans are healed on the next
        #: duplicate arrival instead of being stored twice).
        self._blob_digests: set[str] = self._scan_blobs()
        self._finish_interrupted_gc()
        self._load_incident_index()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _shard_dir(self, shard: int) -> str:
        return os.path.join(self.root, f"shard-{shard:02d}")

    def shard_of(self, digest: str) -> int:
        """Content-addressed shard placement."""
        return int(digest[:8], 16) % self.shards

    def blob_path(self, digest: str) -> str:
        return os.path.join(
            self._shard_dir(self.shard_of(digest)), digest + BLOB_SUFFIX
        )

    def contains(self, digest: str) -> bool:
        """Is this content already durably recorded?  (Advisory: the
        commit path re-checks under the index lock.)"""
        return digest in self._digests

    def _scan_blobs(self) -> set[str]:
        found: set[str] = set()
        for shard in range(self.shards):
            for name in os.listdir(self._shard_dir(shard)):
                if name.endswith(BLOB_SUFFIX):
                    found.add(name[: -len(BLOB_SUFFIX)])
        return found

    # ------------------------------------------------------------------
    # Manifest / index
    # ------------------------------------------------------------------
    @staticmethod
    def _read_manifest(path: str) -> tuple[dict[str, "VaultEntry"], set[str]]:
        """Parse one shard manifest with last-writer-wins semantics.

        Returns ``(live, dead)``: live entries keyed by digest in file
        order, and digests whose *final* state is a tombstone.  A
        tombstone line kills every entry that precedes it; a later
        entry line resurrects the digest (re-ingest after compaction).
        Unparseable lines — a torn tail from a kill mid-append — are
        skipped, which is exactly the pre-write view.
        """
        live: dict[str, VaultEntry] = {}
        dead: set[str] = set()
        if not os.path.exists(path):
            return live, dead
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and TOMBSTONE_KEY in record:
                    victims = record[TOMBSTONE_KEY]
                    if isinstance(victims, str):
                        victims = [victims]
                    for digest in victims:
                        live.pop(digest, None)
                        dead.add(digest)
                    continue
                try:
                    entry = VaultEntry.from_dict(record)
                except (TypeError, KeyError):
                    # A torn trailing line from a kill mid-append:
                    # the blob write is atomic, so rebuild_index can
                    # still restore this entry from the archive.
                    continue
                # Re-insert so a resurrected digest sorts after its
                # tombstone in file order.
                live.pop(entry.digest, None)
                live[entry.digest] = entry
                dead.discard(entry.digest)
        return live, dead

    def _load_manifests(self) -> None:
        entries: list[VaultEntry] = []
        max_seen = -1
        self._tombstoned_dead: set[str] = set()
        for shard in range(self.shards):
            path = os.path.join(self._shard_dir(shard), MANIFEST)
            live, dead = self._read_manifest(path)
            entries.extend(live.values())
            self._tombstoned_dead |= dead
        entries.sort(key=lambda e: e.seq)
        for entry in entries:
            self.index[entry.digest] = entry
            max_seen = max(max_seen, entry.seq)
        self._next_seq = max_seen + 1

    def _finish_interrupted_gc(self) -> None:
        """Redo blob deletions a killed compaction left unfinished.

        A tombstone is the durable commitment that its digests are
        dead; unlinking their blobs is idempotent redo.  Running it at
        open restores the invariant that every blob on disk is either
        manifested or a heal-pending ingest orphan — never a deleted
        snap's leftover that ``rebuild_index()`` would resurrect.
        """
        for digest in self._tombstoned_dead:
            if digest in self._blob_digests:
                try:
                    os.unlink(self.blob_path(digest))
                except OSError:
                    continue
                self._blob_digests.discard(digest)
                self.metrics.gc_redo_deletes += 1

    def _load_incident_index(self) -> None:
        from repro.fleet.index import IncidentIndex

        self.incident_index, how = IncidentIndex.load(
            self.root, list(self.index.values()), window=self.link_window
        )
        if how == "loaded":
            self.metrics.index_loads += 1
        elif how == "caught-up":
            self.metrics.index_loads += 1
            self.metrics.index_catchups += self.incident_index.dirty

    def flush_index(self) -> str | None:
        """Checkpoint the incident index to ``incidents.idx``.

        Collectors call this when a drain completes; it is cheap to
        skip when nothing changed.  The checkpoint is an accelerator:
        anything not flushed is replayed from the manifests at the
        next open.
        """
        with self._lock:
            if not self.incident_index.dirty and os.path.exists(
                os.path.join(self.root, self.incident_index_path())
            ):
                return None
            path = self.incident_index.persist(self.root)
            self.metrics.index_persists += 1
            return path

    @staticmethod
    def incident_index_path() -> str:
        from repro.fleet.index import INDEX_FILE

        return INDEX_FILE

    def _manifest_lines(self, shard: int, lines: list[str]) -> None:
        """Append a batch's manifest lines with a single ``os.write``.

        One write syscall per shard per batch: a kill mid-batch can
        tear at most the *final* line of the append, which manifest
        loading already skips — never a line in the middle.
        """
        path = os.path.join(self._shard_dir(shard), MANIFEST)
        payload = ("\n".join(lines) + "\n").encode()
        with self._shard_locks[shard]:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)

    def rebuild_index(self) -> int:
        """Regenerate every manifest from the stored archives.

        The archives are the source of truth; manifests are derived
        state.  Returns the number of entries recovered.  Sequence
        numbers are reassigned in digest order (ingest order is lost
        with the manifests — archives carry no vault timestamps).
        The incident index is rebuilt and re-persisted from the fresh
        manifests in the same pass; the on-disk checkpoint is
        invalidated *before* the first manifest is touched, so a kill
        anywhere mid-rebuild can never leave a pre-rebuild checkpoint
        next to post-rebuild manifests — reopening rebuilds from the
        manifests instead of serving stale groupings.
        """
        from repro.fleet.index import IncidentIndex

        with self._compact_lock, self._lock:
            self._invalidate_incident_checkpoint()
            self._gc_point("rebuild-checkpoint-invalidated")
            self.index.clear()
            self._next_seq = 0
            self.metrics.index_rebuilds += 1
            recovered = 0
            for shard in range(self.shards):
                shard_dir = self._shard_dir(shard)
                lines = []
                for name in sorted(os.listdir(shard_dir)):
                    if not name.endswith(BLOB_SUFFIX):
                        continue
                    digest = name[: -len(BLOB_SUFFIX)]
                    path = os.path.join(shard_dir, name)
                    with open(path, "rb") as fh:
                        data = fh.read()
                    snap, _notes = salvage_decompress(data)
                    if snap is None:
                        continue
                    entry = VaultEntry.from_snap(
                        snap, digest, seq=self._next_seq, shard=shard,
                        size=len(data), sig=self.sign(snap),
                    )
                    self._next_seq += 1
                    self.index[entry.digest] = entry
                    lines.append(json.dumps(entry.to_dict()))
                    recovered += 1
                manifest = os.path.join(shard_dir, MANIFEST)
                write_atomic(
                    ("\n".join(lines) + "\n" if lines else "").encode(),
                    manifest,
                )
                self._gc_point(f"rebuild-manifest-{shard:02d}")
            self._digests = set(self.index)
            self._manifested = set(self.index)
            self._tombstoned_dead = set()
            self._blob_digests = self._scan_blobs()
            self.incident_index = IncidentIndex.rebuild(
                list(self.index.values()), window=self.link_window
            )
            self._gc_point("rebuild-index-rebuilt")
            self.incident_index.persist(self.root)
            self.metrics.index_persists += 1
            return recovered

    # ------------------------------------------------------------------
    # Retention / compaction (the GC pass)
    # ------------------------------------------------------------------
    def add_pin_source(self, source) -> None:
        """Register a ``() -> set[str]`` of digests GC must retain.

        Collectors register their in-flight queue + dead-letter digests
        here (the pin protocol): content a dead letter may redeliver is
        never collected out from under it.
        """
        with self._lock:
            if source not in self._pin_sources:
                self._pin_sources.append(source)

    def remove_pin_source(self, source) -> None:
        with self._lock:
            if source in self._pin_sources:
                self._pin_sources.remove(source)

    def _invalidate_incident_checkpoint(self) -> None:
        """Drop ``incidents.idx`` before mutating what it summarizes."""
        try:
            os.unlink(os.path.join(self.root, self.incident_index_path()))
        except OSError:
            pass

    def _gc_point(self, label: str) -> None:
        """A point where the GC fuzz tests may simulate a kill -9."""
        hook = self._crash_hook
        if hook is not None:
            hook(label)

    def plan_compaction(self, policy, now: int | None = None):
        """What :meth:`compact` would delete — the ``--dry-run`` view.

        Computed under the index lock against the durably-manifested
        entry set, so the plan is a consistent snapshot: applying it
        deletes exactly this set (entries ingested after planning are
        untouched either way).
        """
        from repro.fleet.retention import plan_compaction

        with self._lock:
            entries = [
                e for e in self.index.values() if e.digest in self._manifested
            ]
            return plan_compaction(
                entries,
                policy,
                incident_index=self.incident_index,
                pin_sources=list(self._pin_sources),
                now=now,
            )

    def compact(self, policy=None, plan=None, now: int | None = None):
        """Apply a retention policy: tombstone, delete, rewrite, reindex.

        Crash-safe by construction — per shard, under that shard's
        single-writer lock:

        1. one tombstone line naming every victim is appended with a
           single ``os.write`` (the commit point: torn = pre view,
           landed = post view, nothing in between);
        2. victims leave the in-memory index, so a concurrent
           re-arrival of the same content re-stores it fresh;
        3. victim blobs are unlinked (idempotent redo of what the
           tombstone committed; a kill here is finished at next open);
        4. the manifest is atomically rewritten without dead entries
           or tombstones.

        The ``incidents.idx`` checkpoint is invalidated before step 1
        and rebuilt from the survivors after the last shard.  Safe to
        run concurrently with multi-collector ingest; one compaction
        pass at a time.  Returns the applied
        :class:`~repro.fleet.retention.CompactionPlan`.
        """
        if (policy is None) == (plan is None):
            raise VaultError("pass exactly one of policy= or plan=")
        with self._compact_lock:
            if plan is None:
                plan = self.plan_compaction(policy, now=now)
            if not plan.victims:
                with self._lock:
                    self.metrics.compactions += 1
                    self.metrics.pins_honored += len(plan.pinned)
                return plan
            # The checkpoint must never outlive the manifests it was
            # computed from: drop it before the first mutation.
            self._invalidate_incident_checkpoint()
            self._gc_point("checkpoint-invalidated")
            by_shard: dict[int, list[VaultEntry]] = {}
            for entry in plan.victims:
                by_shard.setdefault(entry.shard, []).append(entry)
            removed = blobs_deleted = reclaimed = 0
            for shard, victims in sorted(by_shard.items()):
                with self._shard_locks[shard]:
                    # Leave the in-memory view first: from here on a
                    # re-arrival of victim content re-stores it fresh
                    # (and resurrects it, since its manifest line lands
                    # after our tombstone) instead of dedup-hitting an
                    # entry that is about to die.
                    with self._lock:
                        for entry in victims:
                            if self.index.pop(entry.digest, None) is not None:
                                removed += 1
                            self._digests.discard(entry.digest)
                            self._manifested.discard(entry.digest)
                    self._append_tombstone(
                        shard, [e.digest for e in victims]
                    )
                    with self._lock:
                        self.metrics.tombstones_written += 1
                    self._gc_point(f"tombstoned-{shard:02d}")
                    for entry in victims:
                        # Unlink under the index lock: a concurrent
                        # re-ingest registers (phase 1, locked) before
                        # it writes its blob, so either we see the
                        # registration and keep the blob, or our unlink
                        # strictly precedes its fresh write.
                        with self._lock:
                            if entry.digest in self._digests:
                                continue  # resurrected by re-ingest
                            try:
                                path = self.blob_path(entry.digest)
                                size = os.path.getsize(path)
                                os.unlink(path)
                            except OSError:
                                continue  # already gone (earlier redo)
                            self._blob_digests.discard(entry.digest)
                            blobs_deleted += 1
                            reclaimed += size
                        self._gc_point(f"unlinked-{entry.digest[:8]}")
                    self._rewrite_manifest(shard)
                    self._gc_point(f"rewritten-{shard:02d}")
            with self._lock:
                from repro.fleet.index import IncidentIndex

                self.incident_index = IncidentIndex.rebuild(
                    list(self.index.values()), window=self.link_window
                )
                self._gc_point("index-rebuilt")
                self.incident_index.persist(self.root)
                self.metrics.index_persists += 1
                self.metrics.compactions += 1
                self.metrics.entries_compacted += removed
                self.metrics.blobs_deleted += blobs_deleted
                self.metrics.reclaimed_bytes += reclaimed
                self.metrics.pins_honored += len(plan.pinned)
            return plan

    def _append_tombstone(self, shard: int, digests: list[str]) -> None:
        """One dead-marker line, one ``os.write`` — the commit point.

        Caller holds the shard lock.  All of one pass's victims for the
        shard ride one line, so a torn write drops them all (pre view)
        and a landed write kills them all (post view) — the manifest
        can never show a half-compacted shard.
        """
        path = os.path.join(self._shard_dir(shard), MANIFEST)
        payload = (json.dumps({TOMBSTONE_KEY: digests}) + "\n").encode()
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)

    def _rewrite_manifest(self, shard: int) -> None:
        """Rewrite one shard's manifest without dead entries/tombstones.

        Caller holds the shard lock (no concurrent appends).  The file
        itself is the source of durable truth: lines are re-read with
        the same last-writer-wins rules loading uses, so entries whose
        commit raced the compaction (registered but appended later) are
        simply absent here and land after the rewrite.
        """
        path = os.path.join(self._shard_dir(shard), MANIFEST)
        live, _dead = self._read_manifest(path)
        lines = [json.dumps(e.to_dict()) for e in live.values()]
        write_atomic(
            ("\n".join(lines) + "\n" if lines else "").encode(), path
        )

    # ------------------------------------------------------------------
    # Store / load
    # ------------------------------------------------------------------
    def put(self, snap: SnapFile) -> StoreResult:
        """Store one snap; duplicates (by content hash) are skipped.

        The single-snap path keeps strict per-blob durability (fsync
        before the manifest line) regardless of the vault's batch
        setting — group commit only pays off with company.
        """
        return self.put_batch([prepare_snap(snap, self.compress_level)])[0]

    def put_batch(self, items: list[PreparedSnap]) -> list[StoreResult]:
        """Commit a batch of prepared snaps; returns one result each.

        Three phases:

        1. under the index lock — dedupe (including intra-batch
           duplicates and orphan-blob heals), sequence assignment,
           in-memory index + incident-index updates;
        2. no lock — blob writes (atomic renames; per-blob fsync under
           strict durability, one group sync point under batch);
        3. per-shard lock — manifest lines appended in one write per
           shard, only after the blobs they describe are durable.
        """
        results: list[StoreResult | None] = [None] * len(items)
        fresh: list[tuple[int, PreparedSnap, VaultEntry]] = []
        healed: list[VaultEntry] = []
        with self._lock:
            staged: dict[str, VaultEntry] = {}
            for pos, item in enumerate(items):
                digest = item.digest
                entry = self.index.get(digest) or staged.get(digest)
                if entry is not None:
                    self.metrics.dedupe_hits += 1
                    if item.early_deduped:
                        self.metrics.early_dedupe_hits += 1
                    results[pos] = StoreResult(digest, True, entry)
                    continue
                if digest in self._blob_digests:
                    # Orphan blob: it landed durably but its manifest
                    # line was lost (kill between blob and manifest).
                    # Heal: re-register it instead of re-storing.
                    entry = VaultEntry.from_snap(
                        item.snap,
                        digest,
                        seq=self._next_seq,
                        shard=self.shard_of(digest),
                        size=os.path.getsize(self.blob_path(digest)),
                        sync_ids=item.ensure_sync_ids(),
                        sig=item.ensure_sig(self.sign),
                    )
                    self._next_seq += 1
                    self._register(entry, staged)
                    healed.append(entry)
                    self.metrics.dedupe_hits += 1
                    self.metrics.manifest_heals += 1
                    results[pos] = StoreResult(digest, True, entry)
                    continue
                data = item.ensure_data(self.compress_level)
                entry = VaultEntry.from_snap(
                    item.snap,
                    digest,
                    seq=self._next_seq,
                    shard=self.shard_of(digest),
                    size=len(data),
                    sync_ids=item.ensure_sync_ids(),
                    sig=item.ensure_sig(self.sign),
                )
                self._next_seq += 1
                self._register(entry, staged)
                fresh.append((pos, item, entry))
                results[pos] = StoreResult(digest, False, entry)

        group_commit = self.durability == "batch" and len(fresh) > 1
        written = 0
        for _pos, item, entry in fresh:
            write_atomic(
                item.data, self.blob_path(entry.digest),
                fsync=not group_commit,
            )
            written += len(item.data)
        if group_commit:
            self._group_sync()

        by_shard: dict[int, list[str]] = {}
        for entry in [e for _p, _i, e in fresh] + healed:
            by_shard.setdefault(entry.shard, []).append(
                json.dumps(entry.to_dict())
            )
        for shard, lines in sorted(by_shard.items()):
            self._manifest_lines(shard, lines)

        with self._lock:
            for _pos, _item, entry in fresh:
                self._blob_digests.add(entry.digest)
            for entry in [e for _p, _i, e in fresh] + healed:
                self._manifested.add(entry.digest)
            if group_commit:
                self.metrics.group_commits += 1
            self.metrics.ingested += len(fresh)
            self.metrics.bytes_written += written
            self.metrics.manifest_lines += sum(
                len(lines) for lines in by_shard.values()
            )
            self.metrics.manifest_batches += len(by_shard)
        return results  # type: ignore[return-value]

    def _group_sync(self) -> None:
        """Make every blob this thread has written durable, sharing
        sync points with concurrent batches.

        ``os.sync()`` flushes the whole filesystem, so a sync that
        *starts* after our writes completed covers them — like WAL
        group commit, N concurrent batches need one or two syncs, not
        N.  The epoch counter orders "my writes are done" against
        "that sync started"; a thread either rides a sync that will
        cover it, or becomes the next syncer itself.
        """
        with self._sync_cond:
            self._write_epoch += 1
            my_epoch = self._write_epoch
            while True:
                if self._synced_epoch >= my_epoch:
                    # A sync that started after our writes already
                    # finished: we are durable for free.
                    self.metrics.bump(sync_coalesced=1)
                    return
                if not self._sync_in_progress:
                    break
                self._sync_cond.wait()
            self._sync_in_progress = True
            covers = self._write_epoch  # writes completed before we start
        os.sync()
        with self._sync_cond:
            self._synced_epoch = max(self._synced_epoch, covers)
            self._sync_in_progress = False
            self._sync_cond.notify_all()

    def _register(self, entry: VaultEntry, staged: dict) -> None:
        """Index-lock-held bookkeeping for a newly-assigned entry."""
        self.index[entry.digest] = entry
        self._digests.add(entry.digest)
        staged[entry.digest] = entry
        if entry.sig is not None:
            self.metrics.signatures_mined += 1
        # Incident edges must be applied in ingest-sequence order; the
        # caller holds the index lock across seq assignment and here.
        self.incident_index.add(entry)

    def load(
        self, digest: str, salvage: bool = False
    ) -> tuple[SnapFile | None, list[str]]:
        """Read one stored snap back; ``salvage`` tolerates damage."""
        path = self.blob_path(digest)
        with open(path, "rb") as fh:
            data = fh.read()
        if salvage:
            return salvage_decompress(data)
        return decompress_snap(data), []

    # ------------------------------------------------------------------
    # Query surface (the raw one; repro.fleet.query builds on this)
    # ------------------------------------------------------------------
    def select(
        self,
        machine: str | None = None,
        process: str | None = None,
        reason: str | None = None,
        since: int | None = None,
        until: int | None = None,
        group: str | None = None,
    ) -> list[VaultEntry]:
        """Manifest entries matching every given filter, ingest order.

        ``since``/``until`` filter on the snap's machine-local clock
        (inclusive), the index's timestamp key.
        """
        out = []
        with self._lock:
            entries = sorted(self.index.values(), key=lambda e: e.seq)
        for entry in entries:
            if machine is not None and entry.machine != machine:
                continue
            if process is not None and entry.process != process:
                continue
            if reason is not None and entry.reason != reason:
                continue
            if since is not None and entry.clock < since:
                continue
            if until is not None and entry.clock > until:
                continue
            if group is not None and entry.group != group:
                continue
            out.append(entry)
        return out

    def machines(self) -> list[str]:
        """Machine names with at least one stored snap."""
        with self._lock:
            return sorted({e.machine for e in self.index.values()})

    def __len__(self) -> int:
        return len(self.index)

    def store_bytes(self) -> int:
        """Total compressed bytes currently on disk."""
        total = 0
        for shard in range(self.shards):
            shard_dir = self._shard_dir(shard)
            for name in os.listdir(shard_dir):
                if name.endswith(BLOB_SUFFIX):
                    total += os.path.getsize(os.path.join(shard_dir, name))
        return total

    # ------------------------------------------------------------------
    # Mapfiles (reconstruction needs them; they travel with the vault)
    # ------------------------------------------------------------------
    def put_mapfile(self, mapfile: Mapfile) -> str:
        """Store a module mapfile, keyed by instrumented checksum."""
        path = os.path.join(
            self.root, MAPFILE_DIR, f"{mapfile.checksum}.map.json"
        )
        write_atomic(json.dumps(mapfile.to_dict()).encode(), path)
        self._mapfile_cache = None
        return path

    def mapfiles(self) -> list[Mapfile]:
        """Every mapfile stored alongside the snaps.

        Parsed copies are cached against the directory listing —
        signature mining resolves frames through mapfiles on every
        ingest, and re-parsing per snap would put JSON decoding on the
        hot path.
        """
        directory = os.path.join(self.root, MAPFILE_DIR)
        names = tuple(
            sorted(
                name
                for name in os.listdir(directory)
                if name.endswith(".map.json")
            )
        )
        cache = self._mapfile_cache
        if cache is None or cache[0] != names:
            loaded = [
                Mapfile.load(os.path.join(directory, name)) for name in names
            ]
            cache = (names, loaded)
            self._mapfile_cache = cache
        return list(cache[1])

    # ------------------------------------------------------------------
    # Crash-signature mining (triage metadata)
    # ------------------------------------------------------------------
    def sign(self, snap: SnapFile) -> str | None:
        """Mine the crash signature of one snap — best-effort metadata.

        Resolves frames through the vault's stored mapfiles (they are
        uploaded at session attach time, before any snap arrives) and
        never raises; non-fault snaps and unminable evidence yield
        None.  A pure function of (snap content, stored mapfiles), so
        :meth:`rebuild_index` re-derives identical signatures.
        """
        from repro.reconstruct.signature import snap_signature

        return snap_signature(snap, self.mapfiles())
