"""The snap vault: a sharded, indexed, on-disk store of TBSZ2 archives.

The paper's deployment (§3.6.1, §3.7.5) forwards every machine's snaps
to a central point where support engineers later query and reconstruct
them.  This module is that central point's disk format:

* **shards** — ``shard-00/ .. shard-NN/`` under the vault root; a snap
  lands in the shard named by its content hash, so load spreads evenly
  and shards can later be split across collectors;
* **content-hash dedupe** — the digest of the snap's canonical JSON is
  the blob filename; a group snap that fans out to N peers and arrives
  N times is stored once (§3.6.2's suppression argument, applied at
  the vault);
* **atomic writes** — blobs and index files go through temp-file +
  ``os.replace`` (:func:`repro.runtime.archive.write_atomic`), so the
  abrupt kills ``repro.chaos`` injects can never tear a stored archive;
* **JSON-lines manifest per shard** — ``manifest.jsonl``, append-only,
  one line per stored snap with everything queries filter on (machine,
  process, reason, clock, SYNC logical-thread ids, group-snap detail);
  a torn trailing line (kill mid-append) is skipped on load;
* **rebuildable index** — the in-memory index is derived purely from
  the manifests, and the manifests themselves can be regenerated from
  the archives via :meth:`SnapVault.rebuild_index`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.fleet.metrics import FleetMetrics
from repro.instrument.mapfile import Mapfile
from repro.reconstruct.recovery import recover_spans_salvage
from repro.runtime.archive import (
    compress_snap,
    decompress_snap,
    salvage_decompress,
    write_atomic,
)
from repro.runtime.records import ExtKind, ExtRecord
from repro.runtime.snap import SnapFile

#: Blob filename suffix inside a shard.
BLOB_SUFFIX = ".tbsz"

#: Manifest filename inside each shard directory.
MANIFEST = "manifest.jsonl"

#: Subdirectory where module mapfiles ride along with the evidence.
MAPFILE_DIR = "mapfiles"


class VaultError(ValueError):
    """The vault layout or a stored artifact is unusable."""


def content_digest(snap: SnapFile) -> str:
    """Content hash of a snap: sha256 over its canonical JSON.

    Computed on the *uncompressed* canonical form, so the digest is
    stable across compression levels and container versions.
    """
    canonical = json.dumps(snap.to_dict(), sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()[:32]


def mine_sync_ids(snap: SnapFile) -> list[int]:
    """Logical-thread ids of every SYNC record surviving in ``snap``.

    Mined with the salvage span recovery (never raises on damage), so
    incident grouping works even for snaps whose buffers are hurt.
    These ids are what link one machine's snap to its RPC partners'.
    """
    ids: set[int] = set()
    try:
        recovered = recover_spans_salvage(snap.buffers)
    except Exception:  # noqa: BLE001 — mining is best-effort metadata
        return []
    for span in recovered.spans:
        for record in span.records:
            if isinstance(record, ExtRecord) and record.kind == ExtKind.SYNC:
                if len(record.payload) >= 2:
                    ids.add(record.payload[1])
    return sorted(ids)


@dataclass
class VaultEntry:
    """One manifest line: the queryable metadata of a stored snap."""

    digest: str
    seq: int  # vault-wide ingest sequence number
    shard: int
    machine: str
    process: str
    pid: int
    reason: str
    clock: int
    size: int  # compressed container bytes
    sync_ids: list[int] = field(default_factory=list)
    #: Group-snap correlation (``detail`` of reason="group" snaps, and
    #: the initiating snap's own reason for everyone else).
    group: str | None = None
    initiator: str | None = None
    initiator_reason: str | None = None

    def to_dict(self) -> dict:
        return dict(vars(self))

    @classmethod
    def from_dict(cls, d: dict) -> "VaultEntry":
        return cls(**d)

    @classmethod
    def from_snap(
        cls, snap: SnapFile, digest: str, seq: int, shard: int, size: int
    ) -> "VaultEntry":
        detail = snap.detail if isinstance(snap.detail, dict) else {}
        return cls(
            digest=digest,
            seq=seq,
            shard=shard,
            machine=snap.machine_name,
            process=snap.process_name,
            pid=snap.pid,
            reason=snap.reason,
            clock=snap.clock,
            size=size,
            sync_ids=mine_sync_ids(snap),
            group=detail.get("group"),
            initiator=detail.get("initiator"),
            initiator_reason=detail.get("initiator_reason"),
        )


@dataclass
class StoreResult:
    """Outcome of one :meth:`SnapVault.put`."""

    digest: str
    deduped: bool
    entry: VaultEntry


class SnapVault:
    """A sharded snap store rooted at a directory."""

    def __init__(
        self,
        root: str,
        shards: int = 4,
        metrics: FleetMetrics | None = None,
        compress_level: int = 6,
    ):
        if shards < 1:
            raise VaultError(f"shard count must be >= 1, got {shards}")
        self.root = root
        self.shards = shards
        self.metrics = metrics or FleetMetrics()
        self.compress_level = compress_level
        #: digest -> entry, insertion-ordered by ingest sequence.
        self.index: dict[str, VaultEntry] = {}
        self._next_seq = 0
        os.makedirs(root, exist_ok=True)
        for shard in range(shards):
            os.makedirs(self._shard_dir(shard), exist_ok=True)
        os.makedirs(os.path.join(root, MAPFILE_DIR), exist_ok=True)
        self._load_manifests()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _shard_dir(self, shard: int) -> str:
        return os.path.join(self.root, f"shard-{shard:02d}")

    def shard_of(self, digest: str) -> int:
        """Content-addressed shard placement."""
        return int(digest[:8], 16) % self.shards

    def blob_path(self, digest: str) -> str:
        return os.path.join(
            self._shard_dir(self.shard_of(digest)), digest + BLOB_SUFFIX
        )

    # ------------------------------------------------------------------
    # Manifest / index
    # ------------------------------------------------------------------
    def _load_manifests(self) -> None:
        entries: list[VaultEntry] = []
        for shard in range(self.shards):
            path = os.path.join(self._shard_dir(shard), MANIFEST)
            if not os.path.exists(path):
                continue
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entries.append(VaultEntry.from_dict(json.loads(line)))
                    except (json.JSONDecodeError, TypeError, KeyError):
                        # A torn trailing line from a kill mid-append:
                        # the blob write is atomic, so rebuild_index can
                        # still restore this entry from the archive.
                        continue
        entries.sort(key=lambda e: e.seq)
        for entry in entries:
            self.index[entry.digest] = entry
        if entries:
            self._next_seq = max(e.seq for e in entries) + 1

    def _append_manifest(self, entry: VaultEntry) -> None:
        path = os.path.join(self._shard_dir(entry.shard), MANIFEST)
        with open(path, "a") as fh:
            fh.write(json.dumps(entry.to_dict()) + "\n")
            fh.flush()
        self.metrics.manifest_lines += 1

    def rebuild_index(self) -> int:
        """Regenerate every manifest from the stored archives.

        The archives are the source of truth; manifests are derived
        state.  Returns the number of entries recovered.  Sequence
        numbers are reassigned in digest order (ingest order is lost
        with the manifests — archives carry no vault timestamps).
        """
        self.index.clear()
        self._next_seq = 0
        self.metrics.index_rebuilds += 1
        recovered = 0
        for shard in range(self.shards):
            shard_dir = self._shard_dir(shard)
            lines = []
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(BLOB_SUFFIX):
                    continue
                digest = name[: -len(BLOB_SUFFIX)]
                path = os.path.join(shard_dir, name)
                with open(path, "rb") as fh:
                    data = fh.read()
                snap, _notes = salvage_decompress(data)
                if snap is None:
                    continue
                entry = VaultEntry.from_snap(
                    snap, digest, seq=self._next_seq, shard=shard,
                    size=len(data),
                )
                self._next_seq += 1
                self.index[entry.digest] = entry
                lines.append(json.dumps(entry.to_dict()))
                recovered += 1
            manifest = os.path.join(shard_dir, MANIFEST)
            write_atomic(
                ("\n".join(lines) + "\n" if lines else "").encode(), manifest
            )
        return recovered

    # ------------------------------------------------------------------
    # Store / load
    # ------------------------------------------------------------------
    def put(self, snap: SnapFile) -> StoreResult:
        """Store one snap; duplicates (by content hash) are skipped."""
        digest = content_digest(snap)
        if digest in self.index:
            self.metrics.dedupe_hits += 1
            return StoreResult(
                digest=digest, deduped=True, entry=self.index[digest]
            )
        data = compress_snap(snap, self.compress_level)
        shard = self.shard_of(digest)
        write_atomic(data, self.blob_path(digest))
        entry = VaultEntry.from_snap(
            snap, digest, seq=self._next_seq, shard=shard, size=len(data)
        )
        self._next_seq += 1
        self.index[entry.digest] = entry
        self._append_manifest(entry)
        self.metrics.ingested += 1
        self.metrics.bytes_written += len(data)
        return StoreResult(digest=digest, deduped=False, entry=entry)

    def load(
        self, digest: str, salvage: bool = False
    ) -> tuple[SnapFile | None, list[str]]:
        """Read one stored snap back; ``salvage`` tolerates damage."""
        path = self.blob_path(digest)
        with open(path, "rb") as fh:
            data = fh.read()
        if salvage:
            return salvage_decompress(data)
        return decompress_snap(data), []

    # ------------------------------------------------------------------
    # Query surface (the raw one; repro.fleet.query builds on this)
    # ------------------------------------------------------------------
    def select(
        self,
        machine: str | None = None,
        process: str | None = None,
        reason: str | None = None,
        since: int | None = None,
        until: int | None = None,
        group: str | None = None,
    ) -> list[VaultEntry]:
        """Manifest entries matching every given filter, ingest order.

        ``since``/``until`` filter on the snap's machine-local clock
        (inclusive), the index's timestamp key.
        """
        out = []
        for entry in sorted(self.index.values(), key=lambda e: e.seq):
            if machine is not None and entry.machine != machine:
                continue
            if process is not None and entry.process != process:
                continue
            if reason is not None and entry.reason != reason:
                continue
            if since is not None and entry.clock < since:
                continue
            if until is not None and entry.clock > until:
                continue
            if group is not None and entry.group != group:
                continue
            out.append(entry)
        return out

    def machines(self) -> list[str]:
        """Machine names with at least one stored snap."""
        return sorted({e.machine for e in self.index.values()})

    def __len__(self) -> int:
        return len(self.index)

    def store_bytes(self) -> int:
        """Total compressed bytes currently on disk."""
        total = 0
        for shard in range(self.shards):
            shard_dir = self._shard_dir(shard)
            for name in os.listdir(shard_dir):
                if name.endswith(BLOB_SUFFIX):
                    total += os.path.getsize(os.path.join(shard_dir, name))
        return total

    # ------------------------------------------------------------------
    # Mapfiles (reconstruction needs them; they travel with the vault)
    # ------------------------------------------------------------------
    def put_mapfile(self, mapfile: Mapfile) -> str:
        """Store a module mapfile, keyed by instrumented checksum."""
        path = os.path.join(
            self.root, MAPFILE_DIR, f"{mapfile.checksum}.map.json"
        )
        write_atomic(json.dumps(mapfile.to_dict()).encode(), path)
        return path

    def mapfiles(self) -> list[Mapfile]:
        """Every mapfile stored alongside the snaps."""
        out = []
        directory = os.path.join(self.root, MAPFILE_DIR)
        for name in sorted(os.listdir(directory)):
            if name.endswith(".map.json"):
                out.append(Mapfile.load(os.path.join(directory, name)))
        return out
