"""Retention policy and compaction planning for the snap vault.

TraceBack's premise is that evidence of a first fault survives until a
human reads it (§2: buffers outlive the process) — but the vault is
append-only, so dead-lettered evidence, superseded incidents, and old
runs accumulate forever.  This module is the declarative half of the
GC: a :class:`RetentionPolicy` says what may go, and
:func:`plan_compaction` turns it into an exact, inspectable
:class:`CompactionPlan` that ``tbtrace gc --dry-run`` prints and
:meth:`SnapVault.compact` then applies verbatim.

Budgets are **per shard** (shards are the unit of manifest rewrite and
of cross-collector load spreading):

* ``max_age`` — entries whose snap clock is older than ``now -
  max_age`` expire (``now`` defaults to the newest clock in the vault,
  so a vault nobody writes to does not silently age out);
* ``max_entries_per_shard`` — keep the newest N entries of each shard
  (by ingest seq), expire the rest;
* ``max_bytes_per_shard`` — keep the newest entries of each shard
  while their compressed blob bytes fit the budget.

Pins override budgets — evidence a human (or the uplink) still needs
never goes, no matter how over-budget the shard is:

* **open incidents** (``pin_open_incidents``, on by default): the GC
  unit is the incident, never the snap.  An incident is *open* while
  any of its member snaps is individually retained; compaction either
  keeps a whole incident or collects a whole incident, so it can never
  split the evidence of one distributed fault (and a freshly-arrived
  snap keeps the entire history of its incident alive);
* **dead-letter / uplink pins** (``pin_dead_letters``): every
  registered pin source (collectors register their queued and
  dead-lettered digests — see ``Collector.pinned_digests``) keeps the
  vault's copy of that content: a dead letter may redeliver, and
  deleting the stored twin would turn that redelivery into a re-store
  of evidence the engineer believed was already safe;
* **bucket exemplars** (``pin_bucket_exemplars``, on by default): each
  open triage bucket keeps its exemplar snap — the evidence a future
  ``tbtrace replay`` would confirm the bucket's diagnosis against —
  and, because exemplar pins apply before the open-incident rule, the
  exemplar's whole incident stays alive with it;
* ``pin_digests`` — explicit, caller-supplied pins.

Every entry kept *only* because a pin overrode its expiry bumps
``pins_honored``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.index import IncidentIndex
    from repro.fleet.store import VaultEntry


class RetentionError(ValueError):
    """The retention policy is not executable as written."""


@dataclass(frozen=True)
class RetentionPolicy:
    """Declarative budgets + pin rules for one compaction pass.

    A policy with no budget set retains everything (an explicit no-op:
    ``tbtrace gc`` refuses it rather than guessing).
    """

    #: Expire entries older than this many clock ticks (None = no age
    #: budget).  Age is measured against ``now`` at plan time.
    max_age: int | None = None
    #: Keep at most this many entries per shard, newest first.
    max_entries_per_shard: int | None = None
    #: Keep at most this many compressed blob bytes per shard.
    max_bytes_per_shard: int | None = None
    #: Never collect an incident that still has a retained member.
    pin_open_incidents: bool = True
    #: Honor registered pin sources (collector queues / dead letters).
    pin_dead_letters: bool = True
    #: Explicit digests that must be retained regardless of budgets.
    pin_digests: frozenset[str] = frozenset()
    #: Keep each triage bucket's exemplar snap alive: a future
    #: ``tbtrace replay`` confirms a bucket's diagnosis against its
    #: exemplar, so the bucket must never lose its last real evidence.
    pin_bucket_exemplars: bool = True

    def __post_init__(self) -> None:
        for name in ("max_age", "max_entries_per_shard",
                     "max_bytes_per_shard"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise RetentionError(f"{name} must be >= 0, got {value}")

    @property
    def bounded(self) -> bool:
        """Does any budget actually expire anything?"""
        return (
            self.max_age is not None
            or self.max_entries_per_shard is not None
            or self.max_bytes_per_shard is not None
        )


@dataclass
class CompactionPlan:
    """The exact outcome of applying a policy to a vault snapshot.

    ``compact()`` applies a plan verbatim; ``--dry-run`` prints one and
    stops.  The two therefore always agree on the victim set (the plan
    is computed under the vault's index lock, so it is a consistent
    snapshot; entries ingested after planning are untouched either way).
    """

    policy: RetentionPolicy
    now: int
    #: Entries to delete, ingest order.
    victims: list["VaultEntry"] = field(default_factory=list)
    #: Entries kept, ingest order (pins included).
    retained: list["VaultEntry"] = field(default_factory=list)
    #: Digests kept only because a pin overrode their expiry.
    pinned: list[str] = field(default_factory=list)
    #: Compressed bytes the victims' blobs occupy.
    reclaimed_bytes: int = 0

    @property
    def victim_digests(self) -> set[str]:
        return {e.digest for e in self.victims}

    def to_dict(self) -> dict:
        """Machine-readable form (``tbtrace gc --json``)."""
        return {
            "now": self.now,
            "victims": [e.digest for e in self.victims],
            "retained": len(self.retained),
            "pins_honored": len(self.pinned),
            "reclaimed_bytes": self.reclaimed_bytes,
        }

    def describe(self) -> list[str]:
        """The documented ``tbtrace gc`` plan listing, one line each."""
        lines = [
            f"plan: delete {len(self.victims)} snap(s), reclaim "
            f"{self.reclaimed_bytes} bytes, keep {len(self.retained)}, "
            f"{len(self.pinned)} pin(s) honored"
        ]
        for entry in self.victims:
            lines.append(
                f"  {entry.digest[:12]}  seq {entry.seq}  "
                f"{entry.machine}/{entry.process}  {entry.reason}  "
                f"clock {entry.clock}  {entry.size}B"
            )
        return lines


def _expired_by_budgets(
    entries: list["VaultEntry"], policy: RetentionPolicy, now: int
) -> set[str]:
    """Digests the budgets alone would expire (before any pin rule)."""
    expired: set[str] = set()
    if policy.max_age is not None:
        horizon = now - policy.max_age
        expired.update(e.digest for e in entries if e.clock < horizon)
    by_shard: dict[int, list["VaultEntry"]] = {}
    for entry in entries:
        by_shard.setdefault(entry.shard, []).append(entry)
    for members in by_shard.values():
        members.sort(key=lambda e: e.seq, reverse=True)  # newest first
        if policy.max_entries_per_shard is not None:
            expired.update(
                e.digest for e in members[policy.max_entries_per_shard:]
            )
        if policy.max_bytes_per_shard is not None:
            spent = 0
            for entry in members:
                spent += entry.size
                if spent > policy.max_bytes_per_shard:
                    expired.add(entry.digest)
    return expired


def plan_compaction(
    entries: list["VaultEntry"],
    policy: RetentionPolicy,
    incident_index: "IncidentIndex | None" = None,
    pin_sources: Iterable = (),
    now: int | None = None,
) -> CompactionPlan:
    """Apply a policy to a consistent entry snapshot.

    Pure function of its inputs — callers (``SnapVault.compact``, the
    dry-run CLI) hold whatever locks make the snapshot consistent.
    """
    if not policy.bounded:
        raise RetentionError(
            "retention policy sets no budget; refusing to plan a no-op "
            "(set max_age, max_entries_per_shard, or max_bytes_per_shard)"
        )
    entries = sorted(entries, key=lambda e: e.seq)
    if now is None:
        now = max((e.clock for e in entries), default=0)

    expired = _expired_by_budgets(entries, policy, now)
    pins: set[str] = set(policy.pin_digests)
    if policy.pin_dead_letters:
        for source in pin_sources:
            try:
                pins.update(source())
            except Exception:  # noqa: BLE001 — a dying pin source must
                continue  # never block GC; its pins just lapse.
    live = {e.digest for e in entries} - expired | pins

    pinned: set[str] = pins & expired
    if policy.pin_bucket_exemplars and incident_index is not None:
        # Bucket exemplars pin *before* the open-incident rule runs, so
        # a pinned exemplar makes its whole incident count as open — an
        # open bucket joins incidents as a pin source, it does not
        # carve single snaps out of them.
        known = {e.digest for e in entries}
        exemplars = incident_index.exemplar_digests() & known
        pinned |= (exemplars & expired) - pins
        live |= exemplars
    if policy.pin_open_incidents and incident_index is not None:
        # Incident atomicity: any retained member keeps the whole
        # component alive (the incident is still open).
        for component in incident_index.components():
            members = set(component.digests)
            if members & live:
                pinned |= (members & expired) - pins
                live |= members
    victims = [e for e in entries if e.digest not in live]
    return CompactionPlan(
        policy=policy,
        now=now,
        victims=victims,
        retained=[e for e in entries if e.digest in live],
        pinned=sorted(pinned),
        reclaimed_bytes=sum(e.size for e in victims),
    )
