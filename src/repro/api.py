"""High-level convenience API: compile, instrument, run, reconstruct.

The full pipeline is composable from the subpackages; this module wires
the common path — "I have a program, show me what it did when it died" —
into three calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument import InstrumentConfig, Mapfile, instrument_module
from repro.isa.module import Module
from repro.lang.minic import compile_source
from repro.reconstruct import ProcessTrace, Reconstructor, render_flat, select_view
from repro.runtime import (
    RuntimeConfig,
    ServiceProcess,
    SnapFile,
    TraceBackRuntime,
)
from repro.vm import Machine, Process


@dataclass
class TracedRun:
    """The outcome of a traced execution."""

    process: Process
    runtime: TraceBackRuntime
    mapfiles: list[Mapfile]
    status: str
    snap: SnapFile | None

    @property
    def output(self) -> list[str]:
        """The guest program's printed output."""
        return self.process.output

    def trace(self) -> ProcessTrace | None:
        """Reconstruct the snap (if any) into per-thread line traces."""
        if self.snap is None:
            return None
        return Reconstructor(self.mapfiles).reconstruct(self.snap)

    def view(self) -> str:
        """The fault-directed text view of the trace."""
        trace = self.trace()
        if trace is None:
            return "(no snap was taken)"
        return select_view(trace)

    def flat_view(self, tid: int = 0) -> str:
        """Flat line-by-line history of one thread."""
        trace = self.trace()
        if trace is None:
            return "(no snap was taken)"
        found = trace.thread(tid)
        return render_flat(found) if found else f"(no trace for thread {tid})"


class TraceSession:
    """Builder for traced runs: add modules, run, reconstruct.

    Example::

        session = TraceSession()
        session.add_minic(source, name="app")
        run = session.run()
        print(run.view())
    """

    def __init__(
        self,
        machine: Machine | None = None,
        process_name: str = "app",
        runtime_config: RuntimeConfig | None = None,
        instrument_config: InstrumentConfig | None = None,
        service: ServiceProcess | None = None,
    ):
        self.machine = machine or Machine()
        self.process = self.machine.create_process(process_name)
        self.runtime = TraceBackRuntime(
            self.process, runtime_config or RuntimeConfig(), service=service
        )
        self.instrument_config = instrument_config or InstrumentConfig()
        self.mapfiles: list[Mapfile] = []
        self._entry_module: str | None = None

    # ------------------------------------------------------------------
    def add_module(self, module: Module, instrument: bool = True) -> Module:
        """Instrument (optionally) and load a module; returns what was
        actually loaded."""
        if instrument:
            result = instrument_module(module, self.instrument_config)
            self.mapfiles.append(result.mapfile)
            module = result.module
        self.process.load_module(module)
        if self._entry_module is None and module.entry is not None:
            self._entry_module = module.name
        return module

    def add_minic(
        self,
        source: str,
        name: str = "main",
        file_name: str | None = None,
        instrument: bool = True,
    ) -> Module:
        """Compile MiniC source and add it as a module."""
        bounds = self.instrument_config.mode == "il"
        module = compile_source(
            source, module_name=name, file_name=file_name, bounds_checks=bounds
        )
        return self.add_module(module, instrument=instrument)

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 50_000_000) -> TracedRun:
        """Start the entry module's main thread and run to completion.

        A stalled machine (hang/deadlock) triggers the external-snap
        path, exactly like the paper's snap utility for unresponsive
        processes.
        """
        if self._entry_module is None:
            raise ValueError("no module with an entry point was added")
        self.process.start(self._entry_module)
        status = self.machine.run(max_cycles=max_cycles)
        if status == "stalled" and self.runtime.config.policy.hang:
            self.runtime.snap_external(reason="hang", detail={"status": status})
        snap = self.runtime.snap_store.latest()
        return TracedRun(
            process=self.process,
            runtime=self.runtime,
            mapfiles=self.mapfiles,
            status=status,
            snap=snap,
        )


def trace_program(
    source: str,
    name: str = "app",
    mode: str = "native",
    max_cycles: int = 50_000_000,
) -> TracedRun:
    """One-shot: compile MiniC, instrument, run, snap on faults.

    ``mode`` is "native" or "il" (the managed-language pipeline).
    """
    session = TraceSession(
        process_name=name,
        instrument_config=InstrumentConfig(mode=mode),
    )
    session.add_minic(source, name=name)
    return session.run(max_cycles=max_cycles)
