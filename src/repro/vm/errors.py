"""Fault and exception model of the TBVM process virtual machine.

TBVM distinguishes, exactly as the paper does:

* **Hardware faults** — access violations, divide-by-zero, illegal
  instructions: raised synchronously by an instruction, analogous to the
  machine checks / SEH exceptions / UNIX signals TraceBack intercepts
  first-chance.
* **Software exceptions** — raised by the ``THROW`` instruction or a
  syscall (e.g. ``SLEEP`` with a negative argument, the Oracle bug from
  the paper's §6.1), analogous to language-level exceptions.
* **Signals** — asynchronous, delivered from outside the thread
  (Control-C, kill).  A ``KILL`` signal is special: the process is torn
  down with *no* hooks run, the ``kill -9`` case whose trace must still
  reconstruct from the surviving mapped buffers.

All exception codes share one numeric space so handler tables can filter
on them; codes below 100 are reserved for faults the VM itself raises.
"""

from __future__ import annotations

from dataclasses import dataclass


class ExcCode:
    """Well-known exception codes (the VM-reserved space is < 100)."""

    ACCESS_VIOLATION = 1
    DIVIDE_BY_ZERO = 2
    ILLEGAL_INSTRUCTION = 3
    STACK_OVERFLOW = 4
    ILLEGAL_ARGUMENT = 5  # e.g. SLEEP with a negative duration
    RPC_SERVER_FAULT = 6  # the RPC_E_SERVERFAULT analog (paper Figure 6)
    ARRAY_BOUNDS = 7  # IL-mode bounds check failure (Java analog)

    #: First code available to user programs' THROW.
    FIRST_USER = 100

    _NAMES = {
        1: "ACCESS_VIOLATION",
        2: "DIVIDE_BY_ZERO",
        3: "ILLEGAL_INSTRUCTION",
        4: "STACK_OVERFLOW",
        5: "ILLEGAL_ARGUMENT",
        6: "RPC_SERVER_FAULT",
        7: "ARRAY_BOUNDS",
    }

    @classmethod
    def name(cls, code: int) -> str:
        """Human-readable name for ``code``."""
        return cls._NAMES.get(code, f"USER_{code}")


class Signal:
    """Asynchronous signal numbers (the UNIX-signal analog)."""

    INT = 2  # Control-C: fatal unless handled
    KILL = 9  # abrupt termination, nothing runs, no hooks
    SEGV = 11  # raised by the VM for access violations when unhandled
    TERM = 15  # polite termination request

    _NAMES = {2: "SIGINT", 9: "SIGKILL", 11: "SIGSEGV", 15: "SIGTERM"}

    @classmethod
    def name(cls, signum: int) -> str:
        """Human-readable name for ``signum``."""
        return cls._NAMES.get(signum, f"SIG{signum}")


@dataclass
class VMFault(Exception):
    """Internal control-flow exception the interpreter raises when an
    instruction faults.

    The execution engine catches it and runs the first-chance /
    unwinding machinery; it never escapes to callers of
    :meth:`Machine.run` unless the VM itself is broken.
    """

    code: int
    pc: int
    detail: str = ""

    def __str__(self) -> str:
        text = f"{ExcCode.name(self.code)} at pc={self.pc}"
        return f"{text}: {self.detail}" if self.detail else text


class VMError(Exception):
    """A bug in the embedding program (not in guest code): bad module,
    unresolved import, misconfigured machine, and so on."""


class EngineSelectionError(VMError):
    """An unknown TBVM engine tier was requested.

    Raised by :class:`~repro.vm.machine.Machine` for a bad ``engine=``
    argument or an unrecognized ``TBVM_ENGINE`` environment value,
    naming the valid tiers so a typo'd selection fails loudly instead
    of silently running a different interpreter.
    """

    def __init__(self, engine: object, valid: tuple, source: str):
        self.engine = engine
        self.valid = tuple(valid)
        super().__init__(
            f"unknown TBVM engine {engine!r} (from {source}); "
            f"valid tiers: {', '.join(self.valid)}"
        )
