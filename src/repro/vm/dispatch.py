"""Predecoded fast-dispatch execution engine for TBVM.

The reference interpreter (:meth:`repro.vm.machine.Machine.step`) walks a
~30-arm ``if/elif`` chain on every instruction.  That cost dominates
instrumented execution — the classic dynamic-binary-instrumentation
dispatch problem — and it is pure overhead: for a given loaded module
the opcode, operand fields, branch targets, and import bindings of each
instruction never change.

This module lowers each decoded :class:`~repro.isa.instructions.Instr`
to a *closure-bound handler* at load time.  A handler is a plain
function ``handler(machine, thread)`` with everything that is constant
for its code address pre-bound as closure cells:

* operand register indexes and immediates,
* the instruction's absolute ``pc``, its fall-through ``pc + 1``, and
  (for branches/calls) the absolute taken target,
* the process :class:`~repro.vm.memory.Memory` and its bound
  ``load``/``store`` methods,
* the folded ALU lambda for table-dispatched ALU ops, and
* the module's import-binding list for ``CALLX``.

The hot loop (:meth:`Machine._run_slice_fast`) then becomes
fetch-handler / call with no per-step ``Op`` comparison cascade.

The two engines must be *bit-identical*: same architectural state, same
cycle counts, same fault PCs, same trace-buffer contents.  Every handler
below mirrors the corresponding ``_exec`` arm exactly — including
side-effect ordering on the faulting paths (e.g. ``PUSH`` decrements
``sp`` before the store that may fault) — and the differential suite in
``tests/vm/test_differential.py`` enforces the equivalence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.isa.instructions import Instr, Op
from repro.vm.errors import ExcCode, VMFault
from repro.vm.thread import SIGRET_RA, TRAMPOLINE_RA, Frame, Thread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.machine import Machine
    from repro.vm.memory import Memory

WORD_MASK = 0xFFFFFFFF

#: Cycles charged for a host-function CALLX when the host fn returns None.
HOST_CALL_COST = 25

#: A predecoded instruction handler: executes one instruction, updating
#: ``thread.pc`` itself (the interpreter loop never advances the pc).
Handler = Callable[["Machine", Thread], None]


def _s32(value: int) -> int:
    """Interpret a 32-bit word as signed."""
    value &= WORD_MASK
    return value - (1 << 32) if value >= (1 << 31) else value


# ----------------------------------------------------------------------
# ALU / branch dispatch tables (shared with the reference interpreter)
# ----------------------------------------------------------------------
def _div(a: int, b: int, pc: int) -> int:
    if b == 0:
        raise VMFault(ExcCode.DIVIDE_BY_ZERO, pc, "DIV")
    q = abs(_s32(a)) // abs(_s32(b))
    if (_s32(a) < 0) != (_s32(b) < 0):
        q = -q
    return q & WORD_MASK


def _mod(a: int, b: int, pc: int) -> int:
    if b == 0:
        raise VMFault(ExcCode.DIVIDE_BY_ZERO, pc, "MOD")
    sa = _s32(a)
    r = abs(sa) % abs(_s32(b))
    return (-r if sa < 0 else r) & WORD_MASK


ALU_R = {
    Op.ADD: lambda a, b, pc: (a + b) & WORD_MASK,
    Op.SUB: lambda a, b, pc: (a - b) & WORD_MASK,
    Op.MUL: lambda a, b, pc: (a * b) & WORD_MASK,
    Op.DIV: _div,
    Op.MOD: _mod,
    Op.AND: lambda a, b, pc: a & b,
    Op.OR: lambda a, b, pc: a | b,
    Op.XOR: lambda a, b, pc: a ^ b,
    Op.SHL: lambda a, b, pc: (a << (b & 31)) & WORD_MASK,
    Op.SHR: lambda a, b, pc: (a & WORD_MASK) >> (b & 31),
    Op.SLT: lambda a, b, pc: 1 if _s32(a) < _s32(b) else 0,
    Op.SLE: lambda a, b, pc: 1 if _s32(a) <= _s32(b) else 0,
    Op.SEQ: lambda a, b, pc: 1 if a == b else 0,
    Op.SNE: lambda a, b, pc: 1 if a != b else 0,
}

ALU_I = {
    Op.ANDI: lambda a, imm: a & (imm & 0xFFFF),
    Op.ORI: lambda a, imm: a | (imm & 0xFFFF),
    Op.XORI: lambda a, imm: a ^ (imm & 0xFFFF),
    Op.SHLI: lambda a, imm: (a << (imm & 31)) & WORD_MASK,
    Op.SHRI: lambda a, imm: (a & WORD_MASK) >> (imm & 31),
    Op.SLTI: lambda a, imm: 1 if _s32(a) < imm else 0,
    Op.MULI: lambda a, imm: (a * imm) & WORD_MASK,
}

BRANCH = {
    Op.BZ: lambda a, b: a == 0,
    Op.BNZ: lambda a, b: a != 0,
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: _s32(a) < _s32(b),
    Op.BGE: lambda a, b: _s32(a) >= _s32(b),
}


def build_handlers(loaded, memory: "Memory") -> list[Handler]:
    """Lower a loaded module's decode cache to one handler per word.

    Called from :meth:`LoadedModule.refresh_decode_cache` — after import
    binding and after the load hooks have rewritten code (DAG rebasing,
    TLS fixups), so the closures capture the final form.
    """
    base = loaded.code_base
    bindings = loaded.import_bindings
    return [
        _build_one(instr, base + i, memory, bindings)
        for i, instr in enumerate(loaded.decoded)
    ]


def _build_one(
    instr: Instr, pc: int, mem: "Memory", bindings: list
) -> Handler:
    op = instr.op
    rd = instr.rd
    rs = instr.rs
    rt = instr.rt
    imm = instr.imm
    nxt = pc + 1
    load = mem.load
    store = mem.store

    if op is Op.ADDI:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            regs[rd] = (regs[rs] + imm) & WORD_MASK
            thread.pc = nxt

    elif op is Op.LDW:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            regs[rd] = load((regs[rs] + imm) & WORD_MASK, pc)
            thread.pc = nxt

    elif op is Op.STW:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            store((regs[rs] + imm) & WORD_MASK, regs[rd], pc)
            thread.pc = nxt

    elif op is Op.MOVI:
        value = imm & WORD_MASK

        def h(machine: "Machine", thread: Thread) -> None:
            thread.regs[rd] = value
            thread.pc = nxt

    elif op is Op.MOV:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            regs[rd] = regs[rs]
            thread.pc = nxt

    elif op is Op.MOVHI:
        value = (imm & 0xFFFF) << 16

        def h(machine: "Machine", thread: Thread) -> None:
            thread.regs[rd] = value
            thread.pc = nxt

    elif op is Op.ADD:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            regs[rd] = (regs[rs] + regs[rt]) & WORD_MASK
            thread.pc = nxt

    elif op is Op.SUB:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            regs[rd] = (regs[rs] - regs[rt]) & WORD_MASK
            thread.pc = nxt

    elif op in ALU_R:
        fn = ALU_R[op]

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            regs[rd] = fn(regs[rs], regs[rt], pc)
            thread.pc = nxt

    elif op in ALU_I:
        fn_i = ALU_I[op]

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            regs[rd] = fn_i(regs[rs], imm)
            thread.pc = nxt

    elif op is Op.PUSH:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            sp = (regs[12] - 1) & WORD_MASK
            regs[12] = sp
            store(sp, regs[rd], pc)
            thread.pc = nxt

    elif op is Op.POP:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            regs[rd] = load(regs[12], pc)
            regs[12] = (regs[12] + 1) & WORD_MASK
            thread.pc = nxt

    elif op is Op.BR:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            thread.pc = target

    elif op is Op.BZ:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            thread.pc = target if thread.regs[rd] == 0 else nxt

    elif op is Op.BNZ:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            thread.pc = target if thread.regs[rd] != 0 else nxt

    elif op is Op.BEQ:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            thread.pc = target if regs[rd] == regs[rs] else nxt

    elif op is Op.BNE:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            thread.pc = target if regs[rd] != regs[rs] else nxt

    elif op is Op.BLT:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            thread.pc = target if _s32(regs[rd]) < _s32(regs[rs]) else nxt

    elif op is Op.BGE:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            thread.pc = target if _s32(regs[rd]) >= _s32(regs[rs]) else nxt

    elif op is Op.JMP:

        def h(machine: "Machine", thread: Thread) -> None:
            thread.pc = thread.regs[rd]

    elif op is Op.JTAB:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            thread.pc = load((regs[rs] + regs[rd]) & WORD_MASK, pc)

    elif op is Op.CALL:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            sp = (regs[12] - 1) & WORD_MASK
            regs[12] = sp
            store(sp, nxt, pc)
            thread.frames.append(
                Frame(entry_pc=target, return_pc=nxt, entry_sp=sp)
            )
            thread.pc = target

    elif op is Op.CALLR:

        def h(machine: "Machine", thread: Thread) -> None:
            machine._do_call(thread, mem, thread.regs[rd], pc)

    elif op is Op.CALLX:

        def h(machine: "Machine", thread: Thread) -> None:
            binding = bindings[imm]
            if callable(binding):
                cost = binding(thread)
                machine.cycles += cost if cost is not None else HOST_CALL_COST
                thread.pc = nxt
            else:
                machine._do_call(thread, mem, binding, pc)

    elif op is Op.RET:

        def h(machine: "Machine", thread: Thread) -> None:
            regs = thread.regs
            ra = load(regs[12], pc)
            regs[12] = (regs[12] + 1) & WORD_MASK
            if thread.frames:
                thread.frames.pop()
            if ra == TRAMPOLINE_RA:
                thread.process.thread_finished(thread, regs[0])
                return
            if ra == SIGRET_RA:
                signum = getattr(thread, "current_signum", 0)
                thread.process.hooks.signal_return(thread, signum)
                assert thread.interrupted_pc is not None
                thread.pc = thread.interrupted_pc
                thread.interrupted_pc = None
                return
            thread.pc = ra

    elif op is Op.SYS:

        def h(machine: "Machine", thread: Thread) -> None:
            machine._syscall(thread, thread.process, imm)
            if thread.pc == pc and thread.runnable():
                thread.pc = nxt  # pragma: no cover - no syscall leaves pc

    elif op is Op.THROW:

        def h(machine: "Machine", thread: Thread) -> None:
            raise VMFault(thread.regs[rd], pc, "THROW")

    elif op is Op.HALT:

        def h(machine: "Machine", thread: Thread) -> None:
            thread.process.exit_normally(thread.regs[0])

    elif op is Op.NOP:

        def h(machine: "Machine", thread: Thread) -> None:
            thread.pc = nxt

    elif op is Op.TLSLD:

        def h(machine: "Machine", thread: Thread) -> None:
            thread.regs[rd] = thread.tls[imm]
            thread.pc = nxt

    elif op is Op.TLSST:

        def h(machine: "Machine", thread: Thread) -> None:
            thread.tls[imm] = thread.regs[rd]
            thread.pc = nxt

    elif op is Op.ORM:
        bits = imm & 0xFFFF
        or_word = mem.or_word

        def h(machine: "Machine", thread: Thread) -> None:
            or_word(thread.regs[rd], bits, pc)
            thread.pc = nxt

    elif op is Op.STDAG:
        header = 0x80000000 | ((imm & 0xFFFFF) << 11)

        def h(machine: "Machine", thread: Thread) -> None:
            store(thread.regs[rd], header, pc)
            thread.pc = nxt

    elif op is Op.BSENT:
        target = nxt + imm

        def h(machine: "Machine", thread: Thread) -> None:
            if load(thread.regs[rd], pc) == 0xFFFFFFFF:
                thread.pc = target
            else:
                thread.pc = nxt

    else:  # pragma: no cover - every opcode is handled above

        def h(machine: "Machine", thread: Thread) -> None:
            raise VMFault(ExcCode.ILLEGAL_INSTRUCTION, pc, f"{op.name}")

    return h
