"""Segmented, word-addressed process memory.

Every address names one 32-bit word.  Memory is a set of
:class:`Segment` objects with read/write/execute permissions; any access
outside a segment, or violating its permissions, raises an
``ACCESS_VIOLATION`` fault — this is what makes the paper's failure
scenarios real (the Figure 6 bug is a write through a pointer into
read-only data; the Fidelity bug is ``memcpy`` overruns corrupting
neighbouring structures, which here show up as wild reads/writes).

Segments may be backed by a :class:`MappedFile`, the analog of the
memory-mapped files TraceBack keeps its trace buffers in: the backing
store is owned by the host, so it survives abrupt process termination
and can be read by the reconstruction tooling afterwards.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.vm.errors import ExcCode, VMError, VMFault

WORD_MASK = 0xFFFFFFFF


@dataclass
class MappedFile:
    """Host-owned backing store for a mapped segment.

    The TraceBack runtime allocates trace buffers inside one of these so
    that "buffers reside in memory mapped files, so they can be easily
    copied (by another process) if the program terminates or becomes
    unresponsive" (§3.1).
    """

    name: str
    words: list[int] = field(default_factory=list)

    @classmethod
    def zeroed(cls, name: str, size: int) -> "MappedFile":
        """A new mapping of ``size`` zero words."""
        return cls(name=name, words=[0] * size)

    def snapshot(self) -> list[int]:
        """An independent copy of the current contents."""
        return list(self.words)


@dataclass
class Segment:
    """One mapped region: ``[base, base + size)`` words."""

    base: int
    size: int
    name: str
    readable: bool = True
    writable: bool = True
    executable: bool = False
    words: list[int] = field(default_factory=list)
    mapped_file: MappedFile | None = None

    def __post_init__(self) -> None:
        if self.mapped_file is not None:
            self.words = self.mapped_file.words
        elif not self.words:
            self.words = [0] * self.size
        if len(self.words) != self.size:
            raise VMError(
                f"segment {self.name}: backing store has {len(self.words)} "
                f"words, size says {self.size}"
            )

    @property
    def end(self) -> int:
        """One past the last valid address."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this segment."""
        return self.base <= addr < self.end


class Memory:
    """The address space of one process."""

    def __init__(self) -> None:
        self._segments: list[Segment] = []
        self._bases: list[int] = []
        # Last-hit caches for the interpreter's load/store hot path:
        # (base, end, words) of the two most recent readable / writable
        # segments (primary + victim — pointer-heavy guests alternate
        # between stack and a data segment, which a single entry would
        # ping-pong on).  Guest locality makes these hit almost always,
        # skipping the bisect + permission check.  Safe because a
        # segment's base, size, backing list, and permissions never
        # change after construction; invalidated on map/unmap.
        self._read_hit: tuple[int, int, list[int] | None] = (1, 0, None)
        self._read_hit2: tuple[int, int, list[int] | None] = (1, 0, None)
        self._write_hit: tuple[int, int, list[int] | None] = (1, 0, None)
        self._write_hit2: tuple[int, int, list[int] | None] = (1, 0, None)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_segment(self, segment: Segment) -> Segment:
        """Insert ``segment``; overlapping an existing segment is a host bug."""
        for existing in self._segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise VMError(
                    f"segment {segment.name} [{segment.base}, {segment.end}) "
                    f"overlaps {existing.name} [{existing.base}, {existing.end})"
                )
        idx = bisect_right(self._bases, segment.base)
        self._segments.insert(idx, segment)
        self._bases.insert(idx, segment.base)
        self._read_hit = self._read_hit2 = (1, 0, None)
        self._write_hit = self._write_hit2 = (1, 0, None)
        return segment

    def unmap(self, segment: Segment) -> None:
        """Remove ``segment`` from the address space."""
        idx = self._segments.index(segment)
        del self._segments[idx]
        del self._bases[idx]
        self._read_hit = self._read_hit2 = (1, 0, None)
        self._write_hit = self._write_hit2 = (1, 0, None)

    def segment_at(self, addr: int) -> Segment | None:
        """The segment containing ``addr``, or ``None``."""
        idx = bisect_right(self._bases, addr) - 1
        if idx < 0:
            return None
        segment = self._segments[idx]
        return segment if segment.contains(addr) else None

    def segments(self) -> list[Segment]:
        """All mapped segments, ascending by base."""
        return list(self._segments)

    def highest_end(self) -> int:
        """One past the highest mapped address (0 when empty)."""
        return max((seg.end for seg in self._segments), default=0)

    # ------------------------------------------------------------------
    # Access (each raises VMFault on violation)
    # ------------------------------------------------------------------
    def load(self, addr: int, pc: int = -1) -> int:
        """Read the word at ``addr``."""
        base, end, words = self._read_hit
        if base <= addr < end:
            return words[addr - base]
        hit2 = self._read_hit2
        if hit2[0] <= addr < hit2[1]:
            self._read_hit2 = self._read_hit
            self._read_hit = hit2
            return hit2[2][addr - hit2[0]]
        segment = self.segment_at(addr)
        if segment is None or not segment.readable:
            raise VMFault(ExcCode.ACCESS_VIOLATION, pc, f"read of {addr:#x}")
        self._read_hit2 = self._read_hit
        self._read_hit = (segment.base, segment.end, segment.words)
        return segment.words[addr - segment.base]

    def store(self, addr: int, value: int, pc: int = -1) -> None:
        """Write ``value`` to the word at ``addr``."""
        base, end, words = self._write_hit
        if base <= addr < end:
            words[addr - base] = value & WORD_MASK
            return
        hit2 = self._write_hit2
        if hit2[0] <= addr < hit2[1]:
            self._write_hit2 = self._write_hit
            self._write_hit = hit2
            hit2[2][addr - hit2[0]] = value & WORD_MASK
            return
        segment = self.segment_at(addr)
        if segment is None or not segment.writable:
            raise VMFault(ExcCode.ACCESS_VIOLATION, pc, f"write of {addr:#x}")
        self._write_hit2 = self._write_hit
        self._write_hit = (segment.base, segment.end, segment.words)
        segment.words[addr - segment.base] = value & WORD_MASK

    def or_word(self, addr: int, bits: int, pc: int = -1) -> None:
        """``mem[addr] |= bits`` — the lightweight probe's memory op."""
        base, end, words = self._write_hit
        if base <= addr < end:
            index = addr - base
            words[index] = (words[index] | bits) & WORD_MASK
            return
        segment = self.segment_at(addr)
        if segment is None or not segment.writable:
            raise VMFault(ExcCode.ACCESS_VIOLATION, pc, f"or-write of {addr:#x}")
        self._write_hit2 = self._write_hit
        self._write_hit = (segment.base, segment.end, segment.words)
        index = addr - segment.base
        segment.words[index] = (segment.words[index] | bits) & WORD_MASK

    def fetch(self, addr: int) -> int:
        """Fetch the instruction word at ``addr`` (requires execute)."""
        segment = self.segment_at(addr)
        if segment is None or not segment.executable:
            raise VMFault(ExcCode.ACCESS_VIOLATION, addr, f"execute of {addr:#x}")
        return segment.words[addr - segment.base]

    # ------------------------------------------------------------------
    # Host-side helpers (no permission checks: the host is the kernel)
    # ------------------------------------------------------------------
    def read_block(self, addr: int, count: int) -> list[int]:
        """Host read of ``count`` words starting at ``addr``."""
        return [self.load(addr + i) for i in range(count)]

    def write_block(self, addr: int, values: list[int]) -> None:
        """Host write of consecutive words; ignores write protection."""
        for i, value in enumerate(values):
            segment = self.segment_at(addr + i)
            if segment is None:
                raise VMError(f"host write outside memory at {addr + i:#x}")
            segment.words[addr + i - segment.base] = value & WORD_MASK

    def read_cstr(self, addr: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string (one char code per word)."""
        chars = []
        for i in range(limit):
            word = self.load(addr + i)
            if word == 0:
                break
            chars.append(chr(word & 0x10FFFF))
        return "".join(chars)
