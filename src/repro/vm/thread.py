"""Threads of a TBVM process.

Each thread has its own registers, program counter, stack segment, and a
64-slot thread-local-storage array — the analog of the Windows TIB that
TraceBack's probes address through the FS segment register.  TraceBack
reserves TLS slot 60 for the per-thread trace-buffer pointer and slot 61
as the probe-register spill slot.

Threads also carry a *shadow call stack* of :class:`Frame` records.  The
guest's real stack holds return addresses (pushed by ``CALL``), but the
VM additionally tracks frames so the exception unwinder can walk
activation records the way a real SEH / signal-frame walker does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.vm.memory import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vm.machine import Process

#: Number of TLS slots per thread (Windows guarantees 64 fast slots).
TLS_SLOTS = 64

#: TLS slot holding the trace-buffer pointer (the paper's FS:0xF00).
TLS_TRACE_PTR = 60

#: TLS slot probes spill the probe register into when it is live.
TLS_PROBE_SPILL = 61

#: Sentinel return address: a RET to this ends the thread normally.
TRAMPOLINE_RA = 0x7FFFFFF0

#: Sentinel return address marking the return from a signal handler.
SIGRET_RA = 0x7FFFFFF1


class ThreadState(enum.Enum):
    """Lifecycle of a thread."""

    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    KILLED = "killed"  # torn down by SIGKILL; no exit hooks ran


@dataclass
class Frame:
    """One shadow activation record.

    ``entry_sp`` is the stack pointer at function entry (just after the
    return address was pushed); the unwinder restores
    ``entry_sp - frame_size`` when dispatching to a handler in this
    frame.
    """

    entry_pc: int
    return_pc: int
    entry_sp: int


@dataclass
class PendingSignal:
    """A signal queued for delivery at the next scheduling point."""

    signum: int


class Thread:
    """One guest thread."""

    def __init__(
        self,
        tid: int,
        process: "Process",
        entry_pc: int,
        stack: Segment,
        arg: int = 0,
        name: str | None = None,
    ):
        self.tid = tid
        self.process = process
        self.name = name or f"thread-{tid}"
        self.regs = [0] * 16
        self.pc = entry_pc
        self.entry_pc = entry_pc
        self.tls = [0] * TLS_SLOTS
        self.stack = stack
        self.state = ThreadState.READY
        self.frames: list[Frame] = []
        self.exit_code: int | None = None
        self.started = False
        self.instructions = 0
        self.wake_cycle: int | None = None
        self.block_reason: str | None = None
        #: The outgoing RPC this thread is blocked on, if any.
        self.rpc_waiting: object | None = None
        #: True for the process's initial ("main") thread: its return
        #: from the entry function exits the whole process.
        self.is_initial = False
        #: The incoming RPC this (service) thread was spawned to serve.
        #: Distinct from ``rpc_waiting``: a service thread may itself
        #: issue RPCs (nested call chains, §5.1).
        self.rpc_serving: object | None = None
        #: pc to resume at after a signal handler returns via SIGRET_RA.
        self.interrupted_pc: int | None = None
        #: True while the thread is executing inside the TraceBack
        #: runtime (exceptions it causes there are suppressed, §3.7).
        self.in_runtime = False
        #: Last module this thread executed in — seeds the slice loops'
        #: module lookup so consecutive slices skip ``find_code``.
        #: Purely an optimization: stale values are caught by the pc
        #: range / ``unloaded`` checks.
        self.code_hint = None

        # Initial stack: sp at the top of the stack segment; entry arg
        # in r0; returning from the entry function ends the thread.
        sp = stack.end
        sp -= 1
        stack.words[sp - stack.base] = TRAMPOLINE_RA
        self.regs[12] = sp
        self.regs[0] = arg
        self.frames.append(Frame(entry_pc=entry_pc, return_pc=TRAMPOLINE_RA, entry_sp=sp))

    # ------------------------------------------------------------------
    @property
    def sp(self) -> int:
        """Current stack pointer."""
        return self.regs[12]

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs[12] = value & 0xFFFFFFFF

    def runnable(self) -> bool:
        """Whether the scheduler may pick this thread."""
        return self.state is ThreadState.READY

    def alive(self) -> bool:
        """Whether the thread has not terminated."""
        return self.state in (ThreadState.READY, ThreadState.BLOCKED)

    def block(self, reason: str, wake_cycle: int | None = None) -> None:
        """Move to BLOCKED, optionally with a timed wake-up."""
        self.state = ThreadState.BLOCKED
        self.block_reason = reason
        self.wake_cycle = wake_cycle

    def unblock(self) -> None:
        """Return a blocked thread to the ready queue."""
        if self.state is ThreadState.BLOCKED:
            self.state = ThreadState.READY
            self.block_reason = None
            self.wake_cycle = None

    def finish(self, code: int) -> None:
        """Normal thread termination."""
        self.state = ThreadState.DONE
        self.exit_code = code

    def kill(self) -> None:
        """Abrupt termination: no cleanup, no hooks (SIGKILL semantics)."""
        self.state = ThreadState.KILLED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Thread {self.tid} {self.name!r} pc={self.pc} "
            f"state={self.state.value}>"
        )
