"""Syscall numbers and kernel-time costs for TBVM.

Syscalls take arguments in ``r0``..``r5`` and return a result in ``r0``.
Each has a *cost* in machine cycles, charged when it executes — this is
how the simulation models the paper's observation that "real
applications have more system calls, more disk accesses ... all of these
factors reduce the impact of instrumentation on performance": cycles
spent in the kernel or blocked on I/O dilute the relative cost of probe
instructions.
"""

from __future__ import annotations


class Sys:
    """Syscall numbers (the ``imm16`` of the ``SYS`` instruction)."""

    PRINT_INT = 1  # print r0 as a decimal integer
    PRINT_STR = 2  # print NUL-terminated string at address r0
    PUTC = 3  # print the character code in r0
    EXIT_THREAD = 4  # end this thread with code r0
    EXIT_PROCESS = 5  # end the process with code r0
    SBRK = 6  # allocate r0 words of heap; returns base address
    CLOCK = 7  # returns the machine real-time clock (RDTSC analog)
    SLEEP = 8  # block for r0 cycles; r0 < 0 raises ILLEGAL_ARGUMENT
    IO_READ = 9  # simulated input of r0 units; blocks for I/O latency
    IO_WRITE = 10  # simulated output of r0 units; blocks for I/O latency
    THREAD_CREATE = 11  # start thread at address r0 with argument r1
    LOCK = 12  # acquire mutex r0 (blocking)
    UNLOCK = 13  # release mutex r0
    RPC_CALL = 14  # r0=service, r1=arg addr, r2=arg len, r3=ret addr,
    #                r4=ret capacity; returns 0 or an exception code
    YIELD = 15  # give up the rest of the quantum
    RAND = 16  # deterministic per-process PRNG; returns 31-bit value
    GETTID = 17  # returns this thread's id
    SIGNAL = 18  # register handler address r1 for signal r0
    SNAP = 19  # TraceBack snap API (paper §3.6): request a snap, r0=reason
    ARG = 20  # returns the thread start argument


#: Kernel cycles charged per syscall (on top of any blocking latency).
COSTS: dict[int, int] = {
    Sys.PRINT_INT: 10,
    Sys.PRINT_STR: 20,
    Sys.PUTC: 5,
    Sys.EXIT_THREAD: 20,
    Sys.EXIT_PROCESS: 50,
    Sys.SBRK: 50,
    Sys.CLOCK: 5,
    Sys.SLEEP: 10,
    Sys.IO_READ: 60,
    Sys.IO_WRITE: 60,
    Sys.THREAD_CREATE: 200,
    Sys.LOCK: 12,
    Sys.UNLOCK: 10,
    Sys.RPC_CALL: 150,
    Sys.YIELD: 3,
    Sys.RAND: 6,
    Sys.GETTID: 3,
    Sys.SIGNAL: 15,
    Sys.SNAP: 300,
    Sys.ARG: 2,
}

#: Default cost for syscalls missing from COSTS.
DEFAULT_COST = 20
