"""The TBVM process virtual machine: processes, threads, scheduling,
exceptions, signals, and RPC plumbing.

A :class:`Machine` models one computer: a single CPU executing the
threads of its processes under a deterministic round-robin preemptive
scheduler, with a cycle counter that doubles as the real-time clock
(the RDTSC analog; distributed setups give each machine an independent
skew).  A :class:`Process` owns memory, loaded modules, threads, and the
hook list through which the TraceBack runtime gains control.

Faithfulness notes relative to the paper:

* Exceptions are dispatched **first-chance** to hooks before any handler
  search, then unwound through per-function handler ranges (the SEH
  analog).  Partially executed basic blocks at the fault point are real:
  the interpreter stops mid-block wherever the faulting instruction is.
* ``kill()`` is ``kill -9``: the process is torn down with no hooks and
  no guest cleanup.  Trace buffers survive because they live in
  host-owned :class:`~repro.vm.memory.MappedFile` objects.
* Blocking syscalls (sleep, I/O, locks, RPC) let the clock run while the
  CPU does other work — or fast-forward it when everything is blocked —
  so I/O-bound workloads dilute instrumentation overhead exactly the way
  the paper's SPECweb99 numbers show.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.isa.instructions import Op
from repro.isa.module import Module
from repro.vm.dispatch import (
    ALU_I as _ALU_I,
    ALU_R as _ALU_R,
    BRANCH as _BRANCH,
    HOST_CALL_COST,
    _s32,
)
from repro.vm.errors import (
    EngineSelectionError,
    ExcCode,
    Signal,
    VMError,
    VMFault,
)
from repro.vm.hooks import HookList, ProcessHooks
from repro.vm.loader import LoadedModule, Loader
from repro.vm.memory import MappedFile, Memory, Segment
from repro.vm.syscalls import COSTS, DEFAULT_COST, Sys
from repro.vm.thread import (
    SIGRET_RA,
    TRAMPOLINE_RA,
    Frame,
    Thread,
    ThreadState,
)

WORD_MASK = 0xFFFFFFFF

#: The execution engine tiers a Machine can run (see ``Machine.engine``).
#: ``fast`` (the default) is tier-2 predecoded closure dispatch;
#: ``block`` is the tier-3 block-compiled engine (:mod:`repro.vm.blocks`);
#: ``reference`` is the tier-1 ``step()`` if/elif interpreter.
ENGINES = ("fast", "block", "reference")

#: Environment variable overriding the default engine for new Machines.
ENGINE_ENV_VAR = "TBVM_ENGINE"

#: Default per-thread stack size in words.
STACK_WORDS = 8192

#: Scheduler quantum in instructions.
QUANTUM = 40


@dataclass
class RpcRequest:
    """One RPC in flight: the unit distributed tracing correlates.

    ``extra`` is the out-of-band payload channel the TraceBack runtime
    augments with its (runtime id, logical thread id, sequence) triple —
    the analog of a COM payload extension or JNI side channel (§5.1).
    """

    service: int
    args: list[int]
    caller_thread: Thread
    caller_process: "Process"
    ret_addr: int
    ret_cap: int
    extra: dict = field(default_factory=dict)
    #: Filled by the callee side on completion.
    extra_reply: dict = field(default_factory=dict)
    status: int | None = None
    result: list[int] = field(default_factory=list)
    callee_thread: Thread | None = None
    callee_process: "Process | None" = None
    #: Callee-side addresses of the marshaled argument and reply buffers.
    callee_arg_addr: int = 0
    callee_ret_addr: int = 0


class ExitState:
    """How a process ended."""

    RUNNING = "running"
    EXITED = "exited"  # HALT / EXIT_PROCESS
    FAULTED = "faulted"  # unhandled exception
    SIGNALED = "signaled"  # fatal signal default action
    KILLED = "killed"  # SIGKILL, nothing ran


class Process:
    """One guest process."""

    def __init__(self, machine: "Machine", name: str, pid: int):
        self.machine = machine
        self.name = name
        self.pid = pid
        self.memory = Memory()
        self.loader = Loader(self.memory)
        self.hooks = HookList()
        self.threads: dict[int, Thread] = {}
        self.output: list[str] = []
        self.mutex_owner: dict[int, int] = {}
        self.mutex_waiters: dict[int, list[Thread]] = {}
        self.rpc_services: dict[int, str] = {}
        self.signal_handlers: dict[int, int] = {}
        self.pending_signals: list[int] = []
        self.exit_state = ExitState.RUNNING
        self.exit_code: int | None = None
        self.fault: VMFault | None = None
        self.cycles_used = 0
        self._next_tid = 0
        self._alloc_base = 0x0100_0000
        self._rand_state = 0x1234_5678 ^ pid

    # ------------------------------------------------------------------
    # Setup API (host side)
    # ------------------------------------------------------------------
    def load_module(self, module: Module) -> LoadedModule:
        """Load a module, running module-load hooks before execution."""
        return self.loader.load(module, on_loaded=self.hooks.module_loaded)

    def unload_module(self, loaded: LoadedModule) -> None:
        """Unload a module (long-running-server scenario, §2.3)."""
        self.hooks.module_unloaded(loaded)
        self.loader.unload(loaded)

    def start(self, module_name: str | None = None) -> Thread:
        """Create the main thread at a loaded module's entry point."""
        modules = self.loader.modules()
        if not modules:
            raise VMError("no modules loaded")
        if module_name is None:
            loaded = modules[0]
        else:
            found = self.loader.module_named(module_name)
            if found is None:
                raise VMError(f"module {module_name!r} not loaded")
            loaded = found
        entry = loaded.code_base + loaded.module.entry_offset()
        thread = self.create_thread(entry, name="main")
        thread.is_initial = True
        return thread

    def create_thread(self, entry_pc: int, arg: int = 0, name: str | None = None) -> Thread:
        """Create a new thread (host side or THREAD_CREATE syscall)."""
        stack_base = self.alloc_words(STACK_WORDS)
        stack = self.memory.segment_at(stack_base)
        assert stack is not None
        tid = self._next_tid
        self._next_tid += 1
        thread = Thread(tid, self, entry_pc, stack, arg=arg, name=name)
        self.threads[tid] = thread
        self.machine.spawn_epoch += 1
        return thread

    def register_rpc_service(self, service: int, func_name: str) -> None:
        """Expose exported function ``func_name`` as RPC service ``service``."""
        self.rpc_services[service] = func_name

    def alloc_words(self, count: int, name: str = "heap") -> int:
        """Map a fresh zeroed segment of ``count`` words; returns its base."""
        base = self._alloc_base
        self._alloc_base = (base + count + 16) & ~15
        self.memory.map_segment(Segment(base=base, size=count, name=f"{name}@{base:#x}"))
        return base

    def map_buffer(self, name: str, size: int) -> tuple[int, MappedFile]:
        """Map a host-owned buffer (the runtime's trace-buffer mapping).

        Returns ``(base_address, mapped_file)``.  The mapped file is the
        host's handle: it remains readable after the process dies.
        """
        mapped = MappedFile.zeroed(name, size)
        base = self._alloc_base
        self._alloc_base = (base + size + 16) & ~15
        self.memory.map_segment(
            Segment(base=base, size=size, name=name, mapped_file=mapped)
        )
        return base, mapped

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the process can still run."""
        return self.exit_state == ExitState.RUNNING

    def kill(self) -> None:
        """``kill -9``: immediate teardown, no hooks, no guest cleanup."""
        observer = getattr(self, "_kill_observer", None)
        if observer is not None and self.exit_state == ExitState.RUNNING:
            # Host-side tap (replay recording): guest hooks stay silent,
            # but the kill itself is external nondeterminism.
            observer()
        self.exit_state = ExitState.KILLED
        for thread in self.threads.values():
            if thread.alive():
                thread.kill()

    def post_signal(self, signum: int) -> None:
        """Queue an asynchronous signal (KILL acts immediately)."""
        if signum == Signal.KILL:
            self.kill()
        else:
            self.pending_signals.append(signum)

    def exit_normally(self, code: int) -> None:
        """HALT / EXIT_PROCESS path."""
        self.hooks.process_exit(self, code)
        self.exit_state = ExitState.EXITED
        self.exit_code = code
        self._stop_threads()

    def die_from_fault(self, fault: VMFault) -> None:
        """Unhandled-exception death (hooks already notified)."""
        self.exit_state = ExitState.FAULTED
        self.fault = fault
        self.exit_code = fault.code
        self._stop_threads()

    def die_from_signal(self, signum: int) -> None:
        """Fatal signal default action."""
        self.exit_state = ExitState.SIGNALED
        self.exit_code = signum
        self._stop_threads()

    def _stop_threads(self) -> None:
        for thread in self.threads.values():
            if thread.alive():
                thread.state = ThreadState.DONE

    # ------------------------------------------------------------------
    def thread_finished(self, thread: Thread, code: int) -> None:
        """Common normal-termination path for threads."""
        thread.finish(code)
        if thread.rpc_serving is not None:
            request = thread.rpc_serving
            thread.rpc_serving = None
            self.hooks.rpc_callee_exit(thread, request)
            self.hooks.thread_exited(thread)
            self.machine.complete_rpc(request, status=0)
        else:
            self.hooks.thread_exited(thread)
        if getattr(thread, "is_initial", False) and self.alive:
            # The initial thread returning from its entry function ends
            # the process (C `main` semantics).
            self.exit_normally(code)

    def rand(self) -> int:
        """Deterministic per-process PRNG (31-bit)."""
        self._rand_state = (1103515245 * self._rand_state + 12345) & 0x7FFFFFFF
        return self._rand_state

    def main_thread(self) -> Thread | None:
        """Lowest-tid living thread (signal delivery target)."""
        for tid in sorted(self.threads):
            if self.threads[tid].alive():
                return self.threads[tid]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.pid} {self.name!r} {self.exit_state}>"


class Machine:
    """One simulated computer: CPU, clock, processes.

    ``engine`` selects the interpreter: ``"fast"`` (the default) runs the
    predecoded closure-dispatch engine in :mod:`repro.vm.dispatch`;
    ``"block"`` runs the tier-3 block-compiled engine in
    :mod:`repro.vm.blocks` (fused basic-block closures, falling back to
    fast dispatch at block exits and partial slices); ``"reference"``
    runs the original ``step()`` if/elif interpreter.  All tiers are
    bit-identical in architectural state, cycle counts, and trace
    output (enforced by ``tests/vm/test_differential.py``); the upper
    tiers exist purely for throughput.  The ``TBVM_ENGINE`` environment
    variable overrides the default for debugging; an unknown value
    raises :class:`~repro.vm.errors.EngineSelectionError`.
    """

    def __init__(
        self,
        name: str = "machine",
        clock_skew: int = 0,
        io_latency: int = 2000,
        engine: str | None = None,
    ):
        if engine is None:
            source = f"${ENGINE_ENV_VAR}"
            engine = os.environ.get(ENGINE_ENV_VAR, ENGINES[0])
        else:
            source = "Machine(engine=...)"
        if engine not in ENGINES:
            raise EngineSelectionError(engine, ENGINES, source)
        self.name = name
        self.engine = engine
        self.cycles = 0
        self.clock_skew = clock_skew
        self.io_latency = io_latency
        self.processes: list[Process] = []
        self._next_pid = 1
        self._rr_index = 0
        #: Bumped on every process/thread creation anywhere on the
        #: machine — the scheduler fast path's O(1) population guard.
        self.spawn_epoch = 0
        #: Set by a Network to route RPC off-machine; None = local only.
        self.rpc_router: Callable[[RpcRequest], None] | None = None
        #: Observers with slice_begin/slice_end methods, called around
        #: every scheduler slice (the replay recorder's capture point).
        self.slice_hooks: list = []

    # ------------------------------------------------------------------
    def now(self) -> int:
        """The machine's real-time clock (cycles + skew)."""
        return self.cycles + self.clock_skew

    def create_process(self, name: str) -> Process:
        """Create an empty process on this machine."""
        process = Process(self, name, self._next_pid)
        self._next_pid += 1
        self.processes.append(process)
        self.spawn_epoch += 1
        return process

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _live_threads(self) -> list[Thread]:
        return [
            thread
            for process in self.processes
            if process.alive
            for thread in process.threads.values()
            if thread.alive()
        ]

    def _wake_sleepers(self) -> None:
        for thread in self._live_threads():
            if (
                thread.state is ThreadState.BLOCKED
                and thread.wake_cycle is not None
                and thread.wake_cycle <= self.cycles
            ):
                thread.unblock()

    def run(self, max_cycles: int | None = None, quantum: int = QUANTUM) -> str:
        """Run until completion, deadlock, or the cycle limit.

        Returns ``"done"`` (no live threads remain), ``"stalled"``
        (live threads exist but none can ever run — a hang/deadlock, the
        case the paper's external snap utility exists for), or
        ``"limit"``.
        """
        while True:
            if max_cycles is not None and self.cycles >= max_cycles:
                return "limit"
            self._wake_sleepers()
            live = self._live_threads()
            if not live:
                return "done"
            runnable = [t for t in live if t.runnable()]
            if not runnable:
                timed = [
                    t.wake_cycle
                    for t in live
                    if t.state is ThreadState.BLOCKED and t.wake_cycle is not None
                ]
                if timed:
                    # Everything is waiting on the clock: fast-forward.
                    self.cycles = max(self.cycles, min(timed))
                    continue
                return "stalled"
            self._rr_index %= len(runnable)
            thread = runnable[self._rr_index]
            self._rr_index += 1
            single = len(live) == 1
            if single:
                # Spawn epoch *before* the slice: any creation during it
                # (thread_create, a new process, an RPC service thread
                # in another process) bumps the counter and must send us
                # back to the full scheduler.
                epoch = self.spawn_epoch
            hooks = self.slice_hooks
            if hooks:
                for hook in hooks:
                    hook.slice_begin(thread)
                self.run_thread_slice(thread, quantum)
                for hook in hooks:
                    hook.slice_end(thread)
            else:
                self.run_thread_slice(thread, quantum)
            if not single:
                continue
            # Single-thread fast path: while this thread is the whole
            # machine (no other thread to wake, schedule, or prefer)
            # and stays runnable, re-slice without rebuilding the
            # bookkeeping lists — the round-robin outcome is forced.
            # Any change in the thread/process population falls back to
            # the full scheduler.
            process = thread.process
            while (
                process.exit_state == ExitState.RUNNING
                and thread.runnable()
                and self.spawn_epoch == epoch
                and not (max_cycles is not None and self.cycles >= max_cycles)
            ):
                # What the full path's modulo arithmetic leaves behind
                # for a single runnable thread.
                self._rr_index = 1
                hooks = self.slice_hooks
                if hooks:
                    for hook in hooks:
                        hook.slice_begin(thread)
                    self.run_thread_slice(thread, quantum)
                    for hook in hooks:
                        hook.slice_end(thread)
                else:
                    self.run_thread_slice(thread, quantum)

    def run_thread_slice(self, thread: Thread, quantum: int) -> None:
        """Run up to ``quantum`` instructions of one thread."""
        process = thread.process
        if not thread.started:
            thread.started = True
            process.hooks.thread_started(thread)
            if not thread.alive():  # a hook may have killed the process
                return
        if process.pending_signals and thread is process.main_thread():
            self._deliver_signal(thread, process.pending_signals.pop(0))
            if not thread.runnable():
                return
        if self.engine == "fast":
            self._run_slice_fast(thread, process, quantum)
            return
        if self.engine == "block":
            self._run_slice_block(thread, process, quantum)
            return
        for _ in range(quantum):
            if not process.alive or not thread.runnable():
                return
            self.step(thread)

    def _run_slice_fast(
        self, thread: Thread, process: Process, quantum: int
    ) -> None:
        """The fast engine's hot loop: predecoded handler dispatch.

        Mirrors ``step()`` exactly, but hoists the per-instruction work
        the reference interpreter repeats every step: the module lookup
        is cached while the pc stays inside one module's code range, and
        the opcode cascade is gone — each code word was lowered to a
        closure at load time (``loaded.handlers``).  The handler list is
        re-read through the attribute on every iteration so a decode-
        cache refresh (code rewriting) takes effect immediately, just as
        it does for the reference engine's ``loaded.decoded`` reads.
        """
        loader = process.loader
        loaded: LoadedModule | None = thread.code_hint
        if loaded is not None and not loaded.unloaded:
            code_base = loaded.code_base
            code_end = loaded.code_end
        else:
            code_base = 1
            code_end = 0
        ready = ThreadState.READY
        for _ in range(quantum):
            if process.exit_state != ExitState.RUNNING or thread.state is not ready:
                return
            pc = thread.pc
            if pc < code_base or pc >= code_end or loaded.unloaded:
                loaded = loader.find_code(pc)
                thread.code_hint = loaded
                if loaded is None:
                    self._fault(
                        thread,
                        VMFault(ExcCode.ACCESS_VIOLATION, pc,
                                f"execute of unmapped {pc:#x}"),
                    )
                    code_base = 1
                    code_end = 0
                    continue
                code_base = loaded.code_base
                code_end = loaded.code_end
            self.cycles += 1
            process.cycles_used += 1
            thread.instructions += 1
            try:
                loaded.handlers[pc - code_base](self, thread)
            except VMFault as fault:
                self._fault(thread, fault)

    def _run_slice_block(
        self, thread: Thread, process: Process, quantum: int
    ) -> None:
        """The tier-3 hot loop: compiled-unit dispatch.

        Each iteration either executes one fused unit (when the pc sits
        on a compiled entry *and* the unit fits the remaining quantum —
        compiled units never straddle a slice boundary, so replay's
        forced slices and ``chunk=1`` breakpoint stepping stay exact) or
        falls back to one tier-2 handler step, bit-identical to
        :meth:`_run_slice_fast`.  The block table is compiled lazily on
        first execution and re-read through the attribute every
        iteration, so a decode-cache refresh (code rewriting) drops and
        rebuilds it just like the tier-2 handler list.
        """
        from repro.vm.blocks import compile_blocks

        loader = process.loader
        loaded: LoadedModule | None = thread.code_hint
        if loaded is not None and not loaded.unloaded:
            code_base = loaded.code_base
            code_end = loaded.code_end
        else:
            code_base = 1
            code_end = 0
        ready = ThreadState.READY
        running = ExitState.RUNNING
        remaining = quantum
        while remaining > 0:
            if process.exit_state != running or thread.state is not ready:
                return
            pc = thread.pc
            if pc < code_base or pc >= code_end or loaded.unloaded:
                loaded = loader.find_code(pc)
                thread.code_hint = loaded
                if loaded is None:
                    self._fault(
                        thread,
                        VMFault(ExcCode.ACCESS_VIOLATION, pc,
                                f"execute of unmapped {pc:#x}"),
                    )
                    code_base = 1
                    code_end = 0
                    remaining -= 1
                    continue
                code_base = loaded.code_base
                code_end = loaded.code_end
            table = loaded.block_table
            if table is None:
                table = compile_blocks(loaded)
                loaded.block_table = table
            unit = table.get(pc - code_base)
            if unit is not None:
                n, fn = unit
                if n <= remaining:
                    before = thread.instructions
                    try:
                        fn(self, thread)
                    except VMFault as fault:
                        remaining -= thread.instructions - before
                        self._fault(thread, fault)
                        continue
                    remaining -= n
                    continue
            self.cycles += 1
            process.cycles_used += 1
            thread.instructions += 1
            try:
                loaded.handlers[pc - code_base](self, thread)
            except VMFault as fault:
                self._fault(thread, fault)
            remaining -= 1

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _deliver_signal(self, thread: Thread, signum: int) -> None:
        process = thread.process
        process.hooks.signal(thread, signum)
        if not process.alive:
            return  # a hook (e.g. snap policy) terminated the process
        handler = process.signal_handlers.get(signum)
        if handler is None:
            process.die_from_signal(signum)
            return
        # Synthesize a call to the guest handler; RET through SIGRET_RA
        # resumes the interrupted context.
        thread.interrupted_pc = thread.pc
        thread.current_signum = signum
        thread.sp -= 1
        thread.process.memory.store(thread.sp, SIGRET_RA)
        thread.frames.append(
            Frame(entry_pc=handler, return_pc=SIGRET_RA, entry_sp=thread.sp)
        )
        thread.regs[0] = signum
        thread.pc = handler

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def dispatch_rpc(self, request: RpcRequest) -> None:
        """Route an outgoing RPC: via the network if attached, else to a
        local process registering the service."""
        if self.rpc_router is not None:
            self.rpc_router(request)
            return
        self.deliver_rpc_locally(request)

    def deliver_rpc_locally(self, request: RpcRequest) -> None:
        """Find a local process serving the request and start a service
        thread in it."""
        for process in self.processes:
            if process.alive and request.service in process.rpc_services:
                spawn_service_thread(process, request)
                return
        self.complete_rpc(request, status=ExcCode.RPC_SERVER_FAULT)

    def complete_rpc(self, request: RpcRequest, status: int) -> None:
        """Finish an RPC: copy the reply, set status, wake the caller."""
        if request.status is not None:
            return  # already completed (e.g. fault after exit)
        request.status = status
        if request.callee_process is not None and request.ret_cap > 0:
            try:
                request.result = request.callee_process.memory.read_block(
                    request.callee_ret_addr, request.ret_cap
                )
            except VMFault:
                request.result = []
        caller = request.caller_thread
        if request.result and request.ret_cap:
            words = request.result[: request.ret_cap]
            for i, word in enumerate(words):
                request.caller_process.memory.store(request.ret_addr + i, word)
        caller.regs[0] = status
        request.caller_process.hooks.rpc_caller_return(caller, request)
        caller.rpc_waiting = None
        caller.unblock()

    # ------------------------------------------------------------------
    # Reference interpreter
    # ------------------------------------------------------------------
    def step(self, thread: Thread) -> None:
        """Execute one instruction of ``thread``.

        This is the **reference interpreter**: one if/elif dispatch per
        instruction.  The fast engine (:mod:`repro.vm.dispatch`) must
        stay bit-identical to it; change semantics here first, then
        mirror them in the handler builder.
        """
        process = thread.process
        loaded = process.loader.find_code(thread.pc)
        if loaded is None:
            self._fault(thread, VMFault(ExcCode.ACCESS_VIOLATION, thread.pc,
                                        f"execute of unmapped {thread.pc:#x}"))
            return
        instr = loaded.decoded[thread.pc - loaded.code_base]
        self.cycles += 1
        process.cycles_used += 1
        thread.instructions += 1
        try:
            self._exec(thread, process, loaded, instr)
        except VMFault as fault:
            self._fault(thread, fault)

    def _exec(
        self, thread: Thread, process: Process, loaded: LoadedModule, instr: Instr_t
    ) -> None:
        op = instr.op
        regs = thread.regs
        pc = thread.pc
        mem = process.memory

        if op is Op.ADDI:
            regs[instr.rd] = (regs[instr.rs] + instr.imm) & WORD_MASK
        elif op is Op.LDW:
            regs[instr.rd] = mem.load((regs[instr.rs] + instr.imm) & WORD_MASK, pc)
        elif op is Op.STW:
            mem.store((regs[instr.rs] + instr.imm) & WORD_MASK, regs[instr.rd], pc)
        elif op is Op.MOVI:
            regs[instr.rd] = instr.imm & WORD_MASK
        elif op is Op.MOV:
            regs[instr.rd] = regs[instr.rs]
        elif op is Op.MOVHI:
            regs[instr.rd] = (instr.imm & 0xFFFF) << 16
        elif op in _ALU_R:
            regs[instr.rd] = _ALU_R[op](regs[instr.rs], regs[instr.rt], pc)
        elif op in _ALU_I:
            regs[instr.rd] = _ALU_I[op](regs[instr.rs], instr.imm)
        elif op is Op.PUSH:
            thread.sp -= 1
            mem.store(thread.sp, regs[instr.rd], pc)
        elif op is Op.POP:
            regs[instr.rd] = mem.load(thread.sp, pc)
            thread.sp += 1
        elif op is Op.BR:
            thread.pc = pc + 1 + instr.imm
            return
        elif op in _BRANCH:
            if _BRANCH[op](regs[instr.rd], regs[instr.rs]):
                thread.pc = pc + 1 + instr.imm
                return
        elif op is Op.JMP:
            thread.pc = regs[instr.rd]
            return
        elif op is Op.JTAB:
            thread.pc = mem.load((regs[instr.rs] + regs[instr.rd]) & WORD_MASK, pc)
            return
        elif op is Op.CALL:
            self._do_call(thread, mem, pc + 1 + instr.imm, pc)
            return
        elif op is Op.CALLR:
            self._do_call(thread, mem, regs[instr.rd], pc)
            return
        elif op is Op.CALLX:
            binding = loaded.import_bindings[instr.imm]
            if callable(binding):
                cost = binding(thread)
                self.cycles += cost if cost is not None else HOST_CALL_COST
            else:
                self._do_call(thread, mem, binding, pc)
                return
        elif op is Op.RET:
            self._do_ret(thread, mem, pc)
            return
        elif op is Op.SYS:
            self._syscall(thread, process, instr.imm)
            if not thread.runnable() or thread.pc != pc:
                return
        elif op is Op.THROW:
            raise VMFault(regs[instr.rd], pc, "THROW")
        elif op is Op.HALT:
            process.exit_normally(regs[0])
            return
        elif op is Op.NOP:
            pass
        elif op is Op.TLSLD:
            regs[instr.rd] = thread.tls[instr.imm]
        elif op is Op.TLSST:
            thread.tls[instr.imm] = regs[instr.rd]
        elif op is Op.ORM:
            mem.or_word(regs[instr.rd], instr.imm & 0xFFFF, pc)
        elif op is Op.STDAG:
            mem.store(regs[instr.rd], 0x80000000 | ((instr.imm & 0xFFFFF) << 11), pc)
        elif op is Op.BSENT:
            if mem.load(regs[instr.rd], pc) == 0xFFFFFFFF:
                thread.pc = pc + 1 + instr.imm
                return
        else:  # pragma: no cover - every opcode is handled above
            raise VMFault(ExcCode.ILLEGAL_INSTRUCTION, pc, f"{op.name}")
        thread.pc = pc + 1

    # ------------------------------------------------------------------
    def _do_call(self, thread: Thread, mem: Memory, target: int, pc: int) -> None:
        thread.sp -= 1
        mem.store(thread.sp, pc + 1, pc)
        thread.frames.append(
            Frame(entry_pc=target, return_pc=pc + 1, entry_sp=thread.sp)
        )
        thread.pc = target

    def _do_ret(self, thread: Thread, mem: Memory, pc: int) -> None:
        ra = mem.load(thread.sp, pc)
        thread.sp += 1
        if thread.frames:
            thread.frames.pop()
        if ra == TRAMPOLINE_RA:
            thread.process.thread_finished(thread, thread.regs[0])
            return
        if ra == SIGRET_RA:
            signum = getattr(thread, "current_signum", 0)
            thread.process.hooks.signal_return(thread, signum)
            assert thread.interrupted_pc is not None
            thread.pc = thread.interrupted_pc
            thread.interrupted_pc = None
            return
        thread.pc = ra

    # ------------------------------------------------------------------
    # Exception dispatch (first-chance -> handler search -> unwinding)
    # ------------------------------------------------------------------
    def _fault(self, thread: Thread, fault: VMFault) -> None:
        process = thread.process
        if thread.in_runtime:
            # Exceptions raised while inside the TraceBack runtime are
            # suppressed (§3.7) — here that is a host bug, so surface it.
            raise VMError(f"runtime code faulted: {fault}")
        process.hooks.first_chance(thread, fault)
        if not process.alive or not thread.alive():
            return  # a snap policy terminated the process

        if self._unwind_to_handler(thread, fault):
            return

        if thread.rpc_serving is not None:
            # A service thread died: the RPC layer converts the fault to
            # a server-fault status for the caller (Figure 6 scenario).
            request = thread.rpc_serving
            thread.rpc_serving = None
            thread.finish(-fault.code)
            process.hooks.rpc_callee_exit(thread, request)
            process.hooks.thread_exited(thread)
            self.complete_rpc(request, status=ExcCode.RPC_SERVER_FAULT)
            return

        process.hooks.unhandled(thread, fault)
        if process.alive:
            process.die_from_fault(fault)

    def _unwind_to_handler(self, thread: Thread, fault: VMFault) -> bool:
        process = thread.process
        frames = thread.frames
        # Candidate (frame index, pc-in-frame): innermost first.
        candidates: list[tuple[int, int]] = []
        if frames:
            candidates.append((len(frames) - 1, thread.pc))
            for idx in range(len(frames) - 1, 0, -1):
                candidates.append((idx - 1, frames[idx].return_pc - 1))
        for frame_idx, pc in candidates:
            loaded = process.loader.find_code(pc)
            if loaded is None:
                continue
            rel = pc - loaded.code_base
            func = loaded.module.func_at(rel)
            if func is None:
                continue
            for handler in func.handlers:
                if handler.matches(rel, fault.code):
                    frame = frames[frame_idx]
                    del frames[frame_idx + 1 :]
                    thread.sp = frame.entry_sp - func.frame_size
                    thread.regs[0] = fault.code
                    thread.pc = loaded.code_base + handler.handler
                    return True
        return False

    # ------------------------------------------------------------------
    # Syscalls
    # ------------------------------------------------------------------
    def _syscall(self, thread: Thread, process: Process, number: int) -> None:
        process.hooks.syscall(thread, number)
        cost = COSTS.get(number, DEFAULT_COST)
        self.cycles += cost
        process.cycles_used += cost
        regs = thread.regs
        pc = thread.pc

        if number == Sys.PRINT_INT:
            process.output.append(str(_s32(regs[0])))
        elif number == Sys.PRINT_STR:
            process.output.append(process.memory.read_cstr(regs[0]))
        elif number == Sys.PUTC:
            process.output.append(chr(regs[0] & 0x10FFFF))
        elif number == Sys.EXIT_THREAD:
            process.thread_finished(thread, _s32(regs[0]))
            return
        elif number == Sys.EXIT_PROCESS:
            process.exit_normally(_s32(regs[0]))
            return
        elif number == Sys.SBRK:
            regs[0] = process.alloc_words(max(1, regs[0]))
        elif number == Sys.CLOCK:
            regs[0] = self.now() & WORD_MASK
        elif number == Sys.SLEEP:
            duration = _s32(regs[0])
            if duration < 0:
                raise VMFault(ExcCode.ILLEGAL_ARGUMENT, pc,
                              f"sleep({duration})")
            thread.pc = pc + 1
            thread.block("sleep", wake_cycle=self.cycles + duration)
            return
        elif number in (Sys.IO_READ, Sys.IO_WRITE):
            units = max(1, regs[0])
            thread.pc = pc + 1
            thread.block("io", wake_cycle=self.cycles + self.io_latency * units)
            return
        elif number == Sys.THREAD_CREATE:
            child = process.create_thread(regs[0], arg=regs[1])
            regs[0] = child.tid
        elif number == Sys.LOCK:
            self._lock(thread, process, regs[0])
            if not thread.runnable():
                thread.pc = pc + 1
                return
        elif number == Sys.UNLOCK:
            self._unlock(process, regs[0])
        elif number == Sys.RPC_CALL:
            self._rpc_call(thread, process)
            thread.pc = pc + 1
            return
        elif number == Sys.YIELD:
            pass
        elif number == Sys.RAND:
            regs[0] = process.rand()
        elif number == Sys.GETTID:
            regs[0] = thread.tid
        elif number == Sys.SIGNAL:
            process.signal_handlers[regs[0]] = regs[1]
        elif number == Sys.SNAP:
            process.hooks.snap_request(thread, regs[0])
        elif number == Sys.ARG:
            pass  # the argument is already in r0 at thread start
        else:
            raise VMFault(ExcCode.ILLEGAL_INSTRUCTION, pc, f"syscall {number}")
        thread.pc = pc + 1

    def _lock(self, thread: Thread, process: Process, mutex: int) -> None:
        owner = process.mutex_owner.get(mutex)
        if owner is None:
            process.mutex_owner[mutex] = thread.tid
        elif owner == thread.tid:
            pass  # recursive acquire is a no-op
        else:
            process.mutex_waiters.setdefault(mutex, []).append(thread)
            thread.block(f"lock-{mutex}")

    def _unlock(self, process: Process, mutex: int) -> None:
        waiters = process.mutex_waiters.get(mutex, [])
        if waiters:
            waiter = waiters.pop(0)
            process.mutex_owner[mutex] = waiter.tid
            waiter.unblock()
        else:
            process.mutex_owner.pop(mutex, None)

    def _rpc_call(self, thread: Thread, process: Process) -> None:
        regs = thread.regs
        arg_len = regs[2]
        args = process.memory.read_block(regs[1], arg_len) if arg_len else []
        request = RpcRequest(
            service=regs[0],
            args=args,
            caller_thread=thread,
            caller_process=process,
            ret_addr=regs[3],
            ret_cap=regs[4],
        )
        process.hooks.rpc_caller_send(thread, request)
        thread.rpc_waiting = request
        thread.block(f"rpc-{request.service}")
        self.dispatch_rpc(request)


# Type alias used in _exec's signature without importing at module top.
from repro.isa.instructions import Instr as Instr_t  # noqa: E402


def spawn_service_thread(process: Process, request: RpcRequest) -> Thread:
    """Start a thread in ``process`` to serve ``request``.

    Marshals the argument words into callee memory, allocates a reply
    buffer, and launches the registered handler with the guest calling
    convention ``handler(arg_addr, arg_len, ret_addr, ret_cap)``.
    """
    func_name = process.rpc_services[request.service]
    addr = process.loader.find_export(func_name)
    if addr is None:
        raise VMError(
            f"process {process.name!r}: RPC service {request.service} refers "
            f"to unknown export {func_name!r}"
        )
    arg_addr = process.alloc_words(max(1, len(request.args)), name="rpc-args")
    process.memory.write_block(arg_addr, request.args)
    ret_addr = process.alloc_words(max(1, request.ret_cap), name="rpc-ret")

    thread = process.create_thread(addr, name=f"rpc-svc-{request.service}")
    thread.regs[0] = arg_addr
    thread.regs[1] = len(request.args)
    thread.regs[2] = ret_addr
    thread.regs[3] = request.ret_cap
    thread.rpc_serving = request
    request.callee_thread = thread
    request.callee_process = process
    request.callee_arg_addr = arg_addr
    request.callee_ret_addr = ret_addr
    process.hooks.rpc_callee_enter(thread, request)
    return thread


