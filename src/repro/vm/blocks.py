"""Tier-3 block-compiled execution engine for TBVM.

The fast engine (:mod:`repro.vm.dispatch`) pays one Python call, one
handler fetch, and three counter increments *per instruction*.  For
straight-line code that overhead dominates: a basic block's worth of
ALU/memory traffic is a handful of arithmetic operations wrapped in a
dozen dispatch steps each.  This module removes the per-instruction
costs the way block-translating DBI engines do — by fusing each
straight-line run into a single compiled Python closure:

* **registers live in locals** for the duration of the run (loaded from
  ``thread.regs`` once, written back once at the exit);
* **one clock/trace-counter update per unit** — ``machine.cycles``,
  ``process.cycles_used`` and ``thread.instructions`` are pre-charged
  with the unit's full instruction count in three additions;
* **inline terminators** — conditional branches, ``BR``/``JMP``/
  ``JTAB``/``BSENT``/``THROW`` are folded into the closure, so a hot
  loop body is one table lookup + one call per iteration;
* **handler terminators** — ``SYS``/``CALL*``/``RET``/``HALT`` fall
  back to the tier-2 predecoded handler *after* register write-back, so
  syscalls, host calls, and the unwinder see ordinary architectural
  state.

Bit-identity with the reference interpreter is non-negotiable (the
differential suite in ``tests/vm/test_differential.py`` runs all three
tiers against each other).  The subtle cases:

* **faults inside a fused run** — every faultable operation passes its
  own absolute pc to ``load``/``store``/``_div``, so the recovery path
  reads the faulting index straight off ``VMFault.pc``: it writes the
  register locals back (instructions *before* the fault completed;
  partial side effects like ``PUSH``'s sp decrement persist, exactly as
  in tier 2), restores ``thread.pc`` to the faulting instruction, and
  rolls the pre-charged counters back by the instructions that never
  ran.  The faulting instruction itself stays charged, as in both
  other tiers.
* **slice boundaries** — a compiled unit only runs when the remaining
  quantum covers it whole; otherwise :meth:`Machine._run_slice_block`
  falls back to per-instruction tier-2 dispatch.  Replay's forced
  scheduler slices and ``chunk=1`` breakpoint stepping therefore land
  on exact instruction boundaries with no special cases here.
* **code rewriting** — the block table is compiled lazily from the
  *live* decode cache (``loaded.decoded``), and
  ``LoadedModule.refresh_decode_cache`` drops it, so DAG rebasing and
  TLS fixups recompile just like tier-2 handler rebuilds.

Units are capped at :data:`MAX_UNIT` instructions so two compiled units
fit the default scheduler quantum; longer straight-line runs chain
through resume-point units.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.analysis.cfg import build_all_cfgs
from repro.isa.instructions import BLOCK_ENDERS, Instr, Op
from repro.vm.dispatch import _div, _mod
from repro.vm.errors import VMFault
from repro.vm.thread import Frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.loader import LoadedModule

#: A compiled unit: (instruction count, fused closure).  The closure has
#: the tier-2 handler signature ``fn(machine, thread)`` but executes the
#: whole unit.
BlockUnit = tuple[int, Callable]

#: Longest unit emitted: two of these fit the default QUANTUM=40, so a
#: long straight-line run alternates compiled units without drifting out
#: of phase with scheduler slices.
MAX_UNIT = 20

#: Smallest unit worth compiling; a lone terminator gains nothing over
#: the tier-2 handler it would wrap.
MIN_UNIT = 2

_M = 0xFFFFFFFF
_H = 0x80000000

#: Straight-line opcodes a unit may fuse: they always fall through, read
#: no clock, and run no hooks (memory access has none).  Everything else
#: — including ``BSENT``, which can branch out mid-block — terminates
#: the unit.
FUSIBLE = frozenset(
    {
        Op.ADDI, Op.LDW, Op.STW, Op.MOVI, Op.MOV, Op.MOVHI,
        Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
        Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
        Op.SLT, Op.SLE, Op.SEQ, Op.SNE,
        Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI, Op.SLTI, Op.MULI,
        Op.PUSH, Op.POP, Op.NOP, Op.TLSLD, Op.TLSST,
        Op.ORM, Op.STDAG,
    }
)

#: Terminators folded into the closure (pure pc computation, or a fault
#: whose pc/charging needs no rollback because it is the last
#: instruction).  ``CALL``/``RET`` are folded too — after register
#: write-back, operating on ``thread.regs`` directly, exactly like
#: their tier-2 handlers.  The rest (``SYS``, ``CALLR``, ``CALLX``,
#: ``HALT``) route through their tier-2 handler.
_INLINE_TERMS = frozenset(
    {Op.BR, Op.BZ, Op.BNZ, Op.BEQ, Op.BNE, Op.BLT, Op.BGE,
     Op.JMP, Op.JTAB, Op.BSENT, Op.THROW, Op.CALL, Op.RET}
)

_SIGNED_CMP = {Op.SLT: "<", Op.SLE: "<="}
_ALU_R_EXPR = {
    Op.ADD: "({a} + {b}) & 4294967295",
    Op.SUB: "({a} - {b}) & 4294967295",
    Op.MUL: "({a} * {b}) & 4294967295",
    Op.AND: "{a} & {b}",
    Op.OR: "{a} | {b}",
    Op.XOR: "{a} ^ {b}",
    Op.SHL: "({a} << ({b} & 31)) & 4294967295",
    Op.SHR: "({a} & 4294967295) >> ({b} & 31)",
    Op.SEQ: "1 if {a} == {b} else 0",
    Op.SNE: "1 if {a} != {b} else 0",
}


def _signed(expr: str) -> str:
    """An order-preserving unsigned image of the signed value: for
    32-bit ``x``, ``s32(a) < s32(b)`` iff ``(a^H) < (b^H)``."""
    return f"(({expr} & 4294967295) ^ 2147483648)"


def _emit_fused(instr: Instr, pc: int) -> tuple[list[str], set[int], set[int]]:
    """Source lines for one fused instruction, plus its register
    read/write sets.  Mirrors :func:`repro.vm.dispatch._build_one`
    exactly, including fault ordering (``PUSH`` moves sp before the
    store that may fault) and masking discipline."""
    op, rd, rs, rt, imm = instr.op, instr.rd, instr.rs, instr.rt, instr.imm
    if op is Op.ADDI:
        return [f"r{rd} = (r{rs} + {imm}) & 4294967295"], {rs}, {rd}
    if op is Op.LDW:
        # The segment-cache fast path of Memory.load, inlined; the slow
        # call handles misses and faults identically.
        return (
            [
                f"_a = (r{rs} + {imm}) & 4294967295",
                "if _hr[0] <= _a < _hr[1]:",
                f"    r{rd} = _hr[2][_a - _hr[0]]",
                "else:",
                f"    r{rd} = _ld(_a, {pc})",
                "    _hr = _mem._read_hit",
            ],
            {rs}, {rd},
        )
    if op is Op.STW:
        return (
            [
                f"_a = (r{rs} + {imm}) & 4294967295",
                "if _hw[0] <= _a < _hw[1]:",
                f"    _hw[2][_a - _hw[0]] = r{rd} & 4294967295",
                "else:",
                f"    _st(_a, r{rd}, {pc})",
                "    _hw = _mem._write_hit",
            ],
            {rs, rd}, set(),
        )
    if op is Op.MOVI:
        return [f"r{rd} = {imm & _M}"], set(), {rd}
    if op is Op.MOV:
        return [f"r{rd} = r{rs}"], {rs}, {rd}
    if op is Op.MOVHI:
        return [f"r{rd} = {(imm & 0xFFFF) << 16}"], set(), {rd}
    if op in _ALU_R_EXPR:
        expr = _ALU_R_EXPR[op].format(a=f"r{rs}", b=f"r{rt}")
        return [f"r{rd} = {expr}"], {rs, rt}, {rd}
    if op in _SIGNED_CMP:
        cmp = _SIGNED_CMP[op]
        cond = f"{_signed(f'r{rs}')} {cmp} {_signed(f'r{rt}')}"
        return [f"r{rd} = 1 if {cond} else 0"], {rs, rt}, {rd}
    if op is Op.DIV:
        return [f"r{rd} = _div(r{rs}, r{rt}, {pc})"], {rs, rt}, {rd}
    if op is Op.MOD:
        return [f"r{rd} = _mod(r{rs}, r{rt}, {pc})"], {rs, rt}, {rd}
    if op is Op.ANDI:
        return [f"r{rd} = r{rs} & {imm & 0xFFFF}"], {rs}, {rd}
    if op is Op.ORI:
        return [f"r{rd} = r{rs} | {imm & 0xFFFF}"], {rs}, {rd}
    if op is Op.XORI:
        return [f"r{rd} = r{rs} ^ {imm & 0xFFFF}"], {rs}, {rd}
    if op is Op.SHLI:
        return [f"r{rd} = (r{rs} << {imm & 31}) & 4294967295"], {rs}, {rd}
    if op is Op.SHRI:
        return [f"r{rd} = (r{rs} & 4294967295) >> {imm & 31}"], {rs}, {rd}
    if op is Op.SLTI:
        return (
            [f"r{rd} = 1 if {_signed(f'r{rs}')} < {imm + _H} else 0"],
            {rs}, {rd},
        )
    if op is Op.MULI:
        return [f"r{rd} = (r{rs} * {imm}) & 4294967295"], {rs}, {rd}
    if op is Op.PUSH:
        return (
            [
                "r12 = (r12 - 1) & 4294967295",
                "if _hw[0] <= r12 < _hw[1]:",
                f"    _hw[2][r12 - _hw[0]] = r{rd} & 4294967295",
                "else:",
                f"    _st(r12, r{rd}, {pc})",
                "    _hw = _mem._write_hit",
            ],
            {rd, 12}, {12},
        )
    if op is Op.POP:
        # rd == 12 composes correctly: load into r12, then increment.
        return (
            [
                "if _hr[0] <= r12 < _hr[1]:",
                f"    r{rd} = _hr[2][r12 - _hr[0]]",
                "else:",
                f"    r{rd} = _ld(r12, {pc})",
                "    _hr = _mem._read_hit",
                "r12 = (r12 + 1) & 4294967295",
            ],
            {12}, {rd, 12},
        )
    if op is Op.NOP:
        return [], set(), set()
    if op is Op.TLSLD:
        return [f"r{rd} = tls[{imm}]"], set(), {rd}
    if op is Op.TLSST:
        return [f"tls[{imm}] = r{rd}"], {rd}, set()
    if op is Op.ORM:
        bits = imm & 0xFFFF
        return (
            [
                f"if _hw[0] <= r{rd} < _hw[1]:",
                f"    _a = r{rd} - _hw[0]",
                f"    _hw[2][_a] = (_hw[2][_a] | {bits}) & 4294967295",
                "else:",
                f"    _om(r{rd}, {bits}, {pc})",
                "    _hw = _mem._write_hit",
            ],
            {rd}, set(),
        )
    if op is Op.STDAG:
        header = 0x80000000 | ((imm & 0xFFFFF) << 11)
        return (
            [
                f"if _hw[0] <= r{rd} < _hw[1]:",
                f"    _hw[2][r{rd} - _hw[0]] = {header}",
                "else:",
                f"    _st(r{rd}, {header}, {pc})",
                "    _hw = _mem._write_hit",
            ],
            {rd}, set(),
        )
    raise AssertionError(f"non-fusible op {op!r} in fused run")


#: Fused opcodes that can raise VMFault (everything touching memory or
#: dividing).  Units without any of these skip the try/except entirely.
_FAULTABLE = frozenset(
    {Op.LDW, Op.STW, Op.PUSH, Op.POP, Op.ORM, Op.STDAG, Op.DIV, Op.MOD}
)


def _emit_terminator(
    instr: Instr, pc: int
) -> tuple[list[str], set[int], bool, bool]:
    """Source lines for an inline terminator, its register reads,
    whether it could be inlined (``False`` = use the tier-2 handler),
    and whether the lines touch ``regs`` directly."""
    op, rd, rs, imm = instr.op, instr.rd, instr.rs, instr.imm
    nxt = pc + 1
    if op is Op.BR:
        return [f"thread.pc = {nxt + imm}"], set(), True, False
    if op is Op.BZ:
        return (
            [f"thread.pc = {nxt + imm} if r{rd} == 0 else {nxt}"],
            {rd}, True, False,
        )
    if op is Op.BNZ:
        return (
            [f"thread.pc = {nxt + imm} if r{rd} != 0 else {nxt}"],
            {rd}, True, False,
        )
    if op is Op.BEQ:
        return (
            [f"thread.pc = {nxt + imm} if r{rd} == r{rs} else {nxt}"],
            {rd, rs}, True, False,
        )
    if op is Op.BNE:
        return (
            [f"thread.pc = {nxt + imm} if r{rd} != r{rs} else {nxt}"],
            {rd, rs}, True, False,
        )
    if op is Op.BLT:
        cond = f"{_signed(f'r{rd}')} < {_signed(f'r{rs}')}"
        return (
            [f"thread.pc = {nxt + imm} if {cond} else {nxt}"],
            {rd, rs}, True, False,
        )
    if op is Op.BGE:
        cond = f"{_signed(f'r{rd}')} >= {_signed(f'r{rs}')}"
        return (
            [f"thread.pc = {nxt + imm} if {cond} else {nxt}"],
            {rd, rs}, True, False,
        )
    if op is Op.JMP:
        return [f"thread.pc = r{rd}"], {rd}, True, False
    if op is Op.JTAB:
        # The table load may fault: thread.pc must already point at the
        # terminator, and the unit is fully charged (it is the last
        # instruction), so the raise propagates with no rollback.
        return (
            [
                f"thread.pc = {pc}",
                f"thread.pc = _ld((r{rs} + r{rd}) & 4294967295, {pc})",
            ],
            {rd, rs}, True, False,
        )
    if op is Op.BSENT:
        return (
            [
                f"thread.pc = {pc}",
                f"thread.pc = {nxt + imm} "
                f"if _ld(r{rd}, {pc}) == 4294967295 else {nxt}",
            ],
            {rd}, True, False,
        )
    if op is Op.THROW:
        return (
            [
                f"thread.pc = {pc}",
                f"raise _F(r{rd}, {pc}, 'THROW')",
            ],
            {rd}, True, False,
        )
    if op is Op.CALL:
        # Mirrors the tier-2 handler exactly: sp moves before the store
        # that may fault (partial effect persists), the frame is pushed
        # only on success.  Runs after write-back, on regs directly.
        target = nxt + imm
        return (
            [
                f"thread.pc = {pc}",
                "_sp = (regs[12] - 1) & 4294967295",
                "regs[12] = _sp",
                f"_st(_sp, {nxt}, {pc})",
                "thread.frames.append("
                f"_Fr(entry_pc={target}, return_pc={nxt}, entry_sp=_sp))",
                f"thread.pc = {target}",
            ],
            set(), True, True,
        )
    if op is Op.RET:
        return (
            [
                f"thread.pc = {pc}",
                f"_ra = _ld(regs[12], {pc})",
                "regs[12] = (regs[12] + 1) & 4294967295",
                "if thread.frames:",
                "    thread.frames.pop()",
                f"if _ra == {0x7FFFFFF0}:",
                "    thread.process.thread_finished(thread, regs[0])",
                f"elif _ra == {0x7FFFFFF1}:",
                "    _sig = getattr(thread, 'current_signum', 0)",
                "    thread.process.hooks.signal_return(thread, _sig)",
                "    assert thread.interrupted_pc is not None",
                "    thread.pc = thread.interrupted_pc",
                "    thread.interrupted_pc = None",
                "else:",
                "    thread.pc = _ra",
            ],
            set(), True, True,
        )
    return [], set(), False, False


def _compile_unit(
    offset: int,
    instrs: list[Instr],
    code_base: int,
    source: list[str],
    glb: dict,
    handlers: list,
) -> int | None:
    """Append one unit function to ``source``; returns its instruction
    count, or None when the unit is not worth compiling."""
    base_pc = code_base + offset
    fused = instrs[:-1] if instrs[-1].op not in FUSIBLE else instrs
    term = instrs[-1] if len(fused) != len(instrs) else None

    body: list[str] = []
    reads: set[int] = set()
    writes: set[int] = set()
    uses_tls = False
    faultable = False
    for k, instr in enumerate(fused):
        lines, r, w = _emit_fused(instr, base_pc + k)
        body.extend(lines)
        # Registers first read after being written stay pure locals.
        reads |= r - writes
        writes |= w
        uses_tls = uses_tls or instr.op in (Op.TLSLD, Op.TLSST)
        faultable = faultable or instr.op in _FAULTABLE

    term_lines: list[str] = []
    term_regs = False
    if term is not None:
        term_pc = base_pc + len(fused)
        lines, term_reads, inline, term_regs = _emit_terminator(term, term_pc)
        if inline:
            term_lines = lines
            reads |= term_reads - writes
        else:
            hname = f"_h{offset + len(fused)}"
            glb[hname] = handlers[offset + len(fused)]
            term_lines = [f"thread.pc = {term_pc}", f"{hname}(machine, thread)"]
    count = len(instrs)
    if count < MIN_UNIT:
        return None

    name = f"_u{offset}"
    touched = sorted(reads | writes)
    src = [f"def {name}(machine, thread):"]
    src.append("    process = thread.process")
    if touched or term_regs:
        src.append("    regs = thread.regs")
    if uses_tls:
        src.append("    tls = thread.tls")
    for r in touched:
        src.append(f"    r{r} = regs[{r}]")
    # The segment caches stay valid for the whole unit: no host call
    # (hence no map/unmap) can happen mid-unit, so fetch them once.
    # Misses inside the unit go through _ld/_st, which refresh the
    # shared caches for subsequent units.
    if any("_hr" in line for line in body):
        src.append("    _hr = _mem._read_hit")
    if any("_hw" in line for line in body):
        src.append("    _hw = _mem._write_hit")
    src.append(f"    machine.cycles += {count}")
    src.append(f"    process.cycles_used += {count}")
    src.append(f"    thread.instructions += {count}")
    writeback = [f"regs[{r}] = r{r}" for r in sorted(writes)]
    if faultable:
        src.append("    try:")
        src.extend(f"        {line}" for line in body)
        src.append("    except _F as e:")
        src.extend(f"        {line}" for line in writeback)
        # VMFault.pc identifies the faulting index: restore the pc and
        # un-charge the instructions that never ran (the faulting one
        # stays charged, as in tiers 1 and 2).
        src.append("        thread.pc = e.pc")
        src.append(f"        _n = {base_pc + count - 1} - e.pc")
        src.append("        machine.cycles -= _n")
        src.append("        process.cycles_used -= _n")
        src.append("        thread.instructions -= _n")
        src.append("        raise")
    else:
        src.extend(f"    {line}" for line in body)
    src.extend(f"    {line}" for line in writeback)
    if term is None:
        src.append(f"    thread.pc = {base_pc + count}")
    else:
        src.extend(f"    {line}" for line in term_lines)
    source.append("\n".join(src))
    return count


def compile_blocks(loaded: "LoadedModule") -> dict[int, BlockUnit]:
    """Compile a loaded module's straight-line runs to fused closures.

    Returns a table keyed by module-relative code offset; every CFG
    block start, every resume point after a terminator, and every
    :data:`MAX_UNIT` chain point gets an entry when the run there is
    long enough to be worth fusing.  Instruction semantics come from the
    *live* decode cache, so load-time code rewriting is honoured; the
    CFGs only contribute the leader set (all the places control can
    enter, including indirect targets and handler entries).
    """
    module = loaded.module
    decoded = loaded.decoded
    memory = loaded.memory
    if memory is None or not decoded or not getattr(module, "funcs", None):
        return {}
    try:
        cfgs = build_all_cfgs(module)
    except Exception:
        # A module whose static image defeats CFG recovery simply runs
        # on per-instruction dispatch.
        return {}

    bounds: list[tuple[int, int]] = sorted(
        (block.start, block.end)
        for cfg in cfgs.values()
        for block in cfg.blocks.values()
    )

    glb: dict = {
        "_mem": memory,
        "_ld": memory.load,
        "_st": memory.store,
        "_om": memory.or_word,
        "_div": _div,
        "_mod": _mod,
        "_F": VMFault,
        "_Fr": Frame,
    }
    source: list[str] = []
    counts: dict[int, int] = {}
    handlers = loaded.handlers
    limit = len(decoded)
    for start, end in bounds:
        if end > limit:
            end = limit
        offset = start
        while offset < end:
            unit: list[Instr] = []
            scan = offset
            while (
                scan < end
                and len(unit) < MAX_UNIT
                and decoded[scan].op in FUSIBLE
            ):
                unit.append(decoded[scan])
                scan += 1
            if scan < end and len(unit) < MAX_UNIT:
                unit.append(decoded[scan])  # the terminator
                scan += 1
            if unit:
                count = _compile_unit(
                    offset, unit, loaded.code_base, source, glb, handlers
                )
                if count is not None:
                    counts[offset] = count
            offset = scan if scan > offset else offset + 1

    if source:
        exec(compile("\n\n".join(source), f"<blocks:{module.name}>", "exec"), glb)
    return {off: (count, glb[f"_u{off}"]) for off, count in counts.items()}
