"""Module loader: placement, relocation, import binding, unloading.

The loader is the analog of the OS loader the TraceBack runtime hooks:
it places a module's code / rodata / data sections in process memory,
patches relocations now that absolute addresses are known, binds the
import table (to other modules' exports or to registered host functions
such as the runtime's ``__tb_buffer_wrap``), and notifies load hooks —
*before* building the decoded-instruction cache, so the runtime's DAG
rebasing and TLS-index rewriting (paper §2.3, §2.5) see effect.

Modules can be unloaded and reloaded repeatedly, which is exactly the
scenario that motivates keying runtime state by module checksum rather
than by load address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.encoding import decode
from repro.isa.instructions import Instr
from repro.isa.module import Module, Reloc
from repro.vm.dispatch import Handler, build_handlers
from repro.vm.errors import VMError
from repro.vm.memory import Memory, Segment

#: Alignment of module base addresses.
_ALIGN = 16


@dataclass
class LoadedModule:
    """A module mapped into a process."""

    module: Module
    code_base: int
    rodata_base: int
    data_base: int
    segments: list[Segment]
    #: Per-import binding: an absolute code address, or a host callable.
    import_bindings: list[int | Callable] = field(default_factory=list)
    #: Decoded-instruction cache, parallel to the code segment.
    decoded: list[Instr] = field(default_factory=list)
    #: Predecoded handler table for the fast engine, parallel to
    #: ``decoded`` (see :mod:`repro.vm.dispatch`).
    handlers: list[Handler] = field(default_factory=list)
    #: The owning process's memory; bound by the loader so predecoded
    #: handlers can capture ``load``/``store`` directly.
    memory: Memory | None = None
    #: Tier-3 compiled-unit table (offset -> (count, closure)); built
    #: lazily by the block engine on first execution, ``None`` until
    #: then and again after every decode-cache refresh (see
    #: :mod:`repro.vm.blocks`).
    block_table: dict | None = None
    unloaded: bool = False

    @property
    def code_end(self) -> int:
        """One past the last code address."""
        return self.code_base + len(self.module.code)

    def contains_code(self, addr: int) -> bool:
        """Whether ``addr`` is inside this module's code."""
        return self.code_base <= addr < self.code_end

    def symbol_addr(self, name: str) -> int:
        """Absolute address of a module-local symbol."""
        section, offset = self.module.symbols[name]
        base = {
            "code": self.code_base,
            "rodata": self.rodata_base,
            "data": self.data_base,
        }[section]
        return base + offset

    def export_addr(self, name: str) -> int:
        """Absolute address of an exported function."""
        return self.code_base + self.module.exports[name]

    def refresh_decode_cache(self) -> None:
        """Re-decode the (possibly rewritten) code segment and lower it
        to the fast engine's predecoded handler table."""
        code_seg = self.segments[0]
        self.decoded = [decode(word) for word in code_seg.words]
        if self.memory is not None:
            self.handlers = build_handlers(self, self.memory)
        # Compiled units capture the old handlers/immediates; drop them
        # so the block engine recompiles from the fresh decode.
        self.block_table = None


class Loader:
    """Loads and unloads modules in one process's memory."""

    def __init__(self, memory: Memory):
        self._memory = memory
        self._loaded: list[LoadedModule] = []
        self._host_functions: dict[str, Callable] = {}
        self._next_base = 0x1000

    # ------------------------------------------------------------------
    def register_host_function(self, name: str, fn: Callable) -> None:
        """Expose a host callable to guest ``CALLX`` by import name.

        This is how the TraceBack runtime library exports
        ``__tb_buffer_wrap`` and friends into instrumented modules.
        """
        self._host_functions[name] = fn

    def host_function(self, name: str) -> Callable | None:
        """Look up a registered host function."""
        return self._host_functions.get(name)

    # ------------------------------------------------------------------
    def load(self, module: Module, on_loaded: Callable | None = None) -> LoadedModule:
        """Map ``module`` into memory and bind its imports.

        ``on_loaded`` (the runtime's module-load hook) runs after
        placement and relocation but before the decode cache is built,
        so it may rewrite code words (DAG rebasing, TLS fixups).
        """
        code = list(module.code)
        rodata = list(module.rodata)
        data = list(module.data)

        code_base = self._next_base
        rodata_base = code_base + len(code)
        data_base = rodata_base + len(rodata)
        end = data_base + len(data)
        self._next_base = (end + _ALIGN) & ~(_ALIGN - 1)

        self._patch_relocs(module, code, rodata, data, code_base, rodata_base, data_base)

        segments = [
            Segment(
                base=code_base,
                size=len(code),
                name=f"{module.name}.code",
                writable=False,
                executable=True,
                words=code,
            ),
            Segment(
                base=rodata_base,
                size=len(rodata),
                name=f"{module.name}.rodata",
                writable=False,
                words=rodata,
            ),
            Segment(
                base=data_base,
                size=len(data),
                name=f"{module.name}.data",
                words=data,
            ),
        ]
        for segment in segments:
            if segment.size:
                self._memory.map_segment(segment)

        loaded = LoadedModule(
            module=module,
            code_base=code_base,
            rodata_base=rodata_base,
            data_base=data_base,
            segments=segments,
            memory=self._memory,
        )
        loaded.import_bindings = [self._bind(name, module) for name in module.imports]
        self._loaded.append(loaded)

        if on_loaded is not None:
            on_loaded(loaded)
        loaded.refresh_decode_cache()
        return loaded

    def unload(self, loaded: LoadedModule) -> None:
        """Unmap a loaded module.  Its DAG range may be reassigned to it
        on reload (runtime policy, keyed by checksum)."""
        for segment in loaded.segments:
            if segment.size:
                self._memory.unmap(segment)
        loaded.unloaded = True
        self._loaded.remove(loaded)

    # ------------------------------------------------------------------
    def find_code(self, addr: int) -> LoadedModule | None:
        """The loaded module whose code contains ``addr``."""
        for loaded in self._loaded:
            if loaded.contains_code(addr):
                return loaded
        return None

    def find_export(self, name: str) -> int | None:
        """Absolute address of ``name`` in any loaded module."""
        for loaded in self._loaded:
            if name in loaded.module.exports:
                return loaded.export_addr(name)
        return None

    def modules(self) -> list[LoadedModule]:
        """All currently loaded modules."""
        return list(self._loaded)

    def module_named(self, name: str) -> LoadedModule | None:
        """Find a loaded module by name."""
        for loaded in self._loaded:
            if loaded.module.name == name:
                return loaded
        return None

    # ------------------------------------------------------------------
    def _bind(self, name: str, importer: Module) -> int | Callable:
        if name in self._host_functions:
            return self._host_functions[name]
        addr = self.find_export(name)
        if addr is not None:
            return addr
        raise VMError(f"module {importer.name!r}: unresolved import {name!r}")

    def _patch_relocs(
        self,
        module: Module,
        code: list[int],
        rodata: list[int],
        data: list[int],
        code_base: int,
        rodata_base: int,
        data_base: int,
    ) -> None:
        sections = {"code": code, "rodata": rodata, "data": data}
        bases = {"code": code_base, "rodata": rodata_base, "data": data_base}

        def resolve(reloc: Reloc) -> int:
            if reloc.symbol not in module.symbols:
                raise VMError(
                    f"module {module.name!r}: relocation against unknown "
                    f"symbol {reloc.symbol!r}"
                )
            section, offset = module.symbols[reloc.symbol]
            return bases[section] + offset

        for reloc in module.relocs:
            target = sections[reloc.section]
            addr = resolve(reloc)
            if reloc.kind == "word":
                target[reloc.offset] = addr & 0xFFFFFFFF
            elif reloc.kind == "lo16":
                target[reloc.offset] = (target[reloc.offset] & ~0xFFFF) | (addr & 0xFFFF)
            elif reloc.kind == "hi16":
                target[reloc.offset] = (target[reloc.offset] & ~0xFFFF) | (
                    (addr >> 16) & 0xFFFF
                )
            else:
                raise VMError(f"unknown relocation kind {reloc.kind!r}")
