"""TBVM: the process virtual machine TraceBack instruments and runs on.

Public surface: :class:`Machine`, :class:`Process`, :class:`Thread`,
the memory model, hook interfaces, and the syscall numbers.
"""

from repro.vm.errors import (
    EngineSelectionError,
    ExcCode,
    Signal,
    VMError,
    VMFault,
)
from repro.vm.hooks import HookList, ProcessHooks
from repro.vm.loader import LoadedModule, Loader
from repro.vm.machine import (
    ENGINES,
    ExitState,
    Machine,
    Process,
    RpcRequest,
    spawn_service_thread,
)
from repro.vm.memory import MappedFile, Memory, Segment
from repro.vm.syscalls import COSTS, Sys
from repro.vm.thread import (
    SIGRET_RA,
    TLS_PROBE_SPILL,
    TLS_SLOTS,
    TLS_TRACE_PTR,
    TRAMPOLINE_RA,
    Frame,
    Thread,
    ThreadState,
)

__all__ = [
    "COSTS",
    "ENGINES",
    "EngineSelectionError",
    "ExcCode",
    "ExitState",
    "Frame",
    "HookList",
    "LoadedModule",
    "Loader",
    "Machine",
    "MappedFile",
    "Memory",
    "Process",
    "ProcessHooks",
    "RpcRequest",
    "SIGRET_RA",
    "Segment",
    "Signal",
    "Sys",
    "TLS_PROBE_SPILL",
    "TLS_SLOTS",
    "TLS_TRACE_PTR",
    "TRAMPOLINE_RA",
    "Thread",
    "ThreadState",
    "VMError",
    "VMFault",
    "spawn_service_thread",
]
