"""Hook points where a host-side runtime gains control of a process.

The original TraceBack runtime hooks the OS at specific, platform-
painful places: module load notification, thread discovery, first-chance
exception dispatch, signal interposition, process exit, and RPC
marshaling (paper §3.7, §5).  In TBVM these are explicit callbacks, which
is the honest Python analog — the *information* available at each hook
matches what the paper's runtime gets, and everything TraceBack does
with it is implemented against these interfaces.

A process carries a :class:`HookList`; the TraceBack runtime installs a
:class:`ProcessHooks` subclass, and tests install lightweight observers
alongside it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.errors import VMFault
    from repro.vm.loader import LoadedModule
    from repro.vm.machine import Process, RpcRequest
    from repro.vm.thread import Thread


class ProcessHooks:
    """Base class: every hook is a no-op.  Override what you need."""

    def module_loaded(self, loaded: "LoadedModule") -> None:
        """A module was placed and relocated; code may still be rewritten."""

    def module_unloaded(self, loaded: "LoadedModule") -> None:
        """A module is about to be unmapped."""

    def thread_started(self, thread: "Thread") -> None:
        """A thread is about to execute its first instruction."""

    def thread_exited(self, thread: "Thread") -> None:
        """A thread terminated normally (not by SIGKILL)."""

    def first_chance(self, thread: "Thread", fault: "VMFault") -> None:
        """An exception was raised, before any handler search."""

    def unhandled(self, thread: "Thread", fault: "VMFault") -> None:
        """No handler was found; the process is about to die."""

    def process_exit(self, process: "Process", code: int) -> None:
        """Normal process termination (HALT / EXIT_PROCESS)."""

    def syscall(self, thread: "Thread", number: int) -> None:
        """A syscall is about to execute (timestamp-probe heuristic)."""

    def signal(self, thread: "Thread", signum: int) -> None:
        """A signal is about to be delivered to ``thread``."""

    def signal_return(self, thread: "Thread", signum: int) -> None:
        """A guest signal handler returned normally."""

    def snap_request(self, thread: "Thread", reason: int) -> None:
        """The guest invoked the snap API (SYS SNAP)."""

    def rpc_caller_send(self, thread: "Thread", request: "RpcRequest") -> None:
        """An outgoing RPC is being marshaled; may add payload extras."""

    def rpc_callee_enter(self, thread: "Thread", request: "RpcRequest") -> None:
        """A service thread is about to run an incoming RPC."""

    def rpc_callee_exit(self, thread: "Thread", request: "RpcRequest") -> None:
        """The service thread finished (normally or by fault)."""

    def rpc_caller_return(self, thread: "Thread", request: "RpcRequest") -> None:
        """The blocked caller is resuming with the RPC result."""


class HookList(ProcessHooks):
    """Fan-out container: dispatches each hook to every registered set."""

    def __init__(self) -> None:
        self._hooks: list[ProcessHooks] = []

    def add(self, hooks: ProcessHooks) -> None:
        """Register a hook set (order of registration = call order)."""
        self._hooks.append(hooks)

    def remove(self, hooks: ProcessHooks) -> None:
        """Unregister a previously added hook set."""
        self._hooks.remove(hooks)

    def __iter__(self):
        return iter(self._hooks)


def _fanout(name: str):
    def method(self: HookList, *args, **kwargs) -> None:
        for hooks in self._hooks:
            getattr(hooks, name)(*args, **kwargs)

    method.__name__ = name
    method.__doc__ = f"Dispatch ``{name}`` to every registered hook set."
    return method


for _name in (
    "module_loaded",
    "module_unloaded",
    "thread_started",
    "thread_exited",
    "first_chance",
    "unhandled",
    "process_exit",
    "syscall",
    "signal",
    "signal_return",
    "snap_request",
    "rpc_caller_send",
    "rpc_callee_enter",
    "rpc_callee_exit",
    "rpc_caller_return",
):
    setattr(HookList, _name, _fanout(_name))
