"""SPECweb99-analog web server workload (paper Table 2).

A static-content server loop: accept (simulated I/O), parse the
request, locate the file, send it (simulated I/O).  The paper ran
Apache under SPECweb99 at 21 connections and measured ~5% overhead on
latency and throughput — instrumentation cost is diluted because most
of each request's wall-clock time is kernel/network/disk time, which
probes don't touch.  The simulation reproduces that structure: each
request spends most of its cycles in blocking ``io_read``/``io_write``
latency and syscall cost, with a modest burst of instrumented user-mode
parsing in between.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.harness import OverheadResult, measure_overhead

#: SPECweb99's sustainable load in the paper's setup.
CONNECTIONS = 21

SERVER_SOURCE = """
// One worker serving CONN connections round-robin; each request:
// read (blocks on I/O), parse headers, hash the URL to pick a file,
// build the response, write (blocks on I/O).
int urlbuf[32];
int served[1];
int bytes[1];

int parse_request(int seed) {
    int i;
    int method;
    for (i = 0; i < 32; i = i + 1) {
        urlbuf[i] = (seed * 31 + i * 7) % 96 + 32;
    }
    method = seed % 3;
    return method;
}

int locate(int seed) {
    int h;
    int i;
    h = 5381;
    for (i = 0; i < 32; i = i + 1) {
        h = (h * 33 + urlbuf[i]) & 16777215;
    }
    return h % 9;
}

int respond(int fileclass) {
    // SPECweb99's file mix: class sizes from ~1KB to ~100KB.
    int size;
    if (fileclass < 4) { size = 2; }
    else { if (fileclass < 7) { size = 5; } else { size = 9; } }
    return size;
}

int main() {
    int req;
    served[0] = 0;
    bytes[0] = 0;
    for (req = 0; req < 180; req = req + 1) {
        io_read(1);                     // accept + read request
        int method;
        method = parse_request(req);
        int fileclass;
        fileclass = locate(req);
        int size;
        size = respond(fileclass);
        if (method == 2) {
            size = size + 1;            // dynamic GET: extra work
            int i;
            int x;
            x = 0;
            for (i = 0; i < 40; i = i + 1) { x = (x * 7 + i) % 1009; }
            bytes[0] = bytes[0] + x % 2;
        }
        io_write(size);                 // send response
        served[0] = served[0] + 1;
        bytes[0] = bytes[0] + size;
    }
    print_int(served[0]);
    print_int(bytes[0]);
    return 0;
}
"""


@dataclass
class WebMetrics:
    """Table 2's three rows, derived from one run."""

    response_cycles: float  # average cycles per request (latency)
    ops_per_mcycle: float  # requests per million cycles (throughput)
    kwords_per_mcycle: float  # payload words per million cycles

    @classmethod
    def from_outcome(cls, cycles: int, served: int, words: int) -> "WebMetrics":
        return cls(
            response_cycles=cycles / served,
            ops_per_mcycle=served * 1_000_000 / cycles,
            kwords_per_mcycle=words * 1_000 * 1_000_000 / cycles / 1_000,
        )


def measure() -> tuple[OverheadResult, WebMetrics, WebMetrics]:
    """Run the server baseline + instrumented; return the metric pairs."""
    result = measure_overhead(SERVER_SOURCE, "apache")
    served = int(result.base.output[0])
    words = int(result.base.output[1])
    base = WebMetrics.from_outcome(result.base.cycles, served, words)
    traced = WebMetrics.from_outcome(result.traced.cycles, served, words)
    return result, base, traced
