"""Measurement harness: instrumented-vs-baseline overhead.

The paper's evaluation metric is the ratio of instrumented to normal
performance.  In the simulation the honest equivalent is the ratio of
*machine cycles to completion*: probe instructions, helper calls, and
runtime buffer work all consume cycles; blocking time and syscall
(kernel) time dilute them exactly as real kernel time dilutes probe
overhead in the paper's server workloads.

Every measurement cross-checks that the instrumented run produced the
same program output as the baseline — tracing must never change the
computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import geometric_mean

from repro.instrument import InstrumentConfig, instrument_module
from repro.lang.minic import compile_source
from repro.runtime import RuntimeConfig, TraceBackRuntime
from repro.vm import Machine, Process


class MeasurementError(RuntimeError):
    """A workload misbehaved (timeout, crash, output divergence)."""


@dataclass
class RunOutcome:
    """One execution's cost and result."""

    cycles: int
    instructions: int
    output: list[str]
    exit_state: str


@dataclass
class OverheadResult:
    """Baseline vs instrumented comparison for one workload."""

    name: str
    base: RunOutcome
    traced: RunOutcome
    text_growth: float

    @property
    def ratio(self) -> float:
        """Cycles ratio: the Table 1 'Ratio' column analog."""
        return self.traced.cycles / self.base.cycles


def run_once(
    module,
    max_cycles: int = 100_000_000,
    runtime_config: RuntimeConfig | None = None,
    with_runtime: bool = False,
    setup=None,
    engine: str | None = None,
) -> RunOutcome:
    """Execute one module to completion on a fresh machine.

    ``engine`` selects the interpreter (``"fast"``/``"reference"``);
    None uses the Machine default.
    """
    machine = Machine(engine=engine)
    process = machine.create_process("bench")
    if with_runtime:
        TraceBackRuntime(process, runtime_config or RuntimeConfig())
    process.load_module(module)
    if setup is not None:
        setup(machine, process)
    process.start()
    status = machine.run(max_cycles=max_cycles)
    if status != "done":
        raise MeasurementError(f"workload did not finish: {status}")
    instructions = sum(t.instructions for t in process.threads.values())
    return RunOutcome(
        cycles=machine.cycles,
        instructions=instructions,
        output=list(process.output),
        exit_state=process.exit_state,
    )


def measure_overhead(
    source: str,
    name: str,
    mode: str = "native",
    runtime_config: RuntimeConfig | None = None,
    max_cycles: int = 100_000_000,
) -> OverheadResult:
    """Compile, run baseline and instrumented, compare."""
    base_module = compile_source(source, name, bounds_checks=(mode == "il"))
    base = run_once(base_module, max_cycles=max_cycles)

    fresh = compile_source(source, name, bounds_checks=(mode == "il"))
    result = instrument_module(fresh, InstrumentConfig(mode=mode))
    traced = run_once(
        result.module,
        max_cycles=max_cycles,
        runtime_config=runtime_config,
        with_runtime=True,
    )
    if traced.output != base.output:
        raise MeasurementError(
            f"{name}: instrumented output {traced.output} != baseline "
            f"{base.output}"
        )
    return OverheadResult(
        name=name, base=base, traced=traced,
        text_growth=result.stats.size_growth,
    )


def geo_mean(ratios: list[float]) -> float:
    """Geometric mean, the paper's summary statistic for Table 1."""
    return geometric_mean(ratios)


def format_table(
    rows: list[tuple], headers: list[str], title: str = ""
) -> str:
    """Fixed-width table rendering for the benchmark reports."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
