"""Seeded random multithreaded MiniC programs for differential testing.

The replay differential suite needs *many* programs nobody hand-tuned:
each seed yields a multithreaded MiniC source with worker threads
contending on locks, sleeping, calling helpers, and updating shared
arrays — and exactly one arithmetic fault planted in a known worker at
a known iteration, so every program crashes and carries a meaningful
signature.  The generator is pure (``seed -> source string``): the same
seed always produces the same program, which keeps failures
reproducible from the parametrized test id alone.
"""

from __future__ import annotations

import random

__all__ = ["random_crasher"]

#: Binary integer operators MiniC evaluates; division is reserved for
#: the planted fault so only the chosen site can trap.
_SAFE_OPS = ("+", "-", "*")


def _expr(rng: random.Random, names: list[str]) -> str:
    """A small arithmetic expression over ``names`` and literals."""
    a = rng.choice(names)
    b = rng.choice(names + [str(rng.randrange(1, 9))])
    op = rng.choice(_SAFE_OPS)
    return f"{a} {op} {b}"


def random_crasher(seed: int) -> str:
    """A random multithreaded MiniC program that always crashes.

    Shape: ``n_workers`` threads run ``worker(wid)``, which loops
    ``n_iters`` times mixing lock-protected shared-array updates,
    helper calls, local arithmetic, and optional sleeps.  Worker
    ``fault_wid`` divides by ``(i - fault_iter)`` on its way through
    the loop, trapping DIVIDE_BY_ZERO at iteration ``fault_iter``;
    everything else is division-free, so the fault site is unique.
    """
    rng = random.Random(seed)
    n_workers = rng.randrange(2, 5)
    n_iters = rng.randrange(4, 10)
    fault_wid = rng.randrange(n_workers)
    fault_iter = rng.randrange(1, n_iters)
    n_slots = rng.choice((4, 8, 16))

    helper_body = [
        "int helper(int x) {",
        "    int r;",
        f"    r = x {rng.choice(_SAFE_OPS)} {rng.randrange(1, 7)};",
    ]
    if rng.random() < 0.5:
        helper_body += [
            f"    if (r > {rng.randrange(2, 30)}) {{",
            f"        r = r - {rng.randrange(1, 5)};",
            "    }",
        ]
    helper_body += ["    return r;", "}"]

    loop_body = [
        f"        acc = {_expr(rng, ['acc', 'i', 'wid'])};",
    ]
    if rng.random() < 0.7:
        loop_body += [
            "        lock(1);",
            f"        shared[(wid + i) % {n_slots}] = "
            f"shared[(wid + i) % {n_slots}] + 1;",
            "        unlock(1);",
        ]
    if rng.random() < 0.6:
        loop_body.append(f"        acc = helper({rng.choice(('acc', 'i'))});")
    if rng.random() < 0.5:
        loop_body.append(f"        sleep({rng.randrange(1, 5) * 100});")
    loop_body += [
        f"        if (wid == {fault_wid}) {{",
        f"            acc = acc + 100 / (i - {fault_iter});",
        "        }",
    ]

    lines = [
        f"int shared[{n_slots}];",
        "",
        *helper_body,
        "",
        "int worker(int wid) {",
        "    int i;",
        "    int acc;",
        f"    acc = wid + {rng.randrange(0, 5)};",
        f"    for (i = 0; i < {n_iters}; i = i + 1) {{",
        *loop_body,
        "    }",
        "    return acc;",
        "}",
        "",
        "int main() {",
        "    int t;",
        f"    for (t = 0; t < {n_workers}; t = t + 1) {{",
        "        thread_create(worker, t);",
        "    }",
        f"    sleep({rng.randrange(50, 200) * 1000});",
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"
