"""SPECJbb-analog warehouse workload (paper Table 3).

SPECJbb is a server-side Java benchmark: warehouses (one thread each)
process a fixed transaction mix (new-order, payment, order-status,
delivery, stock-level) against in-memory B-tree-ish structures.  The
paper instruments the Java side (intermediate-code instrumentation with
line probes, §2.4/§3.3) and sees throughput drop 16-25% across 1 and 5
warehouses on Windows, Linux, and Solaris boxes.

The analog: MiniC transaction code compiled with IL-mode bounds checks,
instrumented in IL mode (line-split blocks, catch-all stubs), threads as
warehouses, throughput = completed transactions per million cycles.
The three "systems" of Table 3 become three machine configurations that
differ the way the paper's boxes did (clock-for-clock scheduling
quantum and syscall-latency profile).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instrument import InstrumentConfig, instrument_module
from repro.lang.minic import compile_source
from repro.runtime import RuntimeConfig, TraceBackRuntime
from repro.vm import Machine

#: The per-warehouse transaction program.  ``warehouses`` and the
#: transaction count are patched in via format().
JBB_TEMPLATE = """
int stock[256];
int orders[128];
int done_count[8];

int new_order(int w, int seq) {{
    int lines;
    int i;
    int total;
    lines = 4 + seq % 4;
    total = 0;
    for (i = 0; i < lines; i = i + 1) {{
        int item;
        item = (seq * 17 + i * 31 + w) % 256;
        stock[item] = stock[item] - 1;
        if (stock[item] < 0) {{ stock[item] = 91; }}
        total = total + stock[item];
    }}
    orders[(w * 16 + seq) % 128] = total;
    return total;
}}

int payment(int w, int seq) {{
    int amount;
    amount = (seq * 7 + w * 3) % 5000;
    orders[(w * 16 + seq) % 128] = orders[(w * 16 + seq) % 128] + amount % 97;
    return amount;
}}

int order_status(int w, int seq) {{
    return orders[(w * 16 + seq) % 128];
}}

int delivery(int w, int seq) {{
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 10; i = i + 1) {{
        acc = acc + orders[(w * 16 + i) % 128] % 13;
    }}
    return acc;
}}

int stock_level(int w, int seq) {{
    int i;
    int low;
    low = 0;
    for (i = 0; i < 32; i = i + 1) {{
        if (stock[(seq + i) % 256] < 10) {{ low = low + 1; }}
    }}
    return low;
}}

int warehouse(int w) {{
    int seq;
    int acc;
    acc = 0;
    for (seq = 0; seq < {txns}; seq = seq + 1) {{
        int kind;
        kind = seq % 10;
        if (kind < 4) {{ acc = acc + new_order(w, seq); }}
        else {{ if (kind < 7) {{ acc = acc + payment(w, seq); }}
        else {{ if (kind < 8) {{ acc = acc + order_status(w, seq); }}
        else {{ if (kind < 9) {{ acc = acc + delivery(w, seq); }}
        else {{ acc = acc + stock_level(w, seq); }} }} }} }}
        if (seq % 4 == 0) {{ io_write(1); }}   // transaction journal
        done_count[w] = done_count[w] + 1;
    }}
    exit_thread(acc);
    return acc;
}}

int main() {{
    int i;
    for (i = 0; i < 256; i = i + 1) {{ stock[i] = 50 + i % 40; }}
    int w;
    for (w = 1; w < {warehouses}; w = w + 1) {{
        thread_create(warehouse, w);
    }}
    warehouse_main();
    int waited;
    waited = 0;
    while (waited < {warehouses} * 400000) {{
        int total;
        total = 0;
        for (w = 0; w < {warehouses}; w = w + 1) {{
            total = total + done_count[w];
        }}
        if (total >= {warehouses} * {txns}) {{
            print_int(total);
            return 0;
        }}
        sleep(2000);
        waited = waited + 2000;
    }}
    print_int(-1);
    return 0;
}}

int warehouse_main() {{
    int seq;
    int acc;
    acc = 0;
    for (seq = 0; seq < {txns}; seq = seq + 1) {{
        int kind;
        kind = seq % 10;
        if (kind < 4) {{ acc = acc + new_order(0, seq); }}
        else {{ if (kind < 7) {{ acc = acc + payment(0, seq); }}
        else {{ if (kind < 8) {{ acc = acc + order_status(0, seq); }}
        else {{ if (kind < 9) {{ acc = acc + delivery(0, seq); }}
        else {{ acc = acc + stock_level(0, seq); }} }} }} }}
        if (seq % 4 == 0) {{ io_write(1); }}   // transaction journal
        done_count[0] = done_count[0] + 1;
    }}
    return acc;
}}
"""

#: Table 3's systems; the knobs stand in for the hardware differences.
SYSTEMS = {
    "Win": {"io_latency": 1500, "quantum": 40},
    "Lin": {"io_latency": 2000, "quantum": 50},
    "Sun": {"io_latency": 2500, "quantum": 30},
}

TXNS_PER_WAREHOUSE = 60


@dataclass
class JbbResult:
    """One Table 3 row."""

    system: str
    warehouses: int
    base_throughput: float  # transactions per million cycles
    traced_throughput: float

    @property
    def ratio(self) -> float:
        return self.base_throughput / self.traced_throughput


def _run(source: str, system: str, instrumented: bool, warehouses: int) -> float:
    knobs = SYSTEMS[system]
    machine = Machine(name=system, io_latency=knobs["io_latency"])
    process = machine.create_process("jbb")
    module = compile_source(source, "jbb", bounds_checks=True)
    if instrumented:
        TraceBackRuntime(process, RuntimeConfig(sub_buffer_words=512,
                                                sub_buffers=4,
                                                main_buffers=warehouses + 1,
                                                max_buffers=warehouses + 2))
        module = instrument_module(module, InstrumentConfig(mode="il")).module
    process.load_module(module)
    process.start()
    status = machine.run(max_cycles=500_000_000, quantum=knobs["quantum"])
    if status != "done" or process.output[-1] == "-1":
        raise RuntimeError(f"jbb did not complete: {status} {process.output}")
    transactions = int(process.output[-1])
    return transactions * 1_000_000 / machine.cycles


def measure(system: str, warehouses: int) -> JbbResult:
    """One Table 3 cell pair (Normal vs TraceBack)."""
    source = JBB_TEMPLATE.format(warehouses=warehouses, txns=TXNS_PER_WAREHOUSE)
    return JbbResult(
        system=system,
        warehouses=warehouses,
        base_throughput=_run(source, system, False, warehouses),
        traced_throughput=_run(source, system, True, warehouses),
    )


#: Paper Table 3 ratios for comparison output.
PAPER_RATIOS = {
    ("Win", 1): 1.164, ("Win", 5): 1.207,
    ("Lin", 1): 1.223, ("Lin", 5): 1.229,
    ("Sun", 1): 1.240, ("Sun", 5): 1.249,
}
