""".NET PetShop-analog workload (paper §6, text).

"We ran the Microsoft .NET PetShop ... The baseline was 1,649 req/sec;
with TraceBack it dropped to 1,633 req/sec, or a 1% throughput
reduction."  PetShop is a three-tier web app: almost all request time is
database round-trips, so instrumentation of the application tier is
nearly free.  The analog gives each request two "database" RPO-style
waits (modeled as I/O latency) around a thin slice of application code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.harness import measure_overhead

PETSHOP_SOURCE = """
int cart[16];

int render_page(int req) {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 16; i = i + 1) {
        total = total + cart[i] * (i + 1);
    }
    return total + req % 7;
}

int main() {
    int req;
    int acc;
    acc = 0;
    for (req = 0; req < 120; req = req + 1) {
        io_read(4);           // database query round-trip
        int items;
        items = req % 16;
        cart[items] = (cart[items] + req) % 100;
        io_read(3);           // second query (inventory)
        acc = acc + render_page(req) % 1000;
        io_write(2);          // response
    }
    print_int(acc);
    return 0;
}
"""


@dataclass
class PetShopResult:
    base_req_per_mcycle: float
    traced_req_per_mcycle: float

    @property
    def throughput_drop_percent(self) -> float:
        return 100.0 * (1 - self.traced_req_per_mcycle / self.base_req_per_mcycle)


def measure() -> PetShopResult:
    """The paper's req/sec comparison, in requests per million cycles."""
    result = measure_overhead(PETSHOP_SOURCE, "petshop")
    requests = 120
    return PetShopResult(
        base_req_per_mcycle=requests * 1e6 / result.base.cycles,
        traced_req_per_mcycle=requests * 1e6 / result.traced.cycles,
    )
