"""SPECint2000-analog workload suite (paper Table 1).

Fifteen CPU-bound MiniC kernels, one per SPECint2000 benchmark, each a
scaled-down computation with the *control-flow character* of its
namesake: gzip's ``longest_match`` tight loop (the paper's §6 worst
case), gcc/perlbmk's call-heavy dispatch, mcf's pointer-chasing
relaxation, art/equake/ammp/mesa's FP-style (fixed-point) inner loops,
and so on.  Each prints a checksum so instrumented and baseline runs can
be verified identical.

The paper's measured ratios are recorded per benchmark so the harness
can print paper-vs-measured tables; absolute agreement is not expected
(different substrate), but the *spread* — tight-loop codes near 2x,
big-block numeric codes near 1.1-1.2x — is the reproduced claim.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpecBenchmark:
    """One SPECint-analog kernel."""

    name: str
    source: str
    expected_output: list[str]
    paper_ratio: float  # Table 1's TraceBack/Normal ratio


_GZIP = """
// gzip: LZ77 longest_match — a very tight loop containing a DAG header
// probe and (in the paper) a register spill: the pathological case.
int window[600];
int best[1];
int longest_match(int pos) {
    int cur;
    int bestlen;
    bestlen = 0;
    for (cur = pos - 258; cur < pos; cur = cur + 1) {
        if (window[cur] == window[pos]) {
            bestlen = bestlen + 1;
        }
    }
    return bestlen;
}
int main() {
    int i;
    for (i = 0; i < 600; i = i + 1) {
        window[i] = (i * 7 + 3) % 256;
    }
    int pos;
    int acc;
    acc = 0;
    for (pos = 260; pos < 440; pos = pos + 1) {
        acc = acc + longest_match(pos);
    }
    print_int(acc);
    return 0;
}
"""

_VPR = """
// vpr: placement cost — nested grid loops with conditional swaps.
int grid[400];
int main() {
    int i;
    for (i = 0; i < 400; i = i + 1) { grid[i] = (i * 13) % 97; }
    int pass;
    int cost;
    cost = 0;
    for (pass = 0; pass < 40; pass = pass + 1) {
        int x;
        for (x = 1; x < 399; x = x + 1) {
            int delta;
            delta = grid[x] - grid[x - 1];
            if (delta < 0) { delta = -delta; }
            if (delta > 48) {
                int tmp;
                tmp = grid[x];
                grid[x] = grid[x - 1];
                grid[x - 1] = tmp;
            }
            cost = cost + delta;
        }
    }
    print_int(cost);
    return 0;
}
"""

_GCC = """
// gcc: many small functions, deep call chains, branchy dispatch.
int fold(int op, int a, int b) {
    if (op == 0) { return a + b; }
    if (op == 1) { return a - b; }
    if (op == 2) { return a * b; }
    if (op == 3) { if (b != 0) { return a / b; } return 0; }
    return a ^ b;
}
int simplify(int node) {
    int op;
    op = node % 5;
    return fold(op, node, node >> 2);
}
int walk(int n) {
    if (n <= 1) { return 1; }
    return simplify(n) + walk(n - 1) % 7;
}
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 60; i = i + 1) {
        acc = acc + walk(80) % 1000;
    }
    print_int(acc);
    return 0;
}
"""

_MCF = """
// mcf: arc relaxation over an implicit graph — memory-bound chasing.
int cost[512];
int dist[512];
int main() {
    int i;
    for (i = 0; i < 512; i = i + 1) {
        cost[i] = (i * 31 + 7) % 64 + 1;
        dist[i] = 1000000;
    }
    dist[0] = 0;
    int round;
    for (round = 0; round < 60; round = round + 1) {
        int u;
        for (u = 0; u < 511; u = u + 1) {
            int v;
            v = (u * 2 + 1) % 512;
            if (dist[u] + cost[u] < dist[v]) {
                dist[v] = dist[u] + cost[u];
            }
        }
    }
    print_int(dist[511]);
    return 0;
}
"""

_CRAFTY = """
// crafty: bitboard population counts and shifts — straight-line blocks.
int lowbit(int b) { return b & 1; }
int popcount(int b) {
    int count;
    count = 0;
    while (b != 0) {
        count = count + lowbit(b);
        b = b >> 1;
    }
    return count;
}
int main() {
    int board;
    int acc;
    int i;
    acc = 0;
    board = 123456789;
    for (i = 0; i < 1400; i = i + 1) {
        acc = acc + popcount(board);
        board = board * 1103515245 + 12345;
        board = board & 2147483647;
    }
    print_int(acc);
    return 0;
}
"""

_EON = """
// eon: fixed-point "ray" arithmetic with per-sample shading calls.
int shade(int x, int y, int z) {
    return (x * 3 + y * 5 + z * 7) / 1024;
}
int main() {
    int x; int y; int z;
    int acc;
    int i;
    x = 1000; y = 2000; z = 3000;
    acc = 0;
    for (i = 0; i < 2600; i = i + 1) {
        int dot;
        dot = shade(x, y, z);
        x = (x + dot) % 8192;
        y = (y + dot * 2) % 8192;
        z = (z + dot * 3) % 8192;
        if (dot > 40) { acc = acc + 1; } else { acc = acc + dot % 3; }
    }
    print_int(acc + x + y + z);
    return 0;
}
"""

_EQUAKE = """
// equake: sparse matrix-vector inner loops over index arrays.
int val[600];
int col[600];
int vec[200];
int out[200];
int main() {
    int i;
    for (i = 0; i < 600; i = i + 1) {
        val[i] = (i % 9) + 1;
        col[i] = (i * 7) % 200;
    }
    for (i = 0; i < 200; i = i + 1) { vec[i] = i % 13; }
    int iter;
    for (iter = 0; iter < 25; iter = iter + 1) {
        int row;
        for (row = 0; row < 200; row = row + 1) {
            int s;
            int k;
            s = 0;
            for (k = row * 3; k < row * 3 + 3; k = k + 1) {
                s = s + val[k] * vec[col[k]];
            }
            out[row] = s;
        }
    }
    int acc;
    acc = 0;
    for (i = 0; i < 200; i = i + 1) { acc = acc + out[i]; }
    print_int(acc);
    return 0;
}
"""

_GAP = """
// gap: word-level arithmetic on vectors (computer algebra flavour),
// with the per-element operation behind a call, as GAP's generic
// arithmetic dispatch is.
int a[256];
int b[256];
int mulmod(int x, int y, int r) { return (x * y + r) % 251; }
int main() {
    int i;
    for (i = 0; i < 256; i = i + 1) {
        a[i] = i * i % 251;
        b[i] = (i * 17 + 3) % 251;
    }
    int round;
    int acc;
    acc = 0;
    for (round = 0; round < 55; round = round + 1) {
        for (i = 0; i < 256; i = i + 1) {
            a[i] = mulmod(a[i], b[i], round);
        }
        acc = (acc + a[round % 256]) % 100000;
    }
    print_int(acc);
    return 0;
}
"""

_PERLBMK = """
// perlbmk: string hashing + opcode dispatch — the call/branch mix that
// gave the paper its worst ratio (2.50).
int buf[64];
int step(int h, int c) {
    return (h * 33 + c) & 16777215;
}
int fetch(int i) {
    return buf[i & 63];
}
int hash(int seed, int n) {
    int h;
    int i;
    h = seed;
    for (i = 0; i < n; i = i + 1) {
        h = step(h, fetch(i));
    }
    return h;
}
int dispatch(int op, int v) {
    if (op == 0) { return hash(v, 8); }
    if (op == 1) { return hash(v, 16); }
    if (op == 2) { return v * 3; }
    if (op == 3) { return v ^ 255; }
    return v + 1;
}
int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) { buf[i] = (i * 11) % 127; }
    int acc;
    acc = 0;
    for (i = 0; i < 1800; i = i + 1) {
        acc = (acc + dispatch(i % 5, acc + i)) & 16777215;
    }
    print_int(acc);
    return 0;
}
"""

_VORTEX = """
// vortex: object-store lookups and moves — indexed record shuffling.
int store[512];
int index[128];
int fetch_rec(int slot) { return store[slot]; }
int put_rec(int slot, int v) { store[slot] = v; return v; }
int next_slot(int slot) { return (slot + 11) % 512; }
int main() {
    int i;
    for (i = 0; i < 512; i = i + 1) { store[i] = i * 3 % 256; }
    for (i = 0; i < 128; i = i + 1) { index[i] = (i * 37) % 512; }
    int txn;
    int acc;
    acc = 0;
    for (txn = 0; txn < 3000; txn = txn + 1) {
        int slot;
        slot = index[txn % 128];
        int rec;
        rec = fetch_rec(slot);
        if (rec % 2 == 0) {
            put_rec((slot + 1) % 512, rec + 1);
        } else {
            put_rec((slot + 7) % 512, rec - 1);
        }
        acc = (acc + rec) % 1000000;
        index[txn % 128] = next_slot(slot);
    }
    print_int(acc);
    return 0;
}
"""

_BZIP2 = """
// bzip2: move-to-front + run-length over a byte buffer.
int data[512];
int mtf[64];
int encode_sym(int sym) {
    int j;
    j = 0;
    while (mtf[j] != sym) { j = j + 1; }
    int rank;
    rank = j;
    while (j > 0) {
        mtf[j] = mtf[j - 1];
        j = j - 1;
    }
    mtf[0] = sym;
    return rank;
}
int main() {
    int i;
    for (i = 0; i < 512; i = i + 1) { data[i] = (i * 29) % 64; }
    for (i = 0; i < 64; i = i + 1) { mtf[i] = i; }
    int acc;
    acc = 0;
    int p;
    for (p = 0; p < 512; p = p + 1) {
        acc = acc + encode_sym(data[p]);
    }
    print_int(acc);
    return 0;
}
"""

_AMMP = """
// ammp: pairwise force accumulation (fixed point) — fat numeric blocks.
int px[64]; int py[64]; int fx[64]; int fy[64];
int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        px[i] = i * 97 % 1024;
        py[i] = i * 53 % 1024;
    }
    int step;
    for (step = 0; step < 5; step = step + 1) {
        for (i = 0; i < 64; i = i + 1) { fx[i] = 0; fy[i] = 0; }
        int a;
        for (a = 0; a < 64; a = a + 1) {
            int b;
            for (b = a + 1; b < 64; b = b + 1) {
                int dx; int dy; int d2; int f;
                dx = px[a] - px[b];
                dy = py[a] - py[b];
                d2 = dx * dx + dy * dy + 16;
                f = 1048576 / d2;
                fx[a] = fx[a] + f * dx / 64;
                fy[a] = fy[a] + f * dy / 64;
                fx[b] = fx[b] - f * dx / 64;
                fy[b] = fy[b] - f * dy / 64;
            }
        }
        for (i = 0; i < 64; i = i + 1) {
            px[i] = (px[i] + fx[i] / 256) % 1024;
            py[i] = (py[i] + fy[i] / 256) % 1024;
        }
    }
    int acc;
    acc = 0;
    for (i = 0; i < 64; i = i + 1) { acc = acc + px[i] + py[i]; }
    print_int(acc);
    return 0;
}
"""

_ART = """
// art: neural-net activation sweeps — long regular loops, few branches.
int w[512];
int f1[64];
int main() {
    int i;
    for (i = 0; i < 512; i = i + 1) { w[i] = (i * 19) % 128; }
    for (i = 0; i < 64; i = i + 1) { f1[i] = i % 7; }
    int epoch;
    for (epoch = 0; epoch < 60; epoch = epoch + 1) {
        int j;
        for (j = 0; j < 64; j = j + 1) {
            int s;
            int k;
            s = 0;
            for (k = 0; k < 8; k = k + 1) {
                s = s + w[j * 8 + k] * f1[(j + k) % 64];
            }
            f1[j] = (f1[j] + s / 128) % 97;
        }
    }
    int acc;
    acc = 0;
    for (i = 0; i < 64; i = i + 1) { acc = acc + f1[i]; }
    print_int(acc);
    return 0;
}
"""

_MESA = """
// mesa: span rasterization — interpolation with per-pixel stores.
int fb[1024];
int main() {
    int tri;
    for (tri = 0; tri < 90; tri = tri + 1) {
        int y;
        for (y = 0; y < 16; y = y + 1) {
            int x0; int x1; int c;
            x0 = (tri + y) % 32;
            x1 = x0 + 24;
            c = (tri * 5 + y) % 255;
            int x;
            for (x = x0; x < x1; x = x + 1) {
                fb[(y * 64 + x) % 1024] = c + x % 3;
            }
        }
    }
    int acc;
    int i;
    acc = 0;
    for (i = 0; i < 1024; i = i + 1) { acc = acc + fb[i]; }
    print_int(acc);
    return 0;
}
"""

_PARSER = """
// parser: tokenizing a character buffer — tiny blocks, dense branches.
int text[2400];
int main() {
    int i;
    for (i = 0; i < 2400; i = i + 1) {
        int r;
        r = (i * 7 + i / 13) % 29;
        if (r < 18) { text[i] = 97 + r; }
        else { if (r < 24) { text[i] = 32; } else { text[i] = 46; } }
    }
    int words;
    int letters;
    int sentences;
    int inword;
    words = 0; letters = 0; sentences = 0; inword = 0;
    for (i = 0; i < 2400; i = i + 1) {
        int c;
        c = text[i];
        if (c >= 97 && c <= 122) {
            letters = letters + 1;
            if (!inword) { words = words + 1; inword = 1; }
        } else {
            inword = 0;
            if (c == 46) { sentences = sentences + 1; }
        }
    }
    print_int(words * 1000 + sentences);
    print_int(letters);
    return 0;
}
"""


#: Paper Table 1 ratios.
PAPER_RATIOS = {
    "ammp": 1.23, "art": 1.10, "bzip2": 1.72, "crafty": 1.77, "eon": 1.70,
    "equake": 1.12, "gap": 1.74, "gcc": 1.98, "gzip": 1.97, "mcf": 1.21,
    "mesa": 1.18, "parser": 1.84, "perlbmk": 2.50, "vortex": 2.13,
    "vpr": 1.48,
}

_SOURCES = {
    "ammp": _AMMP, "art": _ART, "bzip2": _BZIP2, "crafty": _CRAFTY,
    "eon": _EON, "equake": _EQUAKE, "gap": _GAP, "gcc": _GCC,
    "gzip": _GZIP, "mcf": _MCF, "mesa": _MESA, "parser": _PARSER,
    "perlbmk": _PERLBMK, "vortex": _VORTEX, "vpr": _VPR,
}


def suite() -> list[SpecBenchmark]:
    """The full SPECint-analog suite, in Table 1's order."""
    return [
        SpecBenchmark(
            name=name,
            source=_SOURCES[name],
            expected_output=[],  # verified by cross-checking runs
            paper_ratio=PAPER_RATIOS[name],
        )
        for name in sorted(_SOURCES)
    ]


def benchmark_named(name: str) -> SpecBenchmark:
    """Look up one kernel by its SPEC name."""
    return SpecBenchmark(
        name=name,
        source=_SOURCES[name],
        expected_output=[],
        paper_ratio=PAPER_RATIOS[name],
    )
