"""Evaluation workloads: the SPEC-analog suites of the paper's §6."""

from repro.workloads.harness import (
    MeasurementError,
    OverheadResult,
    RunOutcome,
    format_table,
    geo_mean,
    measure_overhead,
    run_once,
)
from repro.workloads.randomgen import random_crasher
from repro.workloads.specint import PAPER_RATIOS, SpecBenchmark, benchmark_named, suite

__all__ = [
    "MeasurementError",
    "OverheadResult",
    "PAPER_RATIOS",
    "RunOutcome",
    "SpecBenchmark",
    "benchmark_named",
    "format_table",
    "geo_mean",
    "measure_overhead",
    "random_crasher",
    "run_once",
    "suite",
]
