"""The paper's worked examples as reusable scenarios.

* :func:`figure2_module` — the §2.1 illustration: a six-line function
  whose RPC call forces the tiler to split the graph into two DAGs
  (paper Figure 2), later reconstructed line by line (Figure 4).
* :func:`figure5_session` — the cross-language JNI bug: managed code
  passes a long string to a native routine that allocated four
  characters ("we only get short strings"), corrupting memory.
* :func:`figure6_session` — the cross-machine DCOM bug: SetPetName on
  the server writes through a const string pointer and faults; the
  client sees RPC_E_SERVERFAULT, ignores it, and GetPetName returns the
  wrong name.
* :func:`fidelity_session` — §6.1's production story: repeated buffer
  overruns corrupting neighbouring structures.
* :func:`oracle_session` — §6.1's Java sleep(random) exception storm.
"""

from __future__ import annotations

from repro.distributed import DistributedSession
from repro.instrument import InstrumentConfig
from repro.isa import Module, assemble
from repro.runtime import RuntimeConfig, SnapPolicy

# ----------------------------------------------------------------------
# Figure 2 / Figure 4
# ----------------------------------------------------------------------
#: Assembly for the Figure 2 control-flow graph: entry block with a
#: conditional (lines 1-2/3), an RPC call that ends DAG 1, and a tail
#: (lines 4-6) that forms DAG 2.
FIGURE2_ASM = """
.module fig2
.entry main
.func main
.line fig2.c 1
  li r0, 0            ; "Line 1": choose the Line-3 side (as in Fig. 4)
  bz r0, Lelse
.line fig2.c 2
  li r5, 20           ; "Line 2": not taken in this run
  br Lcall
Lelse:
.line fig2.c 3
  li r5, 30           ; "Line 3"
Lcall:
.line fig2.c 3
  li r0, 7            ; RPC service id
  la r1, argbuf
  li r2, 1
  la r3, retbuf
  li r4, 1
  sys 14              ; the RPC call that splits the DAGs
.line fig2.c 4
  li r6, 40           ; "Line 4"
.line fig2.c 5
  addi r6, r6, 1      ; "Line 5"
.line fig2.c 6
  halt                ; "Line 6"
.endfunc
.data
argbuf: .word 11
retbuf: .word 0
"""


def figure2_module() -> Module:
    """Assemble the Figure 2 program (uninstrumented)."""
    return assemble(FIGURE2_ASM)


# ----------------------------------------------------------------------
# Figure 5 — cross-language (managed -> native) buffer overrun
# ----------------------------------------------------------------------
#: The native side: NativeString.c.  `result` has room for 4 characters;
#: "we only get short strings."  Copying an 11-character string tramples
#: the neighbouring `canary`, and the corrupted value then drives a wild
#: indexed read — the stack-corruption / wild-transfer analog.
NATIVE_STRING_C = """
int result[4];      // we only get short strings
int canary[1];
int table[8];

int set_string(int src) {
    int i;
    i = 0;
    canary[0] = 2;
    while (peek(src + i) != 0) {
        result[i] = peek(src + i);   // no bounds check: overruns into canary
        i = i + 1;
    }
    // The corrupted canary now scales a table index far out of range:
    // the wild access that "would prevent an accurate stack backtrace".
    return table[canary[0] * 1000];
}
"""

#: The managed side: NativeString.java.  Passes a long string through
#: the cross-module boundary.
NATIVE_STRING_JAVA = """
extern int set_string(int src);

int message[16] = "hello world";

int main() {
    print_str(message);
    int r;
    r = set_string(message);
    print_int(r);
    return 0;
}
"""


def figure5_session():
    """Build the Figure 5 session: IL-mode caller + native callee in one
    process (the paper's seamless MSIL/native integration path)."""
    from repro.api import TraceSession

    session = TraceSession(
        process_name="petstore",
        runtime_config=RuntimeConfig(policy=SnapPolicy()),
    )
    # Native module: native-mode instrumentation (exception addresses).
    session.instrument_config = InstrumentConfig(mode="native")
    session.add_minic(
        NATIVE_STRING_C, name="NativeString_c", file_name="NativeString.c"
    )
    # Managed module: IL-mode instrumentation (line probes).
    session.instrument_config = InstrumentConfig(mode="il")
    session.add_minic(
        NATIVE_STRING_JAVA, name="NativeString_java",
        file_name="NativeString.java",
    )
    return session


# ----------------------------------------------------------------------
# Figure 6 — cross-machine DCOM pet-name bug
# ----------------------------------------------------------------------
#: Server: m_szPetName is (the analog of) a const WCHAR* — the copy in
#: SetPetName faults with an access violation.  GetPetName still works,
#: returning the (never-updated) default name.
PET_SERVER_C = """
const int m_szPetName[8] = "Rex";

int SetPetName(int argaddr, int arglen, int retaddr, int retcap) {
    int i;
    for (i = 0; i < arglen; i = i + 1) {
        // wcscpy() into a const string: access violation, caught by the
        // RPC layer and surfaced to the client as RPC_E_SERVERFAULT.
        poke(m_szPetName + i, peek(argaddr + i));
    }
    return 0;
}

int GetPetName(int argaddr, int arglen, int retaddr, int retcap) {
    int i;
    for (i = 0; i < retcap && i < 8; i = i + 1) {
        poke(retaddr + i, m_szPetName[i]);
    }
    return 0;
}
"""

#: Client: sets the name, fails to check the status, reads it back.
PET_CLIENT_C = """
int newname[8] = "Fido";
int readback[8];

int main() {
    int status;
    status = rpc_call(1, newname, 5, readback, 0);   // SetPetName
    // BUG: status (RPC_E_SERVERFAULT) is not checked.
    status = rpc_call(2, newname, 0, readback, 8);   // GetPetName
    print_int(status);
    print_str(readback);   // prints the wrong name: "Rex"
    return 0;
}
"""


def figure6_session() -> DistributedSession:
    """Two machines, DCOM-style client/server, the Figure 6 bug."""
    session = DistributedSession(
        runtime_config=RuntimeConfig(policy=SnapPolicy.parse(
            "snap on unhandled\nsnap on exception\nsuppress duplicates on"
        )),
    )
    client_box = session.add_machine("client-box")
    server_box = session.add_machine("server-box", clock_skew=3_000_000)
    session.add_process(
        client_box, "labrador-client", PET_CLIENT_C,
        module_name="client", start=True,
    )
    session.add_process(
        server_box, "labrador-server", PET_SERVER_C,
        module_name="server",
        services={1: "SetPetName", 2: "GetPetName"},
    )
    return session


# ----------------------------------------------------------------------
# §6.1 production stories
# ----------------------------------------------------------------------
#: Fidelity: memcpy overruns corrupt neighbouring structures; the app
#: limps along and dies later, far from the corruption site.
FIDELITY_C = """
int packet[8];
int neighbor[4] = {1000, 2000, 3000, 4000};

int copy_packet(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        packet[i] = i + 1;           // n > 8 overruns into neighbor
    }
    return n;
}

int main() {
    copy_packet(6);
    copy_packet(10);                 // the corrupting call
    int d;
    d = 100 / (neighbor[0] / 1000);  // later: corrupted divisor -> crash
    print_int(d);
    return 0;
}
"""

#: Oracle: sleep() fed from a random number generator throws when the
#: draw is negative; the try/catch hides it but performance craters.
ORACLE_C = """
int draw(int i) {
    // A "random" delay that can be negative (the RNG bug).
    return (i * 37 % 11) - 5;
}
int main() {
    int i;
    int exceptions;
    int e;
    exceptions = 0;
    for (i = 0; i < 30; i = i + 1) {
        try {
            sleep(draw(i));
        } catch (e) {
            exceptions = exceptions + 1;
        }
    }
    print_int(exceptions);
    return 0;
}
"""


def fidelity_session():
    """§6.1 Fidelity story: delayed-crash memory corruption."""
    from repro.api import TraceSession

    session = TraceSession(process_name="fidelity-app")
    session.add_minic(FIDELITY_C, name="fidelity", file_name="feed.c")
    return session


def oracle_session():
    """§6.1 Oracle story: exception storm from sleep(random)."""
    from repro.api import TraceSession

    session = TraceSession(
        process_name="oracle-app",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse(
                "snap on exception 5\nsuppress duplicates on"
            )
        ),
        instrument_config=InstrumentConfig(mode="il"),
    )
    session.add_minic(ORACLE_C, name="oracle", file_name="Poller.java")
    return session
