"""Time sources for timestamp records (§3.5).

"TraceBack makes use of the native high-performance real-time clock on
platforms that support it; for example, the RDTSC instruction on x86 ...
On other platforms TraceBack uses a simple logical clock, which
increments on each important event."

The hardware clock is the machine's cycle counter plus its skew — two
machines in a distributed run genuinely disagree, which is what the SYNC
records of §5.2 exist to compensate for.  The logical clock orders
events within one runtime but cannot be compared across processes.
"""

from __future__ import annotations

from repro.vm.machine import Machine


class Clock:
    """Abstract time source."""

    #: True when values are comparable across runtimes (modulo skew).
    is_real_time = False

    def now(self) -> int:
        """Current timestamp (64-bit domain)."""
        raise NotImplementedError

    def tick(self) -> None:
        """Note an important event (meaningful for logical clocks)."""


class HardwareClock(Clock):
    """The machine cycle counter + skew: the RDTSC analog."""

    is_real_time = True

    def __init__(self, machine: Machine):
        self._machine = machine

    def now(self) -> int:
        return self._machine.now()


class LogicalClock(Clock):
    """Event counter: thread starts/ends, wraps, exceptions bump it."""

    is_real_time = False

    def __init__(self) -> None:
        self._value = 0

    def now(self) -> int:
        return self._value

    def tick(self) -> None:
        self._value += 1


def split64(value: int) -> tuple[int, int]:
    """Split a timestamp into (lo, hi) record payload words."""
    value &= (1 << 64) - 1
    return value & 0xFFFFFFFF, (value >> 32) & 0xFFFFFFFF


def join64(lo: int, hi: int) -> int:
    """Inverse of :func:`split64`."""
    return (hi << 32) | lo
