"""The per-machine TraceBack service process (§3.6.1, §3.7.5).

"Each machine hosting TraceBack-instrumented processes also runs a
separate service process.  The TraceBack runtime in each instrumented
process communicates with the service process using a local protocol,
notifying it of snaps, and potentially getting snap requests from the
service process."

The service implements:

* **group snaps**: processes configured into a group are all snapped
  when any one of them snaps — "sometimes a fault in one of these
  processes is actually the result of a failure in another";
* **hang detection**: the STATUS heartbeat; runtimes that stop
  responding (no runnable thread and no timed wake) are snapped (and
  optionally killed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.collector import Collector
    from repro.runtime.runtime import TraceBackRuntime
    from repro.runtime.snap import SnapFile


class ServiceProcess:
    """One service process per machine."""

    def __init__(self, name: str = "tb-service"):
        self.name = name
        self.runtimes: list["TraceBackRuntime"] = []
        #: group name -> set of process names snapped together.
        self.groups: dict[str, set[str]] = {}
        #: Service processes on other machines ("a group of related
        #: processes running on a machine, or across several machines").
        self.peers: list["ServiceProcess"] = []
        self._in_group_snap = False
        self.hang_snaps = 0
        self.status_polls = 0
        #: Fleet collector this service forwards snaps to (§3.6.1's
        #: "notifying it of snaps" scaled to a central vault).
        self.collector: "Collector | None" = None
        self.forwarded_snaps = 0
        #: Vault query servers this service hosts (``serve_vault``).
        self.vault_servers: list = []

    # ------------------------------------------------------------------
    def register(self, runtime: "TraceBackRuntime") -> None:
        """A runtime announced itself over the local protocol."""
        if runtime not in self.runtimes:
            self.runtimes.append(runtime)

    def configure_group(self, group: str, process_names: list[str]) -> None:
        """Declare a process group (users configure these, §3.6.1)."""
        self.groups[group] = set(process_names)

    def link(self, peer: "ServiceProcess") -> None:
        """Connect two machines' service processes (bidirectional), so
        group snaps propagate across the wire."""
        if peer not in self.peers:
            self.peers.append(peer)
        if self not in peer.peers:
            peer.peers.append(self)

    def forward_to(self, collector: "Collector | None") -> None:
        """Forward every snap this service hears about to ``collector``.

        Registration is idempotent and reversible (pass None).  The
        forward happens synchronously at notify time — the collector's
        own queue provides the buffering — so a snap taken even moments
        before a ``kill -9`` is already on the uplink.
        """
        self.collector = collector

    def serve_vault(
        self,
        vault,
        network,
        service: str = "vault",
        machine=None,
        page_limit: int | None = None,
    ):
        """Host a vault query server on this service process.

        The service process already speaks for its machine's TraceBack
        state (§3.6.1); serving the region's vault over the query
        protocol is the same role pointed outward.  ``machine`` ties
        the server's health to a simulated machine: while that machine
        has live threads the server counts as wedged and requests cost
        the caller their full deadline.  Returns the registered
        :class:`~repro.fleet.remote.VaultService`.
        """
        from repro.fleet.remote import DEFAULT_PAGE_LIMIT, VaultService

        server = VaultService(
            vault,
            name=service,
            page_limit=DEFAULT_PAGE_LIMIT if page_limit is None else page_limit,
            machine=machine,
            served_by=self,
        )
        network.register_vault_service(server)
        self.vault_servers.append(server)
        return server

    # ------------------------------------------------------------------
    def notify_snap(self, source: "TraceBackRuntime", snap: "SnapFile") -> None:
        """A runtime snapped: trigger group snaps in its partners.

        Group snaps are "not perfectly synchronized, but useful in
        practice" — here they run at the next hook boundary, which in
        the single-stepped VM means immediately and consistently.
        """
        # Forward first: group-snap recursion re-enters this method with
        # the guard set, and those snaps must reach the vault too.
        if self.collector is not None:
            self.collector.submit(snap)
            self.forwarded_snaps += 1
        if self._in_group_snap:
            return  # group snaps do not cascade
        member_groups = [
            g for g, names in self.groups.items() if source.process.name in names
        ]
        if not member_groups:
            return
        self._in_group_snap = True
        try:
            for group in member_groups:
                self._snap_group(group, source.process.name, snap.reason)
                for peer in self.peers:
                    peer.group_snap_request(group, source.process.name,
                                            snap.reason)
        finally:
            self._in_group_snap = False

    def group_snap_request(
        self, group: str, initiator: str, reason: str
    ) -> None:
        """A peer service asks us to snap our members of ``group``."""
        if self._in_group_snap or group not in self.groups:
            return
        self._in_group_snap = True
        try:
            self._snap_group(group, initiator, reason)
        finally:
            self._in_group_snap = False

    def _snap_group(self, group: str, initiator: str, reason: str) -> None:
        for runtime in self.runtimes:
            if not runtime.process.alive:
                continue
            if runtime.process.name == initiator:
                continue
            if runtime.process.name in self.groups.get(group, ()):
                runtime.snap_external(
                    reason="group",
                    detail={
                        "group": group,
                        "initiator": initiator,
                        "initiator_reason": reason,
                    },
                )

    # ------------------------------------------------------------------
    def poll_status(self) -> list["TraceBackRuntime"]:
        """Send STATUS to every runtime; returns those that look hung."""
        self.status_polls += 1
        return [
            runtime
            for runtime in self.runtimes
            if runtime.process.alive and not runtime.heartbeat()
        ]

    def check_hangs(self, terminate: bool = False) -> list["SnapFile"]:
        """Snap (and optionally terminate) hung processes (§3.7.5)."""
        snaps = []
        for runtime in self.poll_status():
            if runtime.config.policy.hang:
                snap = runtime.snap_external(
                    reason="hang", detail={"process": runtime.process.name}
                )
                if snap is not None:
                    snaps.append(snap)
                    self.hang_snaps += 1
            if terminate:
                runtime.process.kill()
        return snaps
