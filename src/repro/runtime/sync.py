"""Logical threads and SYNC records for distributed tracing (§5.1).

"Two physical threads that participate in an RPC call-enter-exit-return
sequence are fused into a single logical thread for tracing purposes."

Each runtime holds a unique runtime id.  When a thread makes an RPC, the
runtime allocates (or reuses) a logical thread id, bumps a sequence
number at each of the four legs (caller send, callee enter, callee exit,
caller return), writes a SYNC record on the local side of each leg, and
carries the (runtime id, logical thread id, sequence) triple in the RPC
payload's out-of-band extension.  The net effect of one RPC is four SYNC
records with the same logical thread id and successive sequence numbers
spread across two buffers in two runtimes — exactly what reconstruction
stitches on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.runtime.clock import split64
from repro.runtime.records import ExtKind, ExtRecord, SyncKind

#: Global runtime-id allocator ("a standard generation technique"); the
#: sequence is deterministic for reproducible tests.
_runtime_ids = itertools.count(0x52540000)


def next_runtime_id() -> int:
    """Allocate a process-unique runtime id."""
    return next(_runtime_ids)


def reset_runtime_ids(start: int = 0x52540000) -> None:
    """Rewind the allocator so repeated in-process runs (chaos
    scenarios, fuzz sweeps) produce identical SYNC words."""
    global _runtime_ids
    _runtime_ids = itertools.count(start)


#: Payload key used for the TraceBack triple on RPC extras.
PAYLOAD_KEY = "traceback"


@dataclass
class LogicalBinding:
    """A physical thread's current logical-thread binding."""

    logical_id: int
    seq: int


class LogicalThreadManager:
    """Per-runtime logical-thread state (§5.1)."""

    def __init__(self, runtime_id: int):
        self.runtime_id = runtime_id
        self._next_logical = itertools.count(1)
        #: physical tid -> binding
        self.bindings: dict[int, LogicalBinding] = {}
        #: runtime ids this runtime has exchanged SYNCs with.
        self.partners: set[int] = set()

    # ------------------------------------------------------------------
    def _sync_record(self, binding: LogicalBinding, kind: int, clock: int) -> ExtRecord:
        lo, hi = split64(clock)
        return ExtRecord(
            kind=ExtKind.SYNC,
            inline=kind,
            payload=(self.runtime_id, binding.logical_id, binding.seq, lo, hi),
        )

    def caller_send(self, tid: int, clock: int) -> tuple[ExtRecord, dict]:
        """Caller leg 1: allocate/bump, SYNC CALL_OUT, build the payload
        triple to attach to the outgoing RPC."""
        binding = self._binding_or_synthesized(tid)
        binding.seq += 1
        record = self._sync_record(binding, SyncKind.CALL_OUT, clock)
        triple = {
            "runtime_id": self.runtime_id,
            "logical_id": binding.logical_id,
            "seq": binding.seq,
        }
        return record, triple

    def callee_enter(self, tid: int, triple: dict, clock: int) -> ExtRecord:
        """Callee leg 2: bind the receiving thread to the logical thread,
        note the partner runtime, bump, SYNC ENTER."""
        self.partners.add(triple["runtime_id"])
        binding = LogicalBinding(
            logical_id=triple["logical_id"], seq=triple["seq"] + 1
        )
        self.bindings[tid] = binding
        return self._sync_record(binding, SyncKind.ENTER, clock)

    def _binding_or_synthesized(self, tid: int) -> LogicalBinding:
        """The thread's binding — synthesized if it was lost.

        A service thread can reach EXIT/RETURN with no binding when the
        runtime state was torn down underneath it (process killed and
        restarted mid-RPC, chaos-injected state loss).  Emitting a SYNC
        with a fresh logical id keeps the leg in the trace — stitching
        will report it as an unmatched leg instead of the runtime dying
        on a ``KeyError``.
        """
        binding = self.bindings.get(tid)
        if binding is None:
            logical = (self.runtime_id << 8) | (next(self._next_logical) & 0xFF)
            binding = LogicalBinding(logical_id=logical & 0xFFFFFFFF, seq=0)
            self.bindings[tid] = binding
        return binding

    def callee_exit(self, tid: int, clock: int) -> tuple[ExtRecord, dict]:
        """Callee leg 3: bump, SYNC EXIT, build the reply triple."""
        binding = self._binding_or_synthesized(tid)
        binding.seq += 1
        record = self._sync_record(binding, SyncKind.EXIT, clock)
        triple = {
            "runtime_id": self.runtime_id,
            "logical_id": binding.logical_id,
            "seq": binding.seq,
        }
        return record, triple

    def caller_return(self, tid: int, reply: dict | None, clock: int) -> ExtRecord:
        """Caller leg 4: adopt the callee's sequence, note the partner,
        SYNC RETURN."""
        binding = self._binding_or_synthesized(tid)
        if reply is not None:
            self.partners.add(reply["runtime_id"])
            binding.seq = reply["seq"] + 1
        else:
            binding.seq += 1  # callee had no runtime (uninstrumented)
        return self._sync_record(binding, SyncKind.RETURN, clock)
