"""The instrumentation <-> runtime ABI: shared names, no dependencies.

Instrumented modules and the runtime library meet at three named points:
the helper subroutine injected into every module, and the two host
functions the runtime exports into guest import tables.  This module is
a dependency leaf so both `repro.instrument` and `repro.runtime` can
import it without cycles.
"""

#: Name of the helper subroutine injected into each instrumented module.
HELPER_NAME = "__tb_probe_helper"

#: Import the probe helper calls when a buffer sentinel is hit (§3.1).
BUFFER_WRAP_IMPORT = "__tb_buffer_wrap"

#: Import the IL-mode injected catch-all stubs call (§3.7.2).
CATCH_IMPORT = "__tb_catch"
