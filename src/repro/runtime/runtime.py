"""The TraceBack runtime library (paper §3).

One :class:`TraceBackRuntime` attaches to one process.  It owns the
trace buffers, performs buffer assignment and reuse, handles probe
``buffer_wrap`` upcalls, rebases DAG ids at module load, writes event
records (timestamps, exceptions, thread lifecycle, SYNC), evaluates snap
policy with duplicate suppression, and cooperates with a per-machine
:class:`~repro.runtime.service.ServiceProcess` for group snaps and hang
detection.

Runtime-entry hygiene (§3.7): guest-context upcalls set the thread's
``in_runtime`` flag so exceptions raised inside the runtime are
surfaced as host bugs rather than re-entering tracing, and runtime work
never writes through guest probes — host-side record writes go straight
to the mapped buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.runtime.abi import BUFFER_WRAP_IMPORT, CATCH_IMPORT
from repro.runtime.buffers import BufferFlags, TraceBuffer
from repro.runtime.clock import Clock, HardwareClock, LogicalClock, split64
from repro.runtime.rebasing import DagAllocator, DagRange, rewrite_tls_slots
from repro.runtime.records import SENTINEL, ExtKind, ExtRecord
from repro.runtime.snap import (
    BufferDump,
    ModuleDump,
    SnapFile,
    SnapPolicy,
    SnapStore,
    Suppressor,
    ThreadDump,
)
from repro.runtime.sync import PAYLOAD_KEY, LogicalThreadManager, next_runtime_id
from repro.runtime.records import MAX_DAG_ID
from repro.vm.errors import VMFault
from repro.vm.hooks import ProcessHooks
from repro.vm.loader import LoadedModule
from repro.vm.machine import Process, RpcRequest
from repro.vm.syscalls import Sys
from repro.vm.thread import TLS_PROBE_SPILL, TLS_TRACE_PTR, Thread, ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instrument.dagbase import DagBaseFile
    from repro.runtime.service import ServiceProcess

#: Syscalls that get timestamp records ("synchronization or OS service"
#: artifacts, §3.5).
TIMESTAMPED_SYSCALLS = frozenset(
    {
        Sys.SLEEP,
        Sys.IO_READ,
        Sys.IO_WRITE,
        Sys.LOCK,
        Sys.UNLOCK,
        Sys.THREAD_CREATE,
        Sys.RPC_CALL,
    }
)

#: Cycle cost charged for a buffer_wrap upcall (runtime work).
WRAP_COST = 40


@dataclass
class RuntimeConfig:
    """Startup configuration ("the runtime obtains configuration
    information that specifies how much memory it should allocate for
    trace buffers, and how many buffers to create", §3.1)."""

    sub_buffer_words: int = 256  # per sub-buffer, including its sentinel
    sub_buffers: int = 4
    main_buffers: int = 2  # allocated eagerly at startup
    max_buffers: int = 8  # growth cap; beyond it threads share desperation
    clock: str = "hardware"  # or "logical"
    policy: SnapPolicy = field(default_factory=SnapPolicy)
    snap_store: SnapStore | None = None
    timestamp_syscalls: bool = True
    #: TLS slots actually available in this process; when they differ
    #: from the compiled-in 60/61, probes are rewritten at load (§2.5).
    trace_slot: int = TLS_TRACE_PTR
    spill_slot: int = TLS_PROBE_SPILL
    #: Simulate dynamic allocation failure: only the static buffer exists.
    fail_dynamic_buffers: bool = False
    static_buffer_words: int = 64
    max_dag_id: int = MAX_DAG_ID
    dagbase: "DagBaseFile | None" = None
    scavenge_interval: int = 32  # wraps between dead-thread scans
    include_memory: bool | None = None  # None = follow policy
    #: Record a nondeterminism log so snaps taken by this runtime can
    #: be deterministically replayed (repro.replay).
    record_replay: bool = False
    #: Which ndlog wire format snaps embed: 2 = packed columnar
    #: ``tb-ndlog/2`` (default), 1 = plain-JSON ``tb-ndlog/1``.  Replay
    #: accepts both; this only sets what new snaps carry.
    ndlog_version: int = 2


@dataclass
class RuntimeStats:
    """Counters for tests and the evaluation harness."""

    wraps: int = 0
    sub_wraps: int = 0
    full_wraps: int = 0
    records_written: int = 0
    threads_seen: int = 0
    buffers_allocated: int = 0
    buffers_reused: int = 0
    desperation_entries: int = 0
    snaps: int = 0
    scavenged: int = 0


class TraceBackRuntime(ProcessHooks):
    """The per-process runtime; install before loading instrumented
    modules (its host functions must resolve at load time)."""

    def __init__(
        self,
        process: Process,
        config: RuntimeConfig | None = None,
        service: "ServiceProcess | None" = None,
    ):
        self.process = process
        self.config = config or RuntimeConfig()
        self.service = service
        self.runtime_id = next_runtime_id()
        self.stats = RuntimeStats()
        self.snap_store = (
            self.config.snap_store
            if self.config.snap_store is not None
            else SnapStore()
        )
        self.suppressor = Suppressor(self.config.policy.suppress_duplicates)
        self.logical = LogicalThreadManager(self.runtime_id)
        self.allocator = DagAllocator(
            max_dag_id=self.config.max_dag_id, dagbase=self.config.dagbase
        )
        self.clock: Clock = (
            HardwareClock(process.machine)
            if self.config.clock == "hardware"
            else LogicalClock()
        )
        #: checksum -> (LoadedModule | None, DagRange); survives unload.
        self.module_table: dict[str, tuple[LoadedModule | None, DagRange]] = {}
        self._pending: dict[int, list[ExtRecord]] = {}
        self._assignment: dict[int, TraceBuffer] = {}
        self._free_buffers: list[TraceBuffer] = []
        self._all_buffers: list[TraceBuffer] = []

        process.loader.register_host_function(BUFFER_WRAP_IMPORT, self._buffer_wrap)
        process.loader.register_host_function(CATCH_IMPORT, self._catch_upcall)
        self.recorder = None
        if self.config.record_replay:
            # Imported lazily (repro.replay imports this module).  The
            # recorder registers its hooks first, before the runtime's,
            # so it observes machine state (cycles, RPC payloads) before
            # the runtime's record writes charge cycles.
            from repro.replay.record import ReplayRecorder

            self.recorder = ReplayRecorder(self)
        process.hooks.add(self)

        self._allocate_buffers()
        # Thread discovery (§3.7.1): the runtime may be attached to a
        # process that already has running threads.
        for thread in process.threads.values():
            if thread.alive():
                self._park_on_probation(thread)
        if service is not None:
            service.register(self)

    # ------------------------------------------------------------------
    # Buffer pool
    # ------------------------------------------------------------------
    def _allocate_buffers(self) -> None:
        cfg = self.config
        self.probation = TraceBuffer.probation(self.process)
        self._all_buffers.append(self.probation)
        self.static_buffer = TraceBuffer.allocate(
            self.process,
            index=0xFFFE,
            sub_count=1,
            sub_size=cfg.static_buffer_words,
            flags=BufferFlags.STATIC | BufferFlags.SHARED,
            name="tbtrace-static",
        )
        self._all_buffers.append(self.static_buffer)
        if cfg.fail_dynamic_buffers:
            self.desperation = self.static_buffer
            return
        self.desperation = TraceBuffer.allocate(
            self.process,
            index=0xFFFD,
            sub_count=cfg.sub_buffers,
            sub_size=cfg.sub_buffer_words,
            flags=BufferFlags.SHARED,
            name="tbtrace-desperation",
        )
        self._all_buffers.append(self.desperation)
        for _ in range(cfg.main_buffers):
            self._new_main_buffer()

    def _new_main_buffer(self) -> TraceBuffer:
        buf = TraceBuffer.allocate(
            self.process,
            index=len([b for b in self._all_buffers if not b.flags]),
            sub_count=self.config.sub_buffers,
            sub_size=self.config.sub_buffer_words,
        )
        self._all_buffers.append(buf)
        self._free_buffers.append(buf)
        self.stats.buffers_allocated += 1
        return buf

    def _main_buffer_count(self) -> int:
        return len([b for b in self._all_buffers if not b.flags])

    def _buffer_of_addr(self, addr: int) -> TraceBuffer | None:
        for buf in self._all_buffers:
            if buf.contains_addr(addr):
                return buf
        return None

    def buffer_of_thread(self, thread: Thread) -> TraceBuffer | None:
        """The buffer ``thread``'s trace pointer currently lives in."""
        return self._buffer_of_addr(thread.tls[self.config.trace_slot])

    # ------------------------------------------------------------------
    # Probe upcalls (guest context)
    # ------------------------------------------------------------------
    def _buffer_wrap(self, thread: Thread) -> int:
        """The ``buffer_wrap`` import: a probe hit a sentinel (§3.1)."""
        thread.in_runtime = True
        try:
            self.clock.tick()
            self.stats.wraps += 1
            addr = thread.regs[11]
            buf = self._buffer_of_addr(addr)
            if buf is None or buf.flags & BufferFlags.PROBATION:
                self._assign_buffer(thread)
            elif buf.flags & BufferFlags.SHARED:
                self._wrap_shared(thread, buf)
            else:
                rel = buf.to_rel(addr)
                if buf.sub_of(rel) == buf.sub_count - 1:
                    self.stats.full_wraps += 1
                else:
                    self.stats.sub_wraps += 1
                slot = buf.wrap_from(rel)
                self._point_thread(thread, buf, slot)
            if self.stats.wraps % self.config.scavenge_interval == 0:
                self.scavenge()
        finally:
            thread.in_runtime = False
        return WRAP_COST

    def _catch_upcall(self, thread: Thread) -> int:
        """The IL-mode injected catch-all stub called the runtime with
        the exception code in r0 (§3.7.2).  Policy + suppression decide
        whether this propagation step snaps again."""
        thread.in_runtime = True
        try:
            code = thread.regs[0]
            if self.config.policy.wants_exception(code):
                self._snap(
                    reason="exception",
                    detail={"code": code, "pc": thread.pc, "leg": "catch"},
                    key=("exception", code, self._module_key(thread.pc)),
                )
        finally:
            thread.in_runtime = False
        return 10

    # ------------------------------------------------------------------
    def _park_on_probation(self, thread: Thread) -> None:
        slot = self.probation.to_addr(self.probation.sub_start(0))
        thread.tls[self.config.trace_slot] = slot - 1

    def _point_thread(self, thread: Thread, buf: TraceBuffer, slot_rel: int) -> None:
        addr = buf.to_addr(slot_rel)
        thread.tls[self.config.trace_slot] = addr
        thread.regs[11] = addr

    def _next_slot(self, buf: TraceBuffer, cursor_rel: int) -> int:
        pos = cursor_rel + 1
        if buf.mapped.words[pos] == SENTINEL:
            pos = buf.wrap_from(pos)
        return pos

    def _assign_buffer(self, thread: Thread) -> None:
        """First-come buffer assignment off probation (§3.1.1)."""
        cfg = self.config
        buf: TraceBuffer | None = None
        if self._free_buffers:
            buf = self._free_buffers.pop(0)
            if buf.owner_tid is not None or buf.commit_count or buf.write_cursor != buf.sub_start(0) - 1:
                self.stats.buffers_reused += 1
        elif (
            not cfg.fail_dynamic_buffers
            and self._main_buffer_count() < cfg.max_buffers
        ):
            buf = self._new_main_buffer()
            self._free_buffers.remove(buf)
        if buf is None:
            # No main buffer available: desperation (§3.1).
            self.stats.desperation_entries += 1
            self._point_thread(
                thread, self.desperation, self.desperation.sub_start(0)
            )
            return
        buf.owner_tid = thread.tid
        self._assignment[thread.tid] = buf
        cursor = buf.write_cursor
        cursor = self._append(buf, cursor, self._thread_start_record(thread))
        for record in self._pending.pop(thread.tid, []):
            cursor = self._append(buf, cursor, record)
        slot = self._next_slot(buf, cursor)
        self._point_thread(thread, buf, slot)

    def _wrap_shared(self, thread: Thread, buf: TraceBuffer) -> None:
        """A thread in the desperation/static buffer hit the sentinel:
        try to leave; otherwise restart at the front (§3.1)."""
        if self._free_buffers or (
            not self.config.fail_dynamic_buffers
            and self._main_buffer_count() < self.config.max_buffers
        ):
            self._assign_buffer(thread)
        else:
            self._point_thread(thread, buf, buf.sub_start(0))

    # ------------------------------------------------------------------
    # Host-side record writing
    # ------------------------------------------------------------------
    #: Cycles charged per host-written event record (runtime work the
    #: paper's runtime performs in guest time).
    RECORD_COST = 12

    def _append(self, buf: TraceBuffer, cursor: int, record: ExtRecord) -> int:
        self.stats.records_written += 1
        self.process.machine.cycles += self.RECORD_COST + record.size
        self.process.cycles_used += self.RECORD_COST + record.size
        return buf.append(cursor, record)

    def write_record(self, thread: Thread, record: ExtRecord) -> bool:
        """Write an event record into ``thread``'s trace stream.

        Threads still on probation queue the record until a buffer is
        assigned; threads in shared buffers get best-effort writes.
        Returns True when the record landed (or was queued).
        """
        buf = self.buffer_of_thread(thread)
        if buf is None or buf.flags & BufferFlags.PROBATION:
            self._pending.setdefault(thread.tid, []).append(record)
            return True
        cursor = buf.to_rel(thread.tls[self.config.trace_slot])
        cursor = self._append(buf, cursor, record)
        thread.tls[self.config.trace_slot] = buf.to_addr(cursor)
        return True

    def _now_payload(self) -> tuple[int, int]:
        return split64(self.clock.now())

    def _thread_start_record(self, thread: Thread) -> ExtRecord:
        lo, hi = self._now_payload()
        return ExtRecord(ExtKind.THREAD_START, inline=0, payload=(thread.tid, lo, hi))

    # ------------------------------------------------------------------
    # Module lifecycle (§2.3, §3.7.1)
    # ------------------------------------------------------------------
    def module_loaded(self, loaded: LoadedModule) -> None:
        module = loaded.module
        if not module.instrumented:
            return
        rng = self.allocator.assign(loaded)
        rewrite_tls_slots(
            loaded,
            trace_slot=self.config.trace_slot,
            spill_slot=self.config.spill_slot,
            compiled_trace_slot=TLS_TRACE_PTR,
            compiled_spill_slot=TLS_PROBE_SPILL,
        )
        self.module_table[module.checksum()] = (loaded, rng)

    def module_unloaded(self, loaded: LoadedModule) -> None:
        checksum = loaded.module.checksum()
        if checksum in self.module_table:
            _, rng = self.module_table[checksum]
            self.module_table[checksum] = (None, rng)

    def _module_key(self, pc: int) -> tuple:
        loaded = self.process.loader.find_code(pc)
        if loaded is None:
            return ("<unknown>", pc)
        return (loaded.module.checksum(), pc - loaded.code_base)

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------
    def thread_started(self, thread: Thread) -> None:
        self.clock.tick()
        self.stats.threads_seen += 1
        self._park_on_probation(thread)

    def thread_exited(self, thread: Thread) -> None:
        self.clock.tick()
        buf = self.buffer_of_thread(thread)
        lo, hi = self._now_payload()
        record = ExtRecord(
            ExtKind.THREAD_END,
            inline=(thread.exit_code or 0) & 0xFFFF,
            payload=(thread.tid, lo, hi),
        )
        if buf is not None and not buf.flags:
            cursor = buf.to_rel(thread.tls[self.config.trace_slot])
            cursor = self._append(buf, cursor, record)
            buf.write_cursor = cursor
            buf.owner_tid = None
            self._assignment.pop(thread.tid, None)
            self._free_buffers.append(buf)  # reuse (§3.1.2)
        self._pending.pop(thread.tid, None)

    def process_exit(self, process: Process, code: int) -> None:
        """Graceful process exit (HALT / EXIT_PROCESS): a graceful
        detach for every still-attached thread.

        Threads that end individually persist their cursor in
        :meth:`thread_exited`, but a process-wide exit stops the
        remaining threads without that path running, which used to leave
        header word 8 stale.  Persist each attached thread's cursor so a
        reattach or offline recovery sees exactly where its trace ends.
        """
        self.clock.tick()
        for tid, buf in list(self._assignment.items()):
            thread = process.threads.get(tid)
            if thread is None or buf.flags:
                continue
            buf.write_cursor = buf.to_rel(thread.tls[self.config.trace_slot])

    def scavenge(self) -> int:
        """Dead-thread scavenging (§3.1.2): reclaim buffers owned by
        threads that terminated without notifying the runtime."""
        reclaimed = 0
        for tid, buf in list(self._assignment.items()):
            thread = self.process.threads.get(tid)
            if thread is None or not thread.alive():
                lo, hi = self._now_payload()
                cursor = buf.write_cursor
                if thread is not None:
                    cursor = buf.to_rel(thread.tls[self.config.trace_slot])
                cursor = self._append(
                    buf,
                    cursor,
                    ExtRecord(ExtKind.THREAD_END, inline=0, payload=(tid, lo, hi)),
                )
                buf.write_cursor = cursor
                buf.owner_tid = None
                del self._assignment[tid]
                self._free_buffers.append(buf)
                reclaimed += 1
        self.stats.scavenged += reclaimed
        return reclaimed

    # ------------------------------------------------------------------
    # Exceptions and signals (§2.4, §3.7.2, §3.7.3)
    # ------------------------------------------------------------------
    def first_chance(self, thread: Thread, fault: VMFault) -> None:
        self.clock.tick()
        lo, hi = self._now_payload()
        self.write_record(
            thread,
            ExtRecord(
                ExtKind.EXCEPTION,
                inline=fault.code & 0xFFFF,
                payload=(fault.code, fault.pc, lo, hi),
            ),
        )
        if self.config.policy.wants_exception(fault.code):
            self._snap(
                reason="exception",
                detail={"code": fault.code, "pc": fault.pc},
                key=("exception", fault.code, self._module_key(fault.pc)),
            )

    def unhandled(self, thread: Thread, fault: VMFault) -> None:
        if self.config.policy.unhandled:
            self._snap(
                reason="unhandled",
                detail={"code": fault.code, "pc": fault.pc},
                key=("unhandled", fault.code, self._module_key(fault.pc)),
            )

    def signal(self, thread: Thread, signum: int) -> None:
        self.clock.tick()
        lo, hi = self._now_payload()
        self.write_record(
            thread,
            ExtRecord(
                ExtKind.EXCEPTION,
                inline=signum & 0xFFFF,
                payload=(signum, thread.pc, lo, hi),
            ),
        )
        if self.config.policy.wants_signal(signum):
            self._snap(
                reason="signal",
                detail={"signum": signum, "pc": thread.pc},
                key=("signal", signum, self._module_key(thread.pc)),
            )

    def signal_return(self, thread: Thread, signum: int) -> None:
        lo, hi = self._now_payload()
        self.write_record(
            thread,
            ExtRecord(
                ExtKind.EXCEPTION_END,
                inline=signum & 0xFFFF,
                payload=(thread.pc, lo, hi),
            ),
        )

    # ------------------------------------------------------------------
    # Timestamps (§3.5)
    # ------------------------------------------------------------------
    def syscall(self, thread: Thread, number: int) -> None:
        if not self.config.timestamp_syscalls:
            return
        if number not in TIMESTAMPED_SYSCALLS:
            return
        self.clock.tick()
        lo, hi = self._now_payload()
        self.write_record(
            thread,
            ExtRecord(ExtKind.TIMESTAMP, inline=number, payload=(lo, hi)),
        )

    # ------------------------------------------------------------------
    # RPC / logical threads (§5.1)
    # ------------------------------------------------------------------
    def rpc_caller_send(self, thread: Thread, request: RpcRequest) -> None:
        record, triple = self.logical.caller_send(thread.tid, self.clock.now())
        request.extra[PAYLOAD_KEY] = triple
        self.write_record(thread, record)

    def rpc_callee_enter(self, thread: Thread, request: RpcRequest) -> None:
        triple = request.extra.get(PAYLOAD_KEY)
        if triple is None:
            return  # caller was not instrumented
        record = self.logical.callee_enter(thread.tid, triple, self.clock.now())
        self.write_record(thread, record)

    def rpc_callee_exit(self, thread: Thread, request: RpcRequest) -> None:
        if thread.tid not in self.logical.bindings:
            return
        record, triple = self.logical.callee_exit(thread.tid, self.clock.now())
        request.extra_reply[PAYLOAD_KEY] = triple
        self.write_record(thread, record)

    def rpc_caller_return(self, thread: Thread, request: RpcRequest) -> None:
        if thread.tid not in self.logical.bindings:
            return
        reply = request.extra_reply.get(PAYLOAD_KEY)
        record = self.logical.caller_return(thread.tid, reply, self.clock.now())
        self.write_record(thread, record)

    # ------------------------------------------------------------------
    # Snaps (§3.6)
    # ------------------------------------------------------------------
    def snap_request(self, thread: Thread, reason: int) -> None:
        """Guest snap API (SYS SNAP)."""
        if self.config.policy.api:
            lo, hi = self._now_payload()
            self.write_record(
                thread,
                ExtRecord(ExtKind.SNAP_MARK, inline=reason & 0xFFFF,
                          payload=(reason, lo, hi)),
            )
            self._snap(
                reason="api",
                detail={"code": reason},
                key=("api", reason, self._module_key(thread.pc)),
            )

    def snap_external(self, reason: str = "external", detail: dict | None = None) -> SnapFile | None:
        """Host-initiated snap: the external snap utility / hang path."""
        if self.recorder is not None:
            # External snaps are nondeterminism (a host decision): note
            # the event *before* building the snap so it lands in the
            # snap's own ndlog and replay re-takes the snap here.
            self.recorder.note_external_snap(reason, detail or {})
        return self._snap(reason=reason, detail=detail or {}, key=None)

    def _snap(self, reason: str, detail: dict, key: tuple | None) -> SnapFile | None:
        if self.stats.snaps >= self.config.policy.max_snaps:
            return None
        if key is not None and not self.suppressor.should_snap(key):
            return None
        snap = self.build_snap(reason, detail)
        self.stats.snaps += 1
        self.snap_store.add(snap)
        if self.service is not None:
            self.service.notify_snap(self, snap)
        return snap

    def build_snap(self, reason: str, detail: dict) -> SnapFile:
        """Collect buffers + metadata into a snap artifact.

        Threads are implicitly suspended: the VM is single-stepped, so a
        hook-context snap is globally consistent by construction — the
        simulation analog of §3.6's suspend-all-threads.
        """
        process = self.process
        modules = []
        for checksum, (loaded, rng) in self.module_table.items():
            modules.append(
                ModuleDump(
                    name=rng.module_name,
                    checksum=checksum,
                    dag_base_default=(loaded.module.dag_base if loaded else 0) or 0,
                    dag_base_actual=rng.base,
                    dag_count=rng.count,
                    code_base=loaded.code_base if loaded else -1,
                    loaded=loaded is not None,
                    data_base=loaded.data_base if loaded else -1,
                    rodata_base=loaded.rodata_base if loaded else -1,
                )
            )
        buffers = [
            BufferDump(
                index=buf.index,
                flags=buf.flags,
                base=buf.base,
                sub_count=buf.sub_count,
                sub_size=buf.sub_size,
                owner_tid=buf.owner_tid,
                words=buf.snapshot(),
            )
            for buf in self._all_buffers
        ]
        threads = [
            ThreadDump(
                tid=t.tid,
                name=t.name,
                state=t.state.value,
                pc=t.pc,
                trace_ptr=t.tls[self.config.trace_slot],
                block_reason=t.block_reason,
            )
            for t in process.threads.values()
        ]
        memory: dict[str, tuple[int, list[int]]] = {}
        include_memory = (
            self.config.include_memory
            if self.config.include_memory is not None
            else self.config.policy.include_memory
        )
        if include_memory:
            for seg in process.memory.segments():
                if seg.writable and seg.mapped_file is None:
                    memory[seg.name] = (seg.base, list(seg.words))
        replay: dict = {
            # The reproducibility seed rides every runtime-taken snap,
            # even without an ndlog: enough for `tbtrace info` to report
            # seed-only status, and for audits of the deterministic
            # inputs (machine identity, pid-derived PRNG seed).
            "seed": {
                "machine": process.machine.name,
                "clock_skew": process.machine.clock_skew,
                "engine": process.machine.engine,
                "pid": process.pid,
                "rand_seed": 0x1234_5678 ^ process.pid,
                "runtime_id": self.runtime_id,
            }
        }
        if self.recorder is not None:
            replay["ndlog"] = self.recorder.to_dict(
                version=self.config.ndlog_version
            )
        return SnapFile(
            reason=reason,
            detail=detail,
            process_name=process.name,
            pid=process.pid,
            machine_name=process.machine.name,
            clock=self.clock.now(),
            modules=modules,
            buffers=buffers,
            threads=threads,
            memory=memory,
            replay=replay,
        )

    # ------------------------------------------------------------------
    def heartbeat(self) -> bool:
        """The event-thread STATUS reply (§3.7.5): False = looks hung."""
        if not self.process.alive:
            return False
        for thread in self.process.threads.values():
            if thread.runnable():
                return True
            if thread.state is ThreadState.BLOCKED and thread.wake_cycle is not None:
                return True
        return False
