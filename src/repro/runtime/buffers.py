"""Trace buffers: mapped rings of sub-buffers (paper §3.1–3.2).

Layout of one buffer inside its memory-mapped file (all words)::

    [0]  magic 0x54424246 ("TBBF")
    [1]  buffer index
    [2]  sub-buffer count
    [3]  sub-buffer size in words (including its trailing sentinel)
    [4]  index of the last committed sub-buffer (0xFFFFFFFF = none yet)
    [5]  total commit count (orders sub-buffers across full wraps)
    [6]  owner thread id (0xFFFFFFFF = unowned)
    [7]  flags (shared/probation/static)
    [8]  write cursor (relative index of the last written record word;
         persisted on graceful events only — abrupt kills rely on
         sub-buffer commits, exactly as in the paper)
    [9]  reserved
    [10...]  sub-buffer 0, sub-buffer 1, ...

Each sub-buffer's final word is the ``0xFFFFFFFF`` sentinel.  Probes
pre-increment the thread's buffer pointer and compare against the
sentinel; on a hit they call the runtime's ``buffer_wrap``, which
commits the filled sub-buffer, zeroes the next one (so reconstruction
can find "the last non-zero entry"), and moves the pointer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.records import INVALID, SENTINEL, ExtRecord
from repro.vm.machine import Process
from repro.vm.memory import MappedFile

MAGIC = 0x54424246

HEADER_WORDS = 10

_NO_OWNER = 0xFFFFFFFF
_NO_COMMIT = 0xFFFFFFFF


class BufferFlags:
    """Flag bits in header word 7."""

    SHARED = 1  # desperation buffer: multiple writers, not recoverable
    PROBATION = 2  # sentinel-only buffer that traps the first probe
    STATIC = 4  # statically allocated emergency buffer


@dataclass
class TraceBuffer:
    """One trace buffer mapped into a process."""

    index: int
    base: int  # guest address of the header
    mapped: MappedFile
    sub_count: int
    sub_size: int
    flags: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def allocate(
        cls,
        process: Process,
        index: int,
        sub_count: int,
        sub_size: int,
        flags: int = 0,
        name: str | None = None,
    ) -> "TraceBuffer":
        """Map and initialize a buffer in ``process``."""
        total = HEADER_WORDS + sub_count * sub_size
        base, mapped = process.map_buffer(
            name or f"tbtrace-{index}", total
        )
        buf = cls(
            index=index,
            base=base,
            mapped=mapped,
            sub_count=sub_count,
            sub_size=sub_size,
            flags=flags,
        )
        words = mapped.words
        words[0] = MAGIC
        words[1] = index
        words[2] = sub_count
        words[3] = sub_size
        words[4] = _NO_COMMIT
        words[5] = 0
        words[6] = _NO_OWNER
        words[7] = flags
        # Canonical "no records yet" cursor: one before the first record
        # slot.  Everything that reads or persists word 8 (graceful
        # detach, buffer reuse, scavenging) uses this convention.
        words[8] = buf.sub_start(0) - 1
        for sub in range(sub_count):
            words[buf.sub_end(sub)] = SENTINEL
        return buf

    @classmethod
    def probation(cls, process: Process) -> "TraceBuffer":
        """The sentinel-only probation buffer (§3.1): any probe on it
        immediately traps into the runtime."""
        return cls.allocate(
            process, index=0xFFFF, sub_count=1, sub_size=1,
            flags=BufferFlags.PROBATION, name="tbtrace-probation",
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def sub_start(self, sub: int) -> int:
        """Relative index of sub-buffer ``sub``'s first data word."""
        return HEADER_WORDS + sub * self.sub_size

    def sub_end(self, sub: int) -> int:
        """Relative index of sub-buffer ``sub``'s sentinel word."""
        return self.sub_start(sub) + self.sub_size - 1

    def sub_of(self, rel: int) -> int:
        """Which sub-buffer a relative data index falls into."""
        return (rel - HEADER_WORDS) // self.sub_size

    def to_rel(self, addr: int) -> int:
        """Guest address -> relative word index."""
        return addr - self.base

    def to_addr(self, rel: int) -> int:
        """Relative word index -> guest address."""
        return self.base + rel

    def first_slot_addr(self) -> int:
        """Guest address of the first record slot (sub-buffer 0)."""
        return self.to_addr(self.sub_start(0))

    @property
    def end_addr(self) -> int:
        """One past the buffer's last guest address."""
        return self.base + HEADER_WORDS + self.sub_count * self.sub_size

    def contains_addr(self, addr: int) -> bool:
        """Whether a guest address lies in this buffer's data area."""
        return self.base <= addr < self.end_addr

    # ------------------------------------------------------------------
    # Header fields
    # ------------------------------------------------------------------
    @property
    def owner_tid(self) -> int | None:
        """Current owning thread, or None."""
        value = self.mapped.words[6]
        return None if value == _NO_OWNER else value

    @owner_tid.setter
    def owner_tid(self, tid: int | None) -> None:
        self.mapped.words[6] = _NO_OWNER if tid is None else tid

    @property
    def last_committed(self) -> int | None:
        """Index of the last committed sub-buffer, or None."""
        value = self.mapped.words[4]
        return None if value == _NO_COMMIT else value

    @property
    def commit_count(self) -> int:
        """Total sub-buffer commits over the buffer's lifetime."""
        return self.mapped.words[5]

    @property
    def write_cursor(self) -> int:
        """Persisted relative cursor (graceful events only)."""
        return self.mapped.words[8]

    @write_cursor.setter
    def write_cursor(self, rel: int) -> None:
        self.mapped.words[8] = rel

    # ------------------------------------------------------------------
    # Wrapping machinery
    # ------------------------------------------------------------------
    def commit_sub(self, sub: int) -> None:
        """Record that sub-buffer ``sub`` is complete (§3.2)."""
        self.mapped.words[4] = sub
        self.mapped.words[5] += 1

    def zero_sub(self, sub: int) -> None:
        """Zero a sub-buffer's data words (its sentinel stays)."""
        start, end = self.sub_start(sub), self.sub_end(sub)
        for rel in range(start, end):
            self.mapped.words[rel] = INVALID

    def wrap_from(self, sentinel_rel: int) -> int:
        """Handle a probe hitting the sentinel at ``sentinel_rel``.

        Commits the filled sub-buffer, zeroes the next, and returns the
        relative index of the next record slot.
        """
        sub = self.sub_of(sentinel_rel)
        self.commit_sub(sub)
        nxt = (sub + 1) % self.sub_count
        self.zero_sub(nxt)
        return self.sub_start(nxt)

    # ------------------------------------------------------------------
    # Host-side record writing (runtime events)
    # ------------------------------------------------------------------
    def append(self, cursor_rel: int, record) -> int:
        """Write a record after ``cursor_rel``; returns the new cursor
        (index of the record's last word).

        Accepts extended records and (for tests / synthetic traces) DAG
        records.  Skips to the next sub-buffer when the record wouldn't
        fit before the sentinel, so records never straddle sub-buffer
        boundaries.
        """
        encoded = record.encode()
        words = [encoded] if isinstance(encoded, int) else encoded
        pos = cursor_rel + 1
        sub = self.sub_of(pos) if pos >= HEADER_WORDS else 0
        if pos < HEADER_WORDS:
            pos = self.sub_start(0)
            sub = 0
        if pos + len(words) > self.sub_end(sub):
            pos = self.wrap_from(self.sub_end(sub))
        for offset, word in enumerate(words):
            self.mapped.words[pos + offset] = word
        return pos + len(words) - 1

    # ------------------------------------------------------------------
    def snapshot(self) -> list[int]:
        """Copy of the raw buffer words (what a snap file stores)."""
        return self.mapped.snapshot()
