"""Trace record format — the paper's Figure 1.

Every record is one or more 32-bit words in a trace buffer.

**DAG records** (bit 31 set) are written by instrumentation probes::

    bit  31      1
    bits 30..11  DAG id        (20 bits; ids are pre-shifted by STDAG)
    bits 10..0   path bits     (11 lightweight-probe bits)

The original paper quotes a 21-bit DAG id field with ~10 path bits; TBVM's
``STDAG`` instruction carries a 20-bit immediate, so this implementation
uses 20 id bits and 11 path bits — same structure, one bit traded.

Reserved values:

* ``0xFFFFFFFF`` — **buffer-end sentinel**; DAG id ``0xFFFFF`` is never
  allocated so the sentinel cannot collide with a real record.
* DAG id ``0xFFFFE`` — the **bad DAG id** used when the runtime cannot
  find a free id range for a module (§2.3); such records are discarded
  at reconstruction.
* ``0x00000000`` — **invalid**: the value sub-buffer zeroing writes, so
  the thread's progress is "the last non-zero entry" (§3.2).

**Extended records** (bits 31..30 = ``01``) carry runtime events: SYNC,
timestamps, exceptions, thread lifecycle::

    bits 31..30  01
    bit  29      0 = header, 1 = trailer
    bits 28..24  subtype
    bits 23..16  payload length in words (0 for single-word records)
    bits 15..0   16-bit inline payload

Multi-word extended records are ``header, payload..., trailer`` where
the trailer repeats subtype and length with bit 29 set.  The trailer is
an implementation addition the paper doesn't spell out: it lets the
back-to-front record mining of §4.1 skip payload words (which can hold
arbitrary bit patterns) without mis-parsing them as records.
"""

from __future__ import annotations

import re
import sys
from array import array
from dataclasses import dataclass

WORD = 0xFFFFFFFF

#: The buffer-end sentinel value probes compare against.
SENTINEL = 0xFFFFFFFF

#: The invalid (zeroed) record.
INVALID = 0x00000000

#: Number of path bits available to lightweight probes in one record.
PATH_BITS = 11

#: Width of the DAG id field.
DAG_ID_BITS = 20

#: Reserved id: never allocated (sentinel aliasing guard).
RESERVED_DAG_ID = (1 << DAG_ID_BITS) - 1  # 0xFFFFF

#: Reserved id: the "bad DAG" id for modules that lost the rebasing race.
BAD_DAG_ID = RESERVED_DAG_ID - 1  # 0xFFFFE

#: Highest id instrumentation may assign.
MAX_DAG_ID = BAD_DAG_ID - 1

_DAG_FLAG = 1 << 31
_EXT_FLAG = 1 << 30
_TRAILER_FLAG = 1 << 29
_PATH_MASK = (1 << PATH_BITS) - 1


class ExtKind:
    """Extended-record subtypes."""

    SYNC = 1  # RPC correlation (§5.1)
    TIMESTAMP = 2  # real-time / logical clock sample (§3.5)
    EXCEPTION = 3  # exception: code + faulting address (§2.4)
    EXCEPTION_END = 4  # control resumed after a handled signal (§3.7.3)
    THREAD_START = 5
    THREAD_END = 6
    SNAP_MARK = 7  # a snap was taken here
    MODULE_EVENT = 8  # module load/unload marker

    _NAMES = {
        1: "SYNC", 2: "TIMESTAMP", 3: "EXCEPTION", 4: "EXCEPTION_END",
        5: "THREAD_START", 6: "THREAD_END", 7: "SNAP_MARK", 8: "MODULE_EVENT",
    }

    @classmethod
    def name(cls, kind: int) -> str:
        """Human-readable subtype name."""
        return cls._NAMES.get(kind, f"EXT_{kind}")


class SyncKind:
    """Inline payload of SYNC records: which leg of the RPC this is."""

    CALL_OUT = 1  # caller, before sending
    ENTER = 2  # callee, on entry
    EXIT = 3  # callee, on return
    RETURN = 4  # caller, after receiving the reply


@dataclass(frozen=True)
class DagRecord:
    """A decoded DAG record."""

    dag_id: int
    path_bits: int

    def encode(self) -> int:
        """The 32-bit word form (what ``STDAG`` + ``ORM`` build up)."""
        return _DAG_FLAG | (self.dag_id << PATH_BITS) | self.path_bits

    @property
    def is_bad(self) -> bool:
        """Whether this record uses the reserved bad-DAG id."""
        return self.dag_id == BAD_DAG_ID


@dataclass(frozen=True)
class ExtRecord:
    """A decoded extended record."""

    kind: int
    inline: int
    payload: tuple[int, ...] = ()

    def encode(self) -> list[int]:
        """Word sequence: header [+ payload + trailer]."""
        length = len(self.payload)
        header = _EXT_FLAG | (self.kind << 24) | (length << 16) | (self.inline & 0xFFFF)
        if not length:
            return [header]
        trailer = _EXT_FLAG | _TRAILER_FLAG | (self.kind << 24) | (length << 16)
        return [header, *[w & WORD for w in self.payload], trailer]

    @property
    def size(self) -> int:
        """Total words this record occupies in a buffer."""
        return 1 if not self.payload else len(self.payload) + 2


Record = DagRecord | ExtRecord


def dag_header_word(dag_id: int) -> int:
    """The word a heavyweight probe writes (no path bits set yet)."""
    if not 0 <= dag_id <= RESERVED_DAG_ID:
        raise ValueError(f"DAG id {dag_id} out of range")
    return _DAG_FLAG | (dag_id << PATH_BITS)


def is_dag_word(word: int) -> bool:
    """Whether ``word`` is a DAG record (and not the sentinel)."""
    return bool(word & _DAG_FLAG) and word != SENTINEL


def is_ext_header(word: int) -> bool:
    """Whether ``word`` is an extended-record header."""
    return (word >> 29) == 0b010


def is_ext_trailer(word: int) -> bool:
    """Whether ``word`` is an extended-record trailer."""
    return (word >> 29) == 0b011


def decode_dag(word: int) -> DagRecord:
    """Decode a DAG record word."""
    return DagRecord(dag_id=(word >> PATH_BITS) & RESERVED_DAG_ID,
                     path_bits=word & _PATH_MASK)


def read_forward(words: list[int], start: int, end: int) -> list[Record]:
    """Record-aligned forward scan of ``words[start:end]``.

    Stops at the first INVALID word in header position (zeroed space) or
    at the sentinel.  This is how sub-buffers are mined: forward from
    the sub-buffer base to "the last non-zero entry".
    """
    records: list[Record] = []
    idx = start
    while idx < end:
        word = words[idx]
        if word == INVALID or word == SENTINEL:
            break
        if is_dag_word(word):
            records.append(decode_dag(word))
            idx += 1
        elif is_ext_header(word):
            kind = (word >> 24) & 0x1F
            length = (word >> 16) & 0xFF
            inline = word & 0xFFFF
            if length == 0:
                records.append(ExtRecord(kind, inline))
                idx += 1
            else:
                if idx + length + 2 > end:
                    break  # truncated record (abrupt kill mid-write)
                payload = tuple(words[idx + 1 : idx + 1 + length])
                records.append(ExtRecord(kind, inline, payload))
                idx += length + 2
        else:
            break  # unrecognized garbage: stop mining this span
    return records


# ----------------------------------------------------------------------
# Bulk (vectorized) decoding
#
# The scalar scanners above run a Python-level type dispatch per word.
# On real trace buffers the stream is overwhelmingly DAG records — one
# word each — so the per-word interpreter overhead dominates decode
# time.  The bulk path classifies every word of a span at once (array
# pack -> high-byte extraction -> bytes.translate) and then consumes
# *runs* of same-class words with one regex match and one bulk append,
# touching Python-level control flow only at class changes.  The scalar
# scanners stay as the oracle: on any input the bulk functions return
# exactly what they return (see tests/reconstruct/test_bulk_decode.py).
# ----------------------------------------------------------------------

#: Byte offset of a word's high byte inside its packed 4-byte cell.
_HB_OFFSET = 3 if sys.byteorder == "little" else 0

#: Word classes by high byte.  ``0xFF`` is ambiguous (a high-id DAG
#: record or the sentinel) and gets its own class so the run decoder
#: never has to check DAG runs word-by-word.
_CLS_DAG = 0x64  # ord('d'): 0x80..0xFE — definitely a DAG record
_CLS_AMB = 0x66  # ord('f'): 0xFF — DAG record or SENTINEL
_CLS_HDR = 0x68  # ord('h'): 0x40..0x5F — extended-record header
_CLS_TRL = 0x74  # ord('t'): 0x60..0x7F — extended-record trailer
_CLS_LOW = 0x7A  # ord('z'): 0x00 — INVALID (if the word is 0) or garbage
_CLS_BAD = 0x67  # ord('g'): anything else — garbage

_CLASS_TABLE = bytes(
    _CLS_LOW if hb == 0x00
    else _CLS_HDR if 0x40 <= hb <= 0x5F
    else _CLS_TRL if 0x60 <= hb <= 0x7F
    else _CLS_AMB if hb == 0xFF
    else _CLS_DAG if hb >= 0x80
    else _CLS_BAD
    for hb in range(256)
)

_DAG_RUN = re.compile(b"d+")
_DAG_TAIL = re.compile(b"d+$")

#: Decoded-record cache: DAG records are frozen, and hot traces repeat a
#: small working set of (dag id, path bits) words, so decoding becomes a
#: dict hit.  Bounded to keep pathological inputs from hoarding memory.
_DAG_CACHE: dict[int, DagRecord] = {}
_DAG_CACHE_LIMIT = 1 << 16


def _classify(words: list[int], start: int, end: int):
    """``(array, class bytes)`` for ``words[start:end]``, or ``None``
    when the span cannot be packed (non-word values in salvaged dumps —
    the callers fall back to the scalar scanners)."""
    try:
        arr = array("I", words[start:end])
    except (OverflowError, TypeError, ValueError):
        return None
    return arr, arr.tobytes()[_HB_OFFSET::4].translate(_CLASS_TABLE)


def _decode_dag_run(arr, lo: int, hi: int, records: list[Record]) -> None:
    """Append decoded DAG records for ``arr[lo:hi]`` (all class 'd')."""
    cache = _DAG_CACHE
    if len(cache) > _DAG_CACHE_LIMIT:
        cache.clear()
    get = cache.get
    append = records.append
    for word in arr[lo:hi]:
        record = get(word)
        if record is None:
            record = cache[word] = DagRecord(
                dag_id=(word >> PATH_BITS) & RESERVED_DAG_ID,
                path_bits=word & _PATH_MASK,
            )
        append(record)


def read_forward_bulk(words: list[int], start: int, end: int) -> list[Record]:
    """Bulk counterpart of :func:`read_forward` — identical output."""
    if end <= start:
        return []
    packed = _classify(words, start, end)
    if packed is None:
        return read_forward(words, start, end)
    arr, classes = packed
    n = end - start
    records: list[Record] = []
    idx = 0
    while idx < n:
        cls = classes[idx]
        if cls == _CLS_DAG:
            run_end = _DAG_RUN.match(classes, idx).end()
            _decode_dag_run(arr, idx, run_end, records)
            idx = run_end
        elif cls == _CLS_HDR:
            word = arr[idx]
            kind = (word >> 24) & 0x1F
            length = (word >> 16) & 0xFF
            inline = word & 0xFFFF
            if length == 0:
                records.append(ExtRecord(kind, inline))
                idx += 1
            else:
                if idx + length + 2 > n:
                    break  # truncated record (abrupt kill mid-write)
                payload = tuple(arr[idx + 1 : idx + 1 + length])
                records.append(ExtRecord(kind, inline, payload))
                idx += length + 2
        elif cls == _CLS_AMB:
            word = arr[idx]
            if word == SENTINEL:
                break
            _decode_dag_run(arr, idx, idx + 1, records)
            idx += 1
        else:
            # INVALID, trailer in header position, or garbage: the
            # scalar scanner stops mining here in every case.
            break
    return records


def read_backward_bulk(words: list[int], last: int, first: int) -> list[Record]:
    """Bulk counterpart of :func:`read_backward` — identical output."""
    if last < first:
        return []
    packed = _classify(words, first, last + 1)
    if packed is None:
        return read_backward(words, last, first)
    arr, classes = packed
    chunks: list[list[Record]] = []
    idx = last - first
    while idx >= 0:
        cls = classes[idx]
        if cls == _CLS_DAG:
            run_start = _DAG_TAIL.search(classes, 0, idx + 1).start()
            chunk: list[Record] = []
            _decode_dag_run(arr, run_start, idx + 1, chunk)
            chunks.append(chunk)
            idx = run_start - 1
        elif cls == _CLS_TRL:
            word = arr[idx]
            kind = (word >> 24) & 0x1F
            length = (word >> 16) & 0xFF
            head_idx = idx - length - 1
            if head_idx < 0:
                break  # the header was overwritten: stop
            header = arr[head_idx]
            if classes[head_idx] != _CLS_HDR:
                break
            payload = tuple(arr[head_idx + 1 : idx])
            chunks.append([ExtRecord(kind, header & 0xFFFF, payload)])
            idx = head_idx - 1
        elif cls == _CLS_HDR:
            word = arr[idx]
            if (word >> 16) & 0xFF:
                break  # mid-payload landing: unrecoverable from behind
            chunks.append([ExtRecord((word >> 24) & 0x1F, word & 0xFFFF)])
            idx -= 1
        elif cls == _CLS_AMB:
            word = arr[idx]
            if word == SENTINEL:
                break
            chunk = []
            _decode_dag_run(arr, idx, idx + 1, chunk)
            chunks.append(chunk)
            idx -= 1
        else:
            break
    records: list[Record] = []
    for chunk in reversed(chunks):
        records.extend(chunk)
    return records


def read_backward(words: list[int], last: int, first: int) -> list[Record]:
    """Back-to-front mining (§4.1): from index ``last`` (inclusive) down
    to ``first``; returns records oldest-first.

    Trailer words let multi-word records be skipped from behind.  The
    scan stops when it hits space that does not parse — exactly the
    "newest record to oldest" recovery the paper performs on a wrapped
    buffer where the oldest data may be half-overwritten.
    """
    records: list[Record] = []
    idx = last
    while idx >= first:
        word = words[idx]
        if word == INVALID or word == SENTINEL:
            break
        if is_dag_word(word):
            records.append(decode_dag(word))
            idx -= 1
        elif is_ext_trailer(word):
            kind = (word >> 24) & 0x1F
            length = (word >> 16) & 0xFF
            head_idx = idx - length - 1
            if head_idx < first:
                break  # the header was overwritten: stop
            header = words[head_idx]
            if not is_ext_header(header):
                break
            payload = tuple(words[head_idx + 1 : idx])
            records.append(ExtRecord(kind, header & 0xFFFF, payload))
            idx = head_idx - 1
        elif is_ext_header(word):
            kind = (word >> 24) & 0x1F
            length = (word >> 16) & 0xFF
            if length:
                break  # mid-payload landing: unrecoverable from behind
            records.append(ExtRecord(kind, word & 0xFFFF))
            idx -= 1
        else:
            break
    records.reverse()
    return records
