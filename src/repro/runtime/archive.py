"""Snap archiving: compressed snap files.

The paper notes that "trace buffers are themselves readily compressible
by a factor of 10 or more for ease of archiving or transmission"
(§2.1) — DAG records repeat heavily (loops emit identical words), and
zeroed sub-buffer space is pure runs.  This module provides the
compressed snap container the eBay anecdote implies ("sent the trace,
in real time, to another author back at corporate headquarters").
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.runtime.snap import SnapFile

#: Magic prefix of compressed snap containers.
MAGIC = b"TBSZ1\n"


def pack_words(words: list[int]) -> bytes:
    """Serialize a word list to little-endian bytes."""
    return struct.pack(f"<{len(words)}I", *[w & 0xFFFFFFFF for w in words])


def unpack_words(data: bytes) -> list[int]:
    """Inverse of :func:`pack_words`."""
    count = len(data) // 4
    return list(struct.unpack(f"<{count}I", data[: count * 4]))


def compress_snap(snap: SnapFile, level: int = 6) -> bytes:
    """One self-contained compressed artifact for a snap.

    Buffer words are packed as raw little-endian 32-bit data (where the
    repetitive structure lives) and the metadata rides along as JSON;
    the whole payload is deflated.
    """
    payload = snap.to_dict()
    blobs: list[bytes] = []
    for buffer in payload["buffers"]:
        blob = pack_words(buffer["words"])
        buffer["words"] = ["blob", len(blobs), len(blob)]
        blobs.append(blob)
    header = json.dumps(payload).encode()
    body = struct.pack("<I", len(header)) + header + b"".join(blobs)
    return MAGIC + zlib.compress(body, level)


def decompress_snap(data: bytes) -> SnapFile:
    """Inverse of :func:`compress_snap`."""
    if not data.startswith(MAGIC):
        raise ValueError("not a compressed snap container")
    body = zlib.decompress(data[len(MAGIC):])
    (header_len,) = struct.unpack("<I", body[:4])
    payload = json.loads(body[4 : 4 + header_len])
    cursor = 4 + header_len
    for buffer in payload["buffers"]:
        marker = buffer["words"]
        if isinstance(marker, list) and marker and marker[0] == "blob":
            _, _index, size = marker
            buffer["words"] = unpack_words(body[cursor : cursor + size])
            cursor += size
    return SnapFile.from_dict(payload)


def compression_ratio(snap: SnapFile, level: int = 6) -> float:
    """Raw-buffer bytes vs compressed container bytes."""
    raw = sum(len(b.words) * 4 for b in snap.buffers)
    packed = len(compress_snap(snap, level))
    return raw / packed if packed else 0.0


def save_compressed(snap: SnapFile, path: str, level: int = 6) -> None:
    """Write a compressed snap container to disk."""
    with open(path, "wb") as fh:
        fh.write(compress_snap(snap, level))


def load_compressed(path: str) -> SnapFile:
    """Read a container written by :func:`save_compressed`."""
    with open(path, "rb") as fh:
        return decompress_snap(fh.read())
