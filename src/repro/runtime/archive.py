"""Snap archiving: compressed snap files.

The paper notes that "trace buffers are themselves readily compressible
by a factor of 10 or more for ease of archiving or transmission"
(§2.1) — DAG records repeat heavily (loops emit identical words), and
zeroed sub-buffer space is pure runs.  This module provides the
compressed snap container the eBay anecdote implies ("sent the trace,
in real time, to another author back at corporate headquarters").

Container format v2 (``TBSZ2``)::

    magic  b"TBSZ2\\n"
    <I>    uncompressed body length        (container-level length check)
    zlib-compressed body:
        <I> header length
        header JSON (buffer word lists replaced by
                     ["blob", index, byte size, crc32] markers)
        blob bytes, concatenated

The CRC32 per blob and the body-length word exist because snaps travel:
a connection cut mid-transfer used to yield a silently short word list
or a raw ``struct.error``.  v1 containers (no checksums) remain
readable.  :func:`salvage_decompress` recovers what it can from a torn
or bit-flipped container instead of raising.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import threading
import zlib
from array import array

from repro.runtime.snap import SnapFile

#: Magic prefix of current (checksummed) compressed snap containers.
MAGIC = b"TBSZ2\n"

#: Magic prefix of legacy containers (no checksums, no length word).
MAGIC_V1 = b"TBSZ1\n"


class ArchiveError(ValueError):
    """The container is damaged: torn, truncated, or checksum-corrupt."""


#: Precompiled length-word codec: building ``f"<{n}I"`` format strings
#: per call made ``struct`` re-parse the format on every buffer; the
#: bulk paths below go through ``array`` instead, and the one-word
#: header fields use this single compiled Struct.
_U32 = struct.Struct("<I")

_NATIVE_IS_LE = sys.byteorder == "little"


def pack_words(words: list[int]) -> bytes:
    """Serialize a word list to little-endian bytes."""
    try:
        packed = array("I", words)
    except (OverflowError, TypeError, ValueError):
        # Out-of-range values (hand-built snaps): mask and retry.
        packed = array("I", [w & 0xFFFFFFFF for w in words])
    if not _NATIVE_IS_LE:
        packed.byteswap()
    return packed.tobytes()


def unpack_words(data: bytes) -> list[int]:
    """Inverse of :func:`pack_words`."""
    count = len(data) // 4
    unpacked = array("I")
    unpacked.frombytes(data[: count * 4])
    if not _NATIVE_IS_LE:
        unpacked.byteswap()
    return unpacked.tolist()


def _pack_body(snap: SnapFile, with_crc: bool) -> bytes:
    payload = snap.to_dict()
    blobs: list[bytes] = []
    for buffer in payload["buffers"]:
        blob = pack_words(buffer["words"])
        marker = ["blob", len(blobs), len(blob)]
        if with_crc:
            marker.append(zlib.crc32(blob))
        buffer["words"] = marker
        blobs.append(blob)
    header = json.dumps(payload).encode()
    return _U32.pack(len(header)) + header + b"".join(blobs)


def compress_snap(snap: SnapFile, level: int = 6, version: int = 2) -> bytes:
    """One self-contained compressed artifact for a snap.

    Buffer words are packed as raw little-endian 32-bit data (where the
    repetitive structure lives) and the metadata rides along as JSON;
    the whole payload is deflated.  ``version=1`` writes the legacy
    un-checksummed container (kept for compatibility tests).
    """
    if version == 1:
        return MAGIC_V1 + zlib.compress(_pack_body(snap, with_crc=False), level)
    body = _pack_body(snap, with_crc=True)
    return MAGIC + _U32.pack(len(body)) + zlib.compress(body, level)


def _parse_body(
    body: bytes, strict: bool, notes: list[str]
) -> SnapFile | None:
    """Shared v1/v2 body parser.

    In strict mode any damage raises :class:`ArchiveError`; otherwise
    problems land in ``notes`` and damaged blobs are recovered as far as
    the surviving bytes allow.
    """
    if len(body) < 4:
        if strict:
            raise ArchiveError("container body too short for a header")
        notes.append("container body too short for a header")
        return None
    (header_len,) = _U32.unpack(body[:4])
    if 4 + header_len > len(body):
        if strict:
            raise ArchiveError(
                f"container torn inside the metadata header "
                f"({header_len} bytes declared, {len(body) - 4} present)"
            )
        notes.append("container torn inside the metadata header")
        return None
    try:
        payload = json.loads(body[4 : 4 + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        if strict:
            raise ArchiveError(f"metadata header unparseable: {exc}") from exc
        notes.append(f"metadata header unparseable: {exc}")
        return None
    cursor = 4 + header_len
    for buffer in payload.get("buffers", []):
        marker = buffer.get("words")
        if not (isinstance(marker, list) and marker and marker[0] == "blob"):
            continue
        size = marker[2]
        crc = marker[3] if len(marker) > 3 else None
        blob = body[cursor : cursor + size]
        if len(blob) < size:
            message = (
                f"buffer {buffer.get('index', '?')}: blob truncated "
                f"({len(blob)}/{size} bytes survive)"
            )
            if strict:
                raise ArchiveError(message)
            notes.append(message)
        elif crc is not None and zlib.crc32(blob) != crc:
            message = (
                f"buffer {buffer.get('index', '?')}: blob CRC mismatch "
                "(corrupt words)"
            )
            if strict:
                raise ArchiveError(message)
            notes.append(message)
        buffer["words"] = unpack_words(blob)
        cursor += size
    if strict:
        return SnapFile.from_dict(payload)
    snap, field_notes = SnapFile.from_dict_salvage(payload)
    notes.extend(field_notes)
    return snap


def _inflate_partial(compressed: bytes) -> bytes:
    """Inflate as much of a damaged zlib stream as possible.

    The zlib wrapper's trailing adler32 makes *any* corruption fatal to
    ``zlib.decompress`` even when every deflate block inflated fine, so
    strip the 2-byte wrapper and inflate the raw deflate stream in small
    chunks: a mid-stream error then still keeps everything decoded
    before it, and a corrupt checksum costs nothing.
    """
    if len(compressed) < 3:
        return b""
    inflater = zlib.decompressobj(wbits=-zlib.MAX_WBITS)
    chunks: list[bytes] = []
    raw = compressed[2:]  # past the zlib CMF/FLG header
    for start in range(0, len(raw), 1024):
        try:
            chunks.append(inflater.decompress(raw[start : start + 1024]))
        except zlib.error:
            break
    else:
        try:
            chunks.append(inflater.flush())
        except zlib.error:
            pass
    return b"".join(chunks)


def decompress_snap(data: bytes) -> SnapFile:
    """Inverse of :func:`compress_snap`.  Raises :class:`ArchiveError`
    on any damage (truncation, tearing, CRC mismatch)."""
    if data.startswith(MAGIC_V1):
        try:
            body = zlib.decompress(data[len(MAGIC_V1):])
        except zlib.error as exc:
            raise ArchiveError(f"container deflate stream damaged: {exc}") from exc
        return _parse_body(body, strict=True, notes=[])
    if not data.startswith(MAGIC):
        raise ArchiveError("not a compressed snap container")
    if len(data) < len(MAGIC) + 4:
        raise ArchiveError("container truncated before the length word")
    (body_len,) = _U32.unpack(data[len(MAGIC) : len(MAGIC) + 4])
    try:
        body = zlib.decompress(data[len(MAGIC) + 4 :])
    except zlib.error as exc:
        raise ArchiveError(f"container deflate stream damaged: {exc}") from exc
    if len(body) != body_len:
        raise ArchiveError(
            f"container length check failed: {len(body)} bytes inflate, "
            f"{body_len} declared (truncated in transit?)"
        )
    return _parse_body(body, strict=True, notes=[])


def salvage_decompress(data: bytes) -> tuple[SnapFile | None, list[str]]:
    """Best-effort read of a damaged container.

    Returns ``(snap, notes)``: ``snap`` is None only when nothing at all
    is recoverable (unreadable metadata); otherwise it carries every
    buffer whose bytes survive, with damage described in ``notes``.
    Never raises on damage.
    """
    notes: list[str] = []
    if data.startswith(MAGIC_V1):
        compressed = data[len(MAGIC_V1):]
        declared = None
    elif data.startswith(MAGIC):
        if len(data) < len(MAGIC) + 4:
            return None, ["container truncated before the length word"]
        (declared,) = _U32.unpack(data[len(MAGIC) : len(MAGIC) + 4])
        compressed = data[len(MAGIC) + 4 :]
    else:
        return None, ["not a compressed snap container"]
    try:
        body = zlib.decompress(compressed)
    except zlib.error as exc:
        notes.append(f"deflate stream damaged: {exc}")
        body = _inflate_partial(compressed)
    if declared is not None and len(body) != declared:
        notes.append(
            f"length check failed: {len(body)}/{declared} bytes recovered"
        )
    snap = _parse_body(body, strict=False, notes=notes)
    return snap, notes


def compression_ratio(snap: SnapFile, level: int = 6) -> float:
    """Raw-buffer bytes vs compressed container bytes."""
    raw = sum(len(b.words) * 4 for b in snap.buffers)
    packed = len(compress_snap(snap, level))
    return raw / packed if packed else 0.0


def save_compressed(snap: SnapFile, path: str, level: int = 6) -> None:
    """Write a compressed snap container to disk, atomically.

    The bytes land in a sibling temp file first and are moved into
    place with :func:`os.replace`, so an abrupt kill mid-write (the
    exact tear ``repro.chaos`` injects) can never leave a torn
    container at ``path``: readers see the old content or the new,
    never a prefix.
    """
    data = compress_snap(snap, level)
    write_atomic(data, path)


def write_atomic(data: bytes, path: str, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` via temp file + ``os.replace``.

    ``fsync=False`` skips the per-file flush-to-disk: callers doing
    group commit (the vault's batched ingest) write many blobs first
    and issue one sync point for the whole batch before recording any
    of them in a manifest, amortising what is otherwise the dominant
    per-snap cost.  The rename is atomic either way — readers see the
    old bytes or the new, never a prefix.
    """
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_compressed(path: str) -> SnapFile:
    """Read a container written by :func:`save_compressed`."""
    with open(path, "rb") as fh:
        return decompress_snap(fh.read())


def inspect_container(data: bytes) -> dict:
    """Cheap structural report on a container, without reconstruction.

    Backs ``tbtrace info``: version, body-length check, blob census and
    per-blob CRC status, and the snap metadata (reason, process,
    machine, clock, module/thread counts) straight from the header
    JSON.  Never raises on damage — problems land in ``"problems"``.
    """
    info: dict = {
        "version": None,
        "size": len(data),
        "length_ok": None,
        "blobs": [],
        "crc_ok": None,
        "meta": None,
        "problems": [],
    }
    if data.startswith(MAGIC_V1):
        info["version"] = 1
        compressed = data[len(MAGIC_V1):]
        declared = None
    elif data.startswith(MAGIC):
        info["version"] = 2
        if len(data) < len(MAGIC) + 4:
            info["problems"].append("container truncated before the length word")
            return info
        (declared,) = _U32.unpack(data[len(MAGIC) : len(MAGIC) + 4])
        compressed = data[len(MAGIC) + 4 :]
    else:
        info["problems"].append("not a compressed snap container")
        return info
    try:
        body = zlib.decompress(compressed)
    except zlib.error as exc:
        info["problems"].append(f"deflate stream damaged: {exc}")
        body = _inflate_partial(compressed)
    if declared is not None:
        info["length_ok"] = len(body) == declared
        if not info["length_ok"]:
            info["problems"].append(
                f"length check failed: {len(body)}/{declared} bytes"
            )
    if len(body) < 4:
        info["problems"].append("container body too short for a header")
        return info
    (header_len,) = _U32.unpack(body[:4])
    if 4 + header_len > len(body):
        info["problems"].append("container torn inside the metadata header")
        return info
    try:
        payload = json.loads(body[4 : 4 + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        info["problems"].append(f"metadata header unparseable: {exc}")
        return info
    from repro.replay.ndlog import replayable_status

    replay = payload.get("replay") or {}
    ndlog = replay.get("ndlog") if isinstance(replay, dict) else None
    info["meta"] = {
        "reason": payload.get("reason"),
        "detail": payload.get("detail"),
        "process_name": payload.get("process_name"),
        "machine_name": payload.get("machine_name"),
        "clock": payload.get("clock"),
        "modules": len(payload.get("modules", [])),
        "threads": len(payload.get("threads", [])),
        "buffers": len(payload.get("buffers", [])),
        "replayable": replayable_status(replay if isinstance(replay, dict) else {}),
        # Wire format of the embedded nondeterminism log, when any
        # ("tb-ndlog/1" plain JSON, "tb-ndlog/2" packed columnar).
        "ndlog_format": (
            ndlog.get("format") if isinstance(ndlog, dict) else None
        ),
    }
    cursor = 4 + header_len
    all_ok: bool | None = None
    for buffer in payload.get("buffers", []):
        marker = buffer.get("words")
        if not (isinstance(marker, list) and marker and marker[0] == "blob"):
            continue
        size = marker[2]
        crc = marker[3] if len(marker) > 3 else None
        blob = body[cursor : cursor + size]
        entry = {
            "index": buffer.get("index"),
            "bytes": size,
            "present": len(blob),
        }
        if len(blob) < size:
            entry["crc"] = "truncated"
            all_ok = False
            info["problems"].append(
                f"buffer {buffer.get('index', '?')}: blob truncated "
                f"({len(blob)}/{size} bytes)"
            )
        elif crc is None:
            entry["crc"] = "absent"
        else:
            ok = zlib.crc32(blob) == crc
            entry["crc"] = "ok" if ok else "mismatch"
            if not ok:
                info["problems"].append(
                    f"buffer {buffer.get('index', '?')}: blob CRC mismatch"
                )
            if all_ok is None:
                all_ok = ok
            else:
                all_ok = all_ok and ok
        info["blobs"].append(entry)
        cursor += size
    info["crc_ok"] = all_ok
    return info
