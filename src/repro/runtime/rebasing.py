"""DAG rebasing: giving each loaded module a distinct DAG id range (§2.3).

"Every module is compiled with a default DAG ID range.  The runtime
checks whether the default range conflicts with any existing module.  If
there is a conflict, the runtime uses an instrumentation-produced fixup
table within the module to rewrite all DAG ID references, so the inlined
probe instructions end up using a distinct range of ids."

Policies implemented here, all from the paper:

* same-checksum modules get the *same* range every (re)load, so a
  long-running server that loads/unloads a module repeatedly does not
  leak id space;
* if no free range exists, the module's probes are rewritten to the
  reserved **bad DAG id** — the module runs fine but its trace is not
  recoverable (and other modules' traces still are);
* a user-supplied DAG base file can pre-assign ranges to avoid the
  load-time rewriting cost entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.isa.encoding import decode, encode
from repro.isa.instructions import Op
from repro.runtime.records import BAD_DAG_ID, MAX_DAG_ID
from repro.vm.loader import LoadedModule

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.instrument.dagbase import DagBaseFile


@dataclass
class DagRange:
    """One module's assigned DAG id range."""

    base: int
    count: int
    checksum: str
    module_name: str
    bad: bool = False

    @property
    def end(self) -> int:
        return self.base + self.count

    def contains(self, dag_id: int) -> bool:
        """Whether ``dag_id`` belongs to this range."""
        return self.base <= dag_id < self.end


class DagAllocator:
    """Allocates DAG id ranges within one runtime (= one process)."""

    def __init__(
        self,
        max_dag_id: int = MAX_DAG_ID,
        dagbase: "DagBaseFile | None" = None,
    ):
        self.max_dag_id = max_dag_id
        self.dagbase = dagbase
        #: checksum -> assigned range (persists across unload/reload).
        self.by_checksum: dict[str, DagRange] = {}
        self.rebase_count = 0
        self.bad_count = 0

    # ------------------------------------------------------------------
    def _conflicts(self, base: int, count: int) -> bool:
        for other in self.by_checksum.values():
            if other.bad:
                continue
            if base < other.end and other.base < base + count:
                return True
        return False

    def _first_fit(self, count: int) -> int | None:
        """Lowest base where ``count`` ids fit, or None if exhausted."""
        taken = sorted(
            (r.base, r.end) for r in self.by_checksum.values() if not r.bad
        )
        candidate = 0
        for start, end in taken:
            if candidate + count <= start:
                return candidate
            candidate = max(candidate, end)
        if candidate + count <= self.max_dag_id:
            return candidate
        return None

    # ------------------------------------------------------------------
    def assign(self, loaded: LoadedModule) -> DagRange:
        """Choose (and apply) a DAG range for a freshly loaded module.

        Rewrites the loaded code segment through the module's fixup
        table when the assigned base differs from the compiled default.
        """
        module = loaded.module
        if module.dag_base is None:
            raise ValueError(f"module {module.name!r} is not instrumented")
        checksum = module.checksum()

        previous = self.by_checksum.get(checksum)
        if previous is not None:
            # Same module as before: reuse its range (no id-space leak).
            self._apply(loaded, previous.base if not previous.bad else None)
            return previous

        count = module.dag_count
        base: int | None = None
        if self.dagbase is not None:
            base = self.dagbase.base_for(module.name)
            if base is not None and self._conflicts(base, count):
                base = None  # stale dagbase file: fall through
        if base is None:
            default = module.dag_base
            if default + count <= self.max_dag_id and not self._conflicts(
                default, count
            ):
                base = default
            else:
                base = self._first_fit(count)

        if base is None:
            rng = DagRange(
                base=BAD_DAG_ID, count=count, checksum=checksum,
                module_name=module.name, bad=True,
            )
            self.by_checksum[checksum] = rng
            self.bad_count += 1
            self._apply(loaded, None)
            return rng

        rng = DagRange(
            base=base, count=count, checksum=checksum, module_name=module.name
        )
        self.by_checksum[checksum] = rng
        if base != module.dag_base:
            self.rebase_count += 1
        self._apply(loaded, base)
        return rng

    # ------------------------------------------------------------------
    def _apply(self, loaded: LoadedModule, new_base: int | None) -> None:
        """Rewrite the loaded code's STDAG immediates.

        ``new_base`` of None means "use the bad DAG id everywhere".
        """
        module = loaded.module
        default = module.dag_base or 0
        if new_base == default:
            return  # compiled-in ids are already correct
        code_seg = loaded.segments[0]
        for offset in module.dag_fixups:
            instr = decode(code_seg.words[offset])
            if instr.op is not Op.STDAG:
                raise ValueError(
                    f"{module.name}: DAG fixup at {offset} is not STDAG"
                )
            if new_base is None:
                new_id = BAD_DAG_ID
            else:
                new_id = instr.imm - default + new_base
            code_seg.words[offset] = encode(instr.with_imm(new_id))

    # ------------------------------------------------------------------
    def range_for_id(self, dag_id: int) -> DagRange | None:
        """The assigned range containing ``dag_id``, or None."""
        for rng in self.by_checksum.values():
            if not rng.bad and rng.contains(dag_id):
                return rng
        return None


def rewrite_tls_slots(
    loaded: LoadedModule,
    trace_slot: int,
    spill_slot: int,
    compiled_trace_slot: int,
    compiled_spill_slot: int,
) -> int:
    """Rewrite probe TLS indices via the module's fixup table (§2.5).

    "If this TLS index is not available, the runtime rewrites all the
    TLS indices in the inline probes using a fixup table, in a fashion
    similar to the DAG rebasing."  Returns the number of rewritten
    instructions.
    """
    if (trace_slot, spill_slot) == (compiled_trace_slot, compiled_spill_slot):
        return 0
    code_seg = loaded.segments[0]
    mapping = {compiled_trace_slot: trace_slot, compiled_spill_slot: spill_slot}
    rewritten = 0
    for offset in loaded.module.tls_fixups:
        instr = decode(code_seg.words[offset])
        if instr.op not in (Op.TLSLD, Op.TLSST):
            raise ValueError(
                f"{loaded.module.name}: TLS fixup at {offset} is not a TLS op"
            )
        if instr.imm in mapping:
            code_seg.words[offset] = encode(instr.with_imm(mapping[instr.imm]))
            rewritten += 1
    return rewritten
