"""Snapshots: triggers, policy files, suppression, snap artifacts (§3.6).

"A TraceBack snapshot (or snap) is a collection of execution histories
and metadata from which TraceBack reconstructs program state. ...
Triggers are controlled by entries in a textual policy file that the
runtime reads as it starts up."

Policy file grammar (one directive per line, ``#`` comments)::

    snap on exception [CODE...]    # first-chance; no codes = all
    snap on unhandled              # unhandled exceptions
    snap on signal [SIGNUM...]     # no numbers = all fatal signals
    snap on api                    # the guest SNAP syscall
    snap on hang                   # service-process heartbeat timeout
    suppress duplicates on|off     # §3.6.2 snap suppression
    max snaps N
    include memory on|off

Suppression dedupes on "the same exception coming from the same program
location" — keyed by (trigger kind, detail code, module checksum, code
offset) — and is "a key factor in producing a usable system": useless
snaps cost runtime, disk, and attention.
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import dataclass, field


class PolicyError(ValueError):
    """Malformed policy file."""


@dataclass
class SnapPolicy:
    """Parsed snap policy."""

    #: None = never; empty set = every exception; else specific codes.
    exception_codes: set[int] | None = None
    unhandled: bool = True
    #: None = never; empty set = every fatal signal; else specific ones.
    signals: set[int] | None = field(default_factory=set)
    api: bool = True
    hang: bool = True
    suppress_duplicates: bool = True
    max_snaps: int = 100
    include_memory: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "SnapPolicy":
        """Parse the textual policy format."""
        policy = cls(
            exception_codes=None,
            unhandled=False,
            signals=None,
            api=False,
            hang=False,
        )
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip().lower()
            if not line:
                continue
            words = line.split()
            if words[:2] == ["snap", "on"] and len(words) >= 3:
                kind = words[2]
                args = words[3:]
                if kind == "exception":
                    policy.exception_codes = {int(a, 0) for a in args}
                elif kind == "unhandled":
                    policy.unhandled = True
                elif kind == "signal":
                    policy.signals = {int(a, 0) for a in args}
                elif kind == "api":
                    policy.api = True
                elif kind == "hang":
                    policy.hang = True
                else:
                    raise PolicyError(f"line {lineno}: unknown trigger {kind!r}")
            elif words[0] == "suppress" and len(words) == 3:
                policy.suppress_duplicates = words[2] == "on"
            elif words[0] == "max" and words[1] == "snaps":
                policy.max_snaps = int(words[2])
            elif words[0] == "include" and words[1] == "memory":
                policy.include_memory = words[2] == "on"
            else:
                raise PolicyError(f"line {lineno}: unparseable {raw!r}")
        return policy

    @classmethod
    def load(cls, path: str) -> "SnapPolicy":
        """Read and parse a policy file."""
        with open(path) as fh:
            return cls.parse(fh.read())

    # ------------------------------------------------------------------
    def wants_exception(self, code: int) -> bool:
        """First-chance exception trigger check."""
        if self.exception_codes is None:
            return False
        return not self.exception_codes or code in self.exception_codes

    def wants_signal(self, signum: int) -> bool:
        """Signal trigger check."""
        if self.signals is None:
            return False
        return not self.signals or signum in self.signals


class Suppressor:
    """Duplicate-snap suppression (§3.6.2)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._seen: set[tuple] = set()
        self.suppressed_count = 0

    def should_snap(self, key: tuple) -> bool:
        """True if a snap with this key should proceed."""
        if not self.enabled:
            return True
        if key in self._seen:
            self.suppressed_count += 1
            return False
        self._seen.add(key)
        return True


@dataclass
class BufferDump:
    """One trace buffer's raw contents inside a snap."""

    index: int
    flags: int
    base: int
    sub_count: int
    sub_size: int
    owner_tid: int | None
    words: list[int]


@dataclass
class ThreadDump:
    """One thread's state at snap time."""

    tid: int
    name: str
    state: str
    pc: int
    trace_ptr: int
    block_reason: str | None


@dataclass
class ModuleDump:
    """Per-module metadata a snap carries (drives mapfile matching)."""

    name: str
    checksum: str
    dag_base_default: int
    dag_base_actual: int
    dag_count: int
    code_base: int
    loaded: bool
    #: Section bases, for resolving data symbols against memory dumps.
    data_base: int = -1
    rodata_base: int = -1


@dataclass
class SnapFile:
    """A complete snap: the unit handed to reconstruction."""

    reason: str
    detail: dict
    process_name: str
    pid: int
    machine_name: str
    clock: int
    modules: list[ModuleDump]
    buffers: list[BufferDump]
    threads: list[ThreadDump]
    #: Optional memory dump: segment name -> (base, words).
    memory: dict[str, tuple[int, list[int]]] = field(default_factory=dict)
    #: Reproducibility metadata: ``{"seed": {...}}`` for any snap taken
    #: by a runtime, plus ``{"ndlog": {...}}`` (the ``tb-ndlog/1`` or
    #: ``tb-ndlog/2`` nondeterminism log) when the run recorded for
    #: replay.  Legacy snaps carry an empty dict.
    replay: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def replayable(self) -> str:
        """``"full"`` (ndlog present), ``"seed-only"``, or ``"none"``.

        Delegates to :func:`repro.replay.ndlog.replayable_status` — the
        single implementation of the status ladder — so local snaps and
        vault manifests can never classify the same replay dict
        differently.
        """
        # Deferred import: repro.replay imports the runtime package.
        from repro.replay.ndlog import replayable_status

        return replayable_status(self.replay)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = {
            "reason": self.reason,
            # Copied, not aliased: round-tripping through to_dict/from_dict
            # is how copy_snap builds independent copies, and callers
            # mutate detail (group linkage, chaos injection) after the fact.
            "detail": dict(self.detail),
            "process_name": self.process_name,
            "pid": self.pid,
            "machine_name": self.machine_name,
            "clock": self.clock,
            "modules": [dict(vars(m)) for m in self.modules],
            "buffers": [
                {**vars(b), "words": list(b.words)} for b in self.buffers
            ],
            "threads": [dict(vars(t)) for t in self.threads],
            "memory": {k: [v[0], list(v[1])] for k, v in self.memory.items()},
        }
        if self.replay:
            # Emitted only when present so legacy artifacts (and their
            # content digests) are byte-for-byte unchanged.
            d["replay"] = dict(self.replay)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SnapFile":
        return cls(
            reason=d["reason"],
            detail=dict(d["detail"]),
            process_name=d["process_name"],
            pid=d["pid"],
            machine_name=d["machine_name"],
            clock=d["clock"],
            modules=[ModuleDump(**m) for m in d["modules"]],
            buffers=[BufferDump(**b) for b in d["buffers"]],
            threads=[ThreadDump(**t) for t in d["threads"]],
            memory={k: (v[0], v[1]) for k, v in d["memory"].items()},
            # Deep, not shallow: the nested ndlog is mutated by chaos
            # injection and must stay independent of the source dict
            # (the copy_snap contract).
            replay=copy.deepcopy(d.get("replay") or {}),
        )

    @classmethod
    def from_dict_salvage(cls, d: dict) -> tuple["SnapFile", list[str]]:
        """Tolerant counterpart of :meth:`from_dict`.

        Damaged snap artifacts (torn JSON re-serialized, containers with
        lost blobs) may be missing fields or carry malformed entries;
        every such loss becomes a note instead of a ``KeyError``, so the
        reconstruction pipeline always gets *a* snap to work on.
        """
        notes: list[str] = []

        def pick(items: list, kind: str, build) -> list:
            kept = []
            for i, item in enumerate(items if isinstance(items, list) else []):
                try:
                    kept.append(build(item))
                except (TypeError, KeyError, ValueError):
                    notes.append(f"{kind} entry {i}: malformed metadata dropped")
            return kept

        def build_buffer(b: dict) -> BufferDump:
            # Coerce aggressively: a buffer whose geometry fields are
            # garbage is dropped (int() raises), but stray non-integer
            # words are filtered so the rest of the dump stays mineable.
            words = [w for w in b.get("words", []) if isinstance(w, int)]
            owner = b.get("owner_tid")
            return BufferDump(
                index=int(b["index"]),
                flags=int(b["flags"]),
                base=int(b["base"]),
                sub_count=int(b["sub_count"]),
                sub_size=int(b["sub_size"]),
                owner_tid=None if owner is None else int(owner),
                words=words,
            )

        if not isinstance(d, dict):
            d = {}
            notes.append("snap metadata is not a mapping; starting empty")
        snap = cls(
            reason=d.get("reason", "unknown"),
            detail=d.get("detail") if isinstance(d.get("detail"), dict) else {},
            process_name=str(d.get("process_name", "<unknown>")),
            pid=d.get("pid", -1),
            machine_name=str(d.get("machine_name", "<unknown>")),
            clock=d.get("clock", 0),
            modules=pick(d.get("modules", []), "module", lambda m: ModuleDump(**m)),
            buffers=pick(d.get("buffers", []), "buffer", build_buffer),
            threads=pick(d.get("threads", []), "thread", lambda t: ThreadDump(**t)),
            memory={},
            # Copied like from_dict (a salvaged snap must never alias
            # the caller's dict — mutations leaked into the source).
            replay=(
                copy.deepcopy(d.get("replay"))
                if isinstance(d.get("replay"), dict)
                else {}
            ),
        )
        memory = d.get("memory")
        if isinstance(memory, dict):
            for key, value in memory.items():
                try:
                    snap.memory[key] = (value[0], value[1])
                except (TypeError, IndexError, KeyError):
                    notes.append(f"memory segment {key!r}: malformed, dropped")
        for field_name in ("reason", "process_name", "machine_name"):
            if field_name not in d:
                notes.append(f"snap metadata missing {field_name!r}")
        return snap, notes

    def save(self, path: str) -> None:
        """Persist as JSON (the on-disk snap artifact)."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def load(cls, path: str) -> "SnapFile":
        """Read a snap written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


class SnapStore:
    """Where snaps land: an in-memory list plus an optional directory."""

    def __init__(self, directory: str | None = None):
        self.snaps: list[SnapFile] = []
        self.directory = directory

    def add(self, snap: SnapFile) -> None:
        """Record (and optionally persist) a snap."""
        self.snaps.append(snap)
        if self.directory is not None:
            name = f"snap-{len(self.snaps):04d}-{snap.process_name}.json"
            snap.save(os.path.join(self.directory, name))

    def latest(self) -> SnapFile | None:
        """The most recent snap, or None."""
        return self.snaps[-1] if self.snaps else None

    def __len__(self) -> int:
        return len(self.snaps)
