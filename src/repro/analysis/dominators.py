"""Dominators and natural-loop detection on recovered CFGs.

DAG tiling needs to know where cycles are: "each loop will contain at
least one heavyweight probe" (§2.1).  Back edges are found the classic
way — an edge ``u -> v`` is a back edge iff ``v`` dominates ``u`` — via
the iterative dominance algorithm of Cooper, Harvey & Kennedy.  Any edge
that closes a cycle but is *not* a natural back edge (irreducible flow,
possible with recovered binaries) is handled conservatively by a DFS
cycle check, so tiling never builds a cyclic "DAG".
"""

from __future__ import annotations

from repro.analysis.cfg import CFG


def compute_dominators(cfg: CFG) -> dict[int, set[int]]:
    """Full dominator sets per block (small CFGs; clarity over speed).

    Blocks unreachable from the entries dominate nothing and are mapped
    to the set of all blocks (the standard lattice top).
    """
    all_blocks = set(cfg.blocks)
    entries = set(cfg.entries)
    dom: dict[int, set[int]] = {}
    for start in cfg.blocks:
        dom[start] = {start} if start in entries else set(all_blocks)

    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for start in order:
            if start in entries:
                continue
            preds = cfg.blocks[start].preds
            if preds:
                new = set(all_blocks)
                for pred in preds:
                    new &= dom[pred]
            else:
                new = set(all_blocks) - {start}
            new = new | {start}
            if new != dom[start]:
                dom[start] = new
                changed = True
    return dom


def back_edges(cfg: CFG) -> set[tuple[int, int]]:
    """Edges ``(u, v)`` where ``v`` dominates ``u`` (natural back edges)."""
    dom = compute_dominators(cfg)
    edges = set()
    for start, block in cfg.blocks.items():
        for succ in block.succs:
            if succ in dom[start]:
                edges.add((start, succ))
    return edges


def retreating_edges(cfg: CFG) -> set[tuple[int, int]]:
    """All cycle-closing edges, including irreducible ones.

    A DFS from the entries marks an edge retreating when it targets a
    node currently on the DFS stack.  This is a superset of
    :func:`back_edges` and is what DAG tiling cuts, guaranteeing the
    tiles are acyclic even for irreducible control flow.
    """
    edges: set[tuple[int, int]] = set()
    color: dict[int, int] = {}  # 0/absent = white, 1 = on stack, 2 = done

    def dfs(root: int) -> None:
        stack: list[tuple[int, iter]] = [(root, iter(cfg.blocks[root].succs))]
        color[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if color.get(succ, 0) == 1:
                    edges.add((node, succ))
                elif color.get(succ, 0) == 0:
                    color[succ] = 1
                    stack.append((succ, iter(cfg.blocks[succ].succs)))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()

    for entry in cfg.entries:
        if color.get(entry, 0) == 0:
            dfs(entry)
    for start in cfg.block_order():
        if color.get(start, 0) == 0:
            dfs(start)
    return edges


def loop_headers(cfg: CFG) -> set[int]:
    """Targets of retreating edges: where tiling must start new DAGs."""
    return {target for _, target in retreating_edges(cfg)}


def natural_loop(cfg: CFG, back_edge: tuple[int, int]) -> set[int]:
    """The natural loop of a back edge ``(u, v)``: ``v`` plus all blocks
    that reach ``u`` without passing through ``v``."""
    tail, header = back_edge
    loop = {header}
    stack = []
    if tail not in loop:
        loop.add(tail)
        stack.append(tail)
    while stack:
        node = stack.pop()
        for pred in cfg.blocks[node].preds:
            if pred not in loop:
                loop.add(pred)
                stack.append(pred)
    return loop
