"""Control-flow graph recovery from TBVM binary code.

TraceBack "separates code from data" and "lifts code and data to an
abstract graph representation" before instrumenting (§2).  For TBVM the
separation is structural (sections), but CFG recovery is real work:
leaders come from branch targets, call return points, exception handler
entries, and *indirect* branch targets recovered from jump-table
relocations — the conservative set of places control can enter.

Blocks are intervals of code offsets relative to the module.  Each block
knows its successors and the kind of its terminator; the DAG tiling pass
(:mod:`repro.instrument.tiling`) consumes exactly this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import decode
from repro.isa.instructions import (
    CALLS,
    CONDITIONAL_BRANCHES,
    UNCONDITIONAL_TRANSFERS,
    Instr,
    Op,
)
from repro.isa.module import FuncInfo, Module


@dataclass
class BasicBlock:
    """One basic block: code offsets ``[start, end)`` of its module."""

    start: int
    end: int
    instrs: list[Instr]
    #: Successor block start offsets, in (taken..., fallthrough) order.
    succs: list[int] = field(default_factory=list)
    #: Block starts that can branch here (filled by CFG construction).
    preds: list[int] = field(default_factory=list)
    #: True when the terminator is a call: the sole successor is the
    #: return point, which TraceBack forces to start a new DAG (§2.2).
    ends_with_call: bool = False
    #: True when the terminator is a syscall: the successor starts a new
    #: DAG so runtime event records can follow the completed record.
    ends_with_syscall: bool = False
    #: True when the terminator is an indirect multiway branch (JTAB/JMP):
    #: all targets are forced to DAG headers (§2.1).
    ends_with_multiway: bool = False

    @property
    def terminator(self) -> Instr:
        """The last instruction of the block."""
        return self.instrs[-1]

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class CFG:
    """Control-flow graph of one function."""

    module: Module
    func: FuncInfo
    blocks: dict[int, BasicBlock]
    #: External entry points: function entry, handler entries, indirect
    #: branch targets.  Every one must carry a heavyweight probe.
    entries: list[int]

    def block_order(self) -> list[int]:
        """Block starts in ascending code order."""
        return sorted(self.blocks)

    def block_at(self, offset: int) -> BasicBlock | None:
        """The block containing code ``offset``, or ``None``."""
        for start, block in self.blocks.items():
            if start <= offset < block.end:
                return block
        return None

    def reverse_postorder(self) -> list[int]:
        """Blocks in reverse postorder from all entries (forward
        dataflow order; unreachable blocks appended at the end)."""
        seen: set[int] = set()
        post: list[int] = []

        def visit(start: int) -> None:
            stack = [(start, iter(self.blocks[start].succs))]
            seen.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    post.append(node)
                    stack.pop()

        for entry in self.entries:
            if entry not in seen:
                visit(entry)
        for start in self.block_order():
            if start not in seen:
                visit(start)
        return list(reversed(post))


def indirect_targets(module: Module) -> set[int]:
    """Code offsets reachable through pointers: jump-table entries and
    any code symbol whose address is materialized into data.

    This is the conservative recovery a binary instrumenter must do:
    every address that escapes into data may come back as a JTAB or
    CALLR target, so it must be treated as an entry point.
    """
    targets: set[int] = set()
    for reloc in module.relocs:
        if reloc.symbol in module.symbols:
            section, offset = module.symbols[reloc.symbol]
            if section == "code":
                targets.add(offset)
    return targets


def build_cfg(module: Module, func: FuncInfo, split_at_lines: bool = False) -> CFG:
    """Recover the CFG of ``func`` within ``module``.

    ``split_at_lines`` additionally makes every source-line boundary a
    block leader — the IL-mode (Java/MSIL analog) refinement of §2.4
    that buys exact exception line numbers at the cost of more probes.
    """
    instrs = [decode(module.code[i]) for i in range(func.start, func.end)]

    def instr_at(offset: int) -> Instr:
        return instrs[offset - func.start]

    pointer_targets = {
        t for t in indirect_targets(module) if func.start <= t < func.end
    }
    handler_entries = [h.handler for h in func.handlers
                       if func.start <= h.handler < func.end]

    # --- Pass 1: leaders. ---
    leaders: set[int] = {func.start}
    leaders.update(pointer_targets)
    leaders.update(handler_entries)
    if split_at_lines:
        leaders.update(
            entry.start
            for entry in module.lines
            if func.start <= entry.start < func.end
        )
    for offset in range(func.start, func.end):
        instr = instr_at(offset)
        if instr.op in CONDITIONAL_BRANCHES or instr.op is Op.BR:
            target = offset + 1 + instr.imm
            if func.start <= target < func.end:
                leaders.add(target)
        if instr.ends_block() and offset + 1 < func.end:
            leaders.add(offset + 1)

    # --- Pass 2: blocks. ---
    starts = sorted(leaders)
    blocks: dict[int, BasicBlock] = {}
    for idx, start in enumerate(starts):
        end = starts[idx + 1] if idx + 1 < len(starts) else func.end
        blocks[start] = BasicBlock(
            start=start, end=end, instrs=[instr_at(i) for i in range(start, end)]
        )

    # --- Pass 3: edges. ---
    for block in blocks.values():
        term = block.terminator
        op = term.op
        term_offset = block.end - 1
        if op in CONDITIONAL_BRANCHES:
            taken = term_offset + 1 + term.imm
            if taken in blocks:
                block.succs.append(taken)
            if block.end in blocks:
                block.succs.append(block.end)
        elif op is Op.BR:
            target = term_offset + 1 + term.imm
            if target in blocks:
                block.succs.append(target)
        elif op in CALLS:
            block.ends_with_call = True
            if block.end in blocks:
                block.succs.append(block.end)
        elif op in (Op.JMP, Op.JTAB):
            block.ends_with_multiway = True
            block.succs.extend(sorted(pointer_targets))
        elif op in UNCONDITIONAL_TRANSFERS:
            pass  # RET / HALT / THROW: no intra-function successor
        else:
            if op is Op.SYS:
                block.ends_with_syscall = True
            # The block ends because the next offset is a leader.
            if block.end in blocks:
                block.succs.append(block.end)

    for block in blocks.values():
        for succ in block.succs:
            blocks[succ].preds.append(block.start)

    entries = [func.start]
    entries.extend(sorted((set(handler_entries) | pointer_targets) - {func.start}))
    # Call return points are also DAG entries, but they are *internal*
    # to the function; tiling handles them via ends_with_call.
    return CFG(module=module, func=func, blocks=blocks, entries=entries)


def build_all_cfgs(module: Module) -> dict[str, CFG]:
    """CFGs for every function in the module, keyed by function name."""
    return {func.name: build_cfg(module, func) for func in module.funcs}
