"""Register liveness analysis over recovered CFGs.

The paper: "TraceBack uses well-known compiler algorithms like liveness
analysis to allow instrumentation code to make use of architectural
registers."  Probes need a scratch register (the ``EAX`` analog,
``PROBE_REG`` = r11); when it is live at a probe site the rewriter must
spill it to the TLS scratch slot, which is precisely the register
spill/restore the paper blames for 30% of gzip's slowdown (§6).

This is a standard backward may-analysis at block granularity, refined
to instruction granularity on demand via :func:`live_at`.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG, BasicBlock
from repro.isa.instructions import Fmt, Instr, Op

#: Registers an opcode family implicitly uses/defines.
_ALL_SCRATCH = frozenset(range(12))  # caller-saved convention: r0..r11
_ARG_REGS = frozenset(range(6))
_SP = frozenset({12})


def instr_uses(instr: Instr) -> frozenset[int]:
    """Registers ``instr`` reads."""
    op = instr.op
    fmt = instr.fmt
    if op in (Op.CALL, Op.CALLR, Op.CALLX):
        base = _ARG_REGS | _SP
        return base | ({instr.rd} if op is Op.CALLR else frozenset())
    if op is Op.SYS:
        return _ARG_REGS
    if op is Op.RET:
        return frozenset({0}) | _SP
    if op is Op.PUSH:
        return frozenset({instr.rd}) | _SP
    if op is Op.POP:
        return _SP
    if op in (Op.STW,):
        return frozenset({instr.rd, instr.rs})
    if op in (Op.THROW, Op.JMP, Op.ORM, Op.STDAG, Op.BSENT):
        return frozenset({instr.rd})
    if op is Op.JTAB:
        return frozenset({instr.rd, instr.rs})
    if op is Op.TLSST:
        return frozenset({instr.rd})
    if fmt is Fmt.R3:
        return frozenset({instr.rs, instr.rt})
    if fmt in (Fmt.RRI, Fmt.R2):
        return frozenset({instr.rs})
    if fmt is Fmt.RRB:
        return frozenset({instr.rd, instr.rs})
    if fmt is Fmt.RB:
        return frozenset({instr.rd})
    return frozenset()


def instr_defs(instr: Instr) -> frozenset[int]:
    """Registers ``instr`` writes."""
    op = instr.op
    if op in (Op.CALL, Op.CALLR, Op.CALLX):
        # All caller-saved registers are clobbered across a call.
        return _ALL_SCRATCH
    if op is Op.SYS:
        return frozenset({0})
    if op in (Op.STW, Op.THROW, Op.JMP, Op.JTAB, Op.ORM, Op.STDAG,
              Op.BSENT, Op.TLSST, Op.RET, Op.HALT, Op.NOP, Op.BR):
        return frozenset()
    if op is Op.PUSH:
        return _SP
    if op is Op.POP:
        return frozenset({instr.rd}) | _SP
    if instr.fmt in (Fmt.RB, Fmt.RRB, Fmt.I16, Fmt.NONE):
        return frozenset()
    return frozenset({instr.rd})


class Liveness:
    """Block-level live-in / live-out sets for one CFG."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.live_in: dict[int, frozenset[int]] = {}
        self.live_out: dict[int, frozenset[int]] = {}
        self._use: dict[int, frozenset[int]] = {}
        self._def: dict[int, frozenset[int]] = {}
        self._compute()

    def _block_use_def(self, block: BasicBlock) -> tuple[frozenset[int], frozenset[int]]:
        use: set[int] = set()
        defs: set[int] = set()
        for instr in block.instrs:
            use |= instr_uses(instr) - defs
            defs |= instr_defs(instr)
        return frozenset(use), frozenset(defs)

    def _compute(self) -> None:
        blocks = self.cfg.blocks
        for start, block in blocks.items():
            self._use[start], self._def[start] = self._block_use_def(block)
            self.live_in[start] = frozenset()
            self.live_out[start] = frozenset()

        # Conservative boundary: values live out of exit blocks are the
        # return value and sp (RET already uses them; handlers re-enter
        # with r0 redefined, so nothing extra is needed).
        changed = True
        order = list(reversed(self.cfg.reverse_postorder()))
        while changed:
            changed = False
            for start in order:
                block = blocks[start]
                out: set[int] = set()
                for succ in block.succs:
                    out |= self.live_in[succ]
                new_out = frozenset(out)
                new_in = self._use[start] | (new_out - self._def[start])
                if new_out != self.live_out[start] or new_in != self.live_in[start]:
                    self.live_out[start] = new_out
                    self.live_in[start] = frozenset(new_in)
                    changed = True

    # ------------------------------------------------------------------
    def live_at(self, block_start: int, index: int) -> frozenset[int]:
        """Registers live immediately *before* instruction ``index``
        (0-based) of the given block."""
        block = self.cfg.blocks[block_start]
        live = set(self.live_out[block_start])
        for instr in reversed(block.instrs[index:]):
            live -= instr_defs(instr)
            live |= instr_uses(instr)
        return frozenset(live)

    def reg_free_at_block_start(self, block_start: int, reg: int) -> bool:
        """Whether ``reg`` is dead on entry to the block — i.e. a probe
        inserted at the top may clobber it without a spill."""
        return reg not in self.live_in[block_start]
