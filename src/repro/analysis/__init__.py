"""Binary analysis: CFG recovery, dominators/loops, register liveness."""

from repro.analysis.cfg import CFG, BasicBlock, build_all_cfgs, build_cfg, indirect_targets
from repro.analysis.dominators import (
    back_edges,
    compute_dominators,
    loop_headers,
    natural_loop,
    retreating_edges,
)
from repro.analysis.liveness import Liveness, instr_defs, instr_uses

__all__ = [
    "BasicBlock",
    "CFG",
    "Liveness",
    "back_edges",
    "build_all_cfgs",
    "build_cfg",
    "compute_dominators",
    "indirect_targets",
    "instr_defs",
    "instr_uses",
    "loop_headers",
    "natural_loop",
    "retreating_edges",
]
