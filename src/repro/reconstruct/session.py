"""Top-level reconstruction API: snaps + mapfiles -> traces.

This is the entry point a user of the library calls.  Reconstruction
requires (1) a trace/snap file, (2) the mapfiles of the instrumented
modules — matched by checksum — exactly the paper's input list (§4),
with debug information embedded in the mapfiles.

Both strict and salvage disciplines are offered.  Strict (the default)
raises on the first integrity violation; salvage mode reconstructs
whatever the damage left behind — wrapped buffers, torn archives,
``kill -9``'d processes, whole machines missing — and attaches a
:class:`~repro.reconstruct.model.DegradationSummary` naming each loss,
which is the paper's actual field regime (§2.1, §4.1).
"""

from __future__ import annotations

from repro.instrument.mapfile import Mapfile
from repro.reconstruct.callstack import assign_depths
from repro.reconstruct.expand import ModuleIndex, expand_span
from repro.reconstruct.model import (
    DegradationSummary,
    DistributedTrace,
    ProcessTrace,
)
from repro.reconstruct.recovery import (
    REASON_EXPAND_FAILED,
    SalvageReport,
    recover_spans,
    recover_spans_salvage,
)
from repro.reconstruct.stitch import (
    estimate_skews,
    stitch_logical_threads,
    sync_machine_pairs,
)
from repro.runtime.snap import SnapFile


class Reconstructor:
    """Reconstructs traces from snaps, given the mapfiles."""

    def __init__(self, mapfiles: list[Mapfile]):
        self.mapfiles = list(mapfiles)

    def add_mapfile(self, mapfile: Mapfile) -> None:
        """Register another module's mapfile."""
        self.mapfiles.append(mapfile)

    # ------------------------------------------------------------------
    def reconstruct(self, snap: SnapFile, strict: bool = True) -> ProcessTrace:
        """One snap -> per-thread line traces with call depths.

        ``strict=False`` selects salvage mode: damaged buffers yield
        whatever records survive, with per-buffer
        :class:`~repro.reconstruct.recovery.SalvageReport`s on the
        result's ``salvage`` list instead of a
        :class:`~repro.reconstruct.recovery.RecoveryError`.
        """
        index = ModuleIndex.build(snap, self.mapfiles)
        if strict:
            spans, notes = recover_spans(snap.buffers)
            reports: list[SalvageReport] = []
        else:
            recovered = recover_spans_salvage(snap.buffers)
            spans, notes, reports = (
                recovered.spans,
                recovered.notes,
                recovered.reports,
            )
        result = ProcessTrace(
            process_name=snap.process_name,
            machine_name=snap.machine_name,
            reason=snap.reason,
            detail=snap.detail,
            clock=snap.clock,
            notes=notes,
            salvage=reports,
        )
        for span in spans:
            if strict:
                trace = expand_span(span, index, snap)
            else:
                # Defense in depth: salvaged records can be internally
                # inconsistent in ways expansion never sees from a live
                # runtime; a span that explodes becomes a named loss,
                # not a crash.
                try:
                    trace = expand_span(span, index, snap)
                except Exception as exc:  # noqa: BLE001 — salvage barrier
                    report = SalvageReport(buffer_index=span.buffer_index)
                    report.note(
                        REASON_EXPAND_FAILED,
                        f"buffer {span.buffer_index}: thread "
                        f"{span.tid} span failed to expand "
                        f"({type(exc).__name__}: {exc})",
                    )
                    result.salvage.append(report)
                    result.notes.append(report.problems[-1])
                    continue
            assign_depths(trace)
            result.threads.append(trace)
        return result

    # ------------------------------------------------------------------
    def reconstruct_distributed(
        self,
        snaps: list[SnapFile | None],
        strict: bool = True,
        expected_machines: list[str] | None = None,
        salvage_notes: dict[str, list[str]] | None = None,
    ) -> DistributedTrace:
        """Several snaps (processes/machines) -> one master trace (§5).

        Fuses RPC caller/callee segments into logical threads and
        estimates inter-runtime clock skew from the SYNC quadruples.

        Salvage mode (``strict=False``) additionally tolerates absent
        machines: ``None`` entries in ``snaps`` are skipped, machines
        named in ``expected_machines`` but contributing no snap are
        reported missing, and the returned trace carries a
        :class:`~repro.reconstruct.model.DegradationSummary` describing
        every loss (``salvage_notes`` maps a machine name to extra loss
        lines, e.g. from archive salvage).
        """
        if strict:
            present = [snap for snap in snaps if snap is not None]
            if len(present) != len(snaps):
                raise ValueError(
                    f"{len(snaps) - len(present)} snap(s) missing; "
                    "use salvage mode (strict=False) to reconstruct "
                    "around the loss"
                )
            processes = [self.reconstruct(snap) for snap in present]
            all_threads = [t for p in processes for t in p.threads]
            return DistributedTrace(
                processes=processes,
                logical_threads=stitch_logical_threads(all_threads),
                skew_estimates=estimate_skews(all_threads),
            )

        degradation = DegradationSummary()
        processes = []
        for snap in snaps:
            if snap is None:
                continue
            process = self.reconstruct(snap, strict=False)
            processes.append(process)
            for report in process.salvage:
                if report.damaged:
                    degradation.losses.append(
                        f"machine {process.machine_name}: {report.summary()}"
                    )
        seen_machines = {p.machine_name for p in processes}
        for machine in expected_machines or []:
            if machine not in seen_machines:
                degradation.missing_machines.append(machine)
        for machine, lines in (salvage_notes or {}).items():
            degradation.losses.extend(
                f"machine {machine}: {line}" for line in lines
            )

        all_threads = [t for p in processes for t in p.threads]
        stitch_notes: list[str] = []
        logical = stitch_logical_threads(
            all_threads, salvage=True, notes=stitch_notes
        )
        degradation.losses.extend(stitch_notes)

        # Which machine pairs lack any surviving SYNC anchor?  Their
        # relative order in a merged view is approximate at best.
        covered = sync_machine_pairs(all_threads)
        machines = sorted(
            seen_machines | set(degradation.missing_machines)
        )
        for i, a in enumerate(machines):
            for b in machines[i + 1 :]:
                if (a, b) not in covered:
                    degradation.approximate_pairs.append((a, b))

        return DistributedTrace(
            processes=processes,
            logical_threads=logical,
            skew_estimates=estimate_skews(all_threads),
            degradation=degradation,
        )
