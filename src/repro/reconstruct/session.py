"""Top-level reconstruction API: snaps + mapfiles -> traces.

This is the entry point a user of the library calls.  Reconstruction
requires (1) a trace/snap file, (2) the mapfiles of the instrumented
modules — matched by checksum — exactly the paper's input list (§4),
with debug information embedded in the mapfiles.
"""

from __future__ import annotations

from repro.instrument.mapfile import Mapfile
from repro.reconstruct.callstack import assign_depths
from repro.reconstruct.expand import ModuleIndex, expand_span
from repro.reconstruct.model import DistributedTrace, ProcessTrace
from repro.reconstruct.recovery import recover_spans
from repro.reconstruct.stitch import estimate_skews, stitch_logical_threads
from repro.runtime.snap import SnapFile


class Reconstructor:
    """Reconstructs traces from snaps, given the mapfiles."""

    def __init__(self, mapfiles: list[Mapfile]):
        self.mapfiles = list(mapfiles)

    def add_mapfile(self, mapfile: Mapfile) -> None:
        """Register another module's mapfile."""
        self.mapfiles.append(mapfile)

    # ------------------------------------------------------------------
    def reconstruct(self, snap: SnapFile) -> ProcessTrace:
        """One snap -> per-thread line traces with call depths."""
        index = ModuleIndex.build(snap, self.mapfiles)
        spans, notes = recover_spans(snap.buffers)
        result = ProcessTrace(
            process_name=snap.process_name,
            machine_name=snap.machine_name,
            reason=snap.reason,
            detail=snap.detail,
            clock=snap.clock,
            notes=notes,
        )
        for span in spans:
            trace = expand_span(span, index, snap)
            assign_depths(trace)
            result.threads.append(trace)
        return result

    # ------------------------------------------------------------------
    def reconstruct_distributed(self, snaps: list[SnapFile]) -> DistributedTrace:
        """Several snaps (processes/machines) -> one master trace (§5).

        Fuses RPC caller/callee segments into logical threads and
        estimates inter-runtime clock skew from the SYNC quadruples.
        """
        processes = [self.reconstruct(snap) for snap in snaps]
        all_threads = [t for p in processes for t in p.threads]
        return DistributedTrace(
            processes=processes,
            logical_threads=stitch_logical_threads(all_threads),
            skew_estimates=estimate_skews(all_threads),
        )
