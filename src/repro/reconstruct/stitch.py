"""Distributed stitching: SYNC records -> logical threads (§5).

"Distributed tracing stitches together trace data from separate runtimes
into a single master trace."  The four SYNC records an RPC leaves
(CALL_OUT in the caller, ENTER and EXIT in the callee, RETURN in the
caller — same logical thread id, successive sequence numbers) identify
which physical-thread trace segments fuse into one logical thread, and
in what order.

Timestamp correlation (§5.2): with real-time clocks, the pair of
intervals (ENTER − CALL_OUT) and (EXIT − RETURN) bracket the true clock
offset between the two runtimes (the NTP-style estimate
``((T2 − T1) + (T3 − T4)) / 2``); SYNC sequencing makes reconstruction
correct even when skew is large.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reconstruct.model import (
    LogicalSegment,
    LogicalThreadTrace,
    ThreadTrace,
    TraceEvent,
)
from repro.runtime.records import SyncKind


@dataclass
class SyncPoint:
    """One SYNC event located in a thread trace."""

    trace: ThreadTrace
    step_index: int
    sync_kind: int
    runtime_id: int
    logical_id: int
    seq: int
    clock: int | None


def collect_sync_points(traces: list[ThreadTrace]) -> list[SyncPoint]:
    """All SYNC events across ``traces``, sorted by (logical id, seq)."""
    points: list[SyncPoint] = []
    for trace in traces:
        for idx, step in enumerate(trace.steps):
            if isinstance(step, TraceEvent) and step.kind == "sync":
                d = step.detail
                points.append(
                    SyncPoint(
                        trace=trace,
                        step_index=idx,
                        sync_kind=d["sync_kind"],
                        runtime_id=d["runtime_id"],
                        logical_id=d["logical_id"],
                        seq=d["seq"],
                        clock=step.clock,
                    )
                )
    points.sort(key=lambda p: (p.logical_id, p.seq))
    return points


def dedupe_sync_points(
    points: list[SyncPoint], notes: list[str] | None = None
) -> list[SyncPoint]:
    """Drop duplicated SYNC records (damaged buffers can replay them).

    Two points are duplicates when they agree on (logical id, seq, sync
    kind, runtime id); the first occurrence wins.  On undamaged traces
    this is the identity.
    """
    seen: set[tuple[int, int, int, int]] = set()
    kept: list[SyncPoint] = []
    dropped = 0
    for point in points:
        key = (point.logical_id, point.seq, point.sync_kind, point.runtime_id)
        if key in seen:
            dropped += 1
            continue
        seen.add(key)
        kept.append(point)
    if dropped and notes is not None:
        notes.append(f"{dropped} duplicated SYNC record(s) ignored")
    return kept


def annotate_sync_gaps(
    chain: list[SyncPoint], notes: list[str]
) -> None:
    """Describe missing legs in one logical thread's SYNC chain.

    A healthy RPC leaves four successive sequence numbers; a hole means
    a leg's record was lost (dropped SYNC, overwritten buffer, dead
    machine) and the fused order around it is approximate.
    """
    if not chain:
        return
    seqs = [p.seq for p in chain]
    logical = chain[0].logical_id
    for prev, cur in zip(seqs, seqs[1:]):
        if cur > prev + 1:
            notes.append(
                f"logical thread {logical:#x}: SYNC leg(s) missing "
                f"(sequence jumps {prev} -> {cur}); causal order "
                "approximate across the gap"
            )
    kinds = [p.sync_kind for p in chain]
    if kinds and kinds[0] not in (SyncKind.CALL_OUT, SyncKind.ENTER):
        notes.append(
            f"logical thread {logical:#x}: chain starts mid-RPC "
            f"(first surviving leg is kind {kinds[0]})"
        )


def sync_machine_pairs(traces: list[ThreadTrace]) -> set[tuple[str, str]]:
    """Machine-name pairs whose causal order SYNC evidence anchors.

    A pair is covered when at least one logical thread has surviving
    SYNC points on both machines — even an incomplete CALL_OUT/ENTER
    half-pair orders the two sides.
    """
    by_logical: dict[int, set[str]] = {}
    for point in collect_sync_points(traces):
        by_logical.setdefault(point.logical_id, set()).add(
            point.trace.machine_name
        )
    pairs: set[tuple[str, str]] = set()
    for machines in by_logical.values():
        ordered = sorted(machines)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                pairs.add((a, b))
    return pairs


def stitch_logical_threads(
    traces: list[ThreadTrace],
    salvage: bool = False,
    notes: list[str] | None = None,
) -> list[LogicalThreadTrace]:
    """Fuse physical-thread segments into logical threads.

    Walk each logical thread's SYNC points in sequence order; at each
    CALL_OUT the caller's segment (up to and including the SYNC) is
    appended, then the callee's ENTER..EXIT span, then the caller
    resumes at its RETURN.  Nested RPC chains compose because the callee
    passing the logical id along produces further CALL_OUTs with higher
    sequence numbers on the same logical id ("establishing a causality
    chain of physical thread trace segments").
    """
    points = collect_sync_points(traces)
    if salvage:
        points = dedupe_sync_points(points, notes)
    by_logical: dict[int, list[SyncPoint]] = {}
    for point in points:
        by_logical.setdefault(point.logical_id, []).append(point)

    logical_traces: list[LogicalThreadTrace] = []
    for logical_id, chain in sorted(by_logical.items()):
        if salvage and notes is not None:
            annotate_sync_gaps(chain, notes)
        logical = LogicalThreadTrace(logical_id=logical_id)
        #: Where each physical trace's cursor stands (step index).
        cursors: dict[int, int] = {}

        def cursor_of(trace: ThreadTrace) -> int:
            return cursors.get(id(trace), 0)

        def append_segment(trace: ThreadTrace, end: int, leg: str) -> None:
            start = cursor_of(trace)
            if end > start:
                logical.segments.append(
                    LogicalSegment(trace=trace, start=start, end=end, leg=leg)
                )
            cursors[id(trace)] = end

        previous: SyncPoint | None = None
        for point in chain:
            if (
                previous is not None
                and previous.sync_kind == SyncKind.ENTER
                and point.trace is not previous.trace
            ):
                # The callee's EXIT never made it into its trace — the
                # snap was cut at a server-side fault (the Figure 6
                # case) or the buffer wrapped.  Flush the callee's
                # remaining steps as its segment so the crash site sits
                # causally inside the caller's call.
                append_segment(
                    previous.trace, len(previous.trace.steps), "callee"
                )
            leg = {
                SyncKind.CALL_OUT: "caller",
                SyncKind.ENTER: "callee",
                SyncKind.EXIT: "callee",
                SyncKind.RETURN: "caller",
            }.get(point.sync_kind, "caller")
            if point.sync_kind == SyncKind.ENTER:
                # Skip the callee's pre-RPC prefix (thread start etc.):
                # it belongs to the physical thread, not the logical one.
                cursors.setdefault(id(point.trace), point.step_index)
            append_segment(point.trace, point.step_index + 1, leg)
            previous = point

        # Trailing activity after the chain's final sync.
        if chain:
            final = chain[-1]
            if final.sync_kind == SyncKind.RETURN:
                append_segment(final.trace, len(final.trace.steps), "caller")
            elif final.sync_kind == SyncKind.ENTER:
                append_segment(final.trace, len(final.trace.steps), "callee")
        logical_traces.append(logical)
    return logical_traces


def estimate_skews(traces: list[ThreadTrace]) -> dict[tuple[int, int], int]:
    """Clock-offset estimates between runtime pairs (§5.2).

    For each RPC: offset(callee − caller) ≈ ((ENTER − CALL_OUT) +
    (EXIT − RETURN)) / 2.  Multiple RPCs between the same pair are
    averaged.
    """
    points = collect_sync_points(traces)
    by_logical: dict[int, list[SyncPoint]] = {}
    for point in points:
        by_logical.setdefault(point.logical_id, []).append(point)

    samples: dict[tuple[int, int], list[int]] = {}
    for chain in by_logical.values():
        by_seq = {p.seq: p for p in chain}
        for seq, call_out in list(by_seq.items()):
            if call_out.sync_kind != SyncKind.CALL_OUT:
                continue
            enter = by_seq.get(seq + 1)
            exit_ = by_seq.get(seq + 2)
            ret = by_seq.get(seq + 3)
            if not (
                enter is not None
                and exit_ is not None
                and ret is not None
                and enter.sync_kind == SyncKind.ENTER
                and exit_.sync_kind == SyncKind.EXIT
                and ret.sync_kind == SyncKind.RETURN
            ):
                continue
            if None in (call_out.clock, enter.clock, exit_.clock, ret.clock):
                continue
            offset = ((enter.clock - call_out.clock) + (exit_.clock - ret.clock)) // 2
            pair = (call_out.runtime_id, enter.runtime_id)
            samples.setdefault(pair, []).append(offset)
    return {
        pair: sum(values) // len(values) for pair, values in samples.items()
    }
