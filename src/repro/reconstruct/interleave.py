"""Cross-thread ordering (§3.5, §4.3.2).

"Trace reconstruction produces a plausible interleaving of trace records
from different threads (recall that timestamp instrumentation provides
partial ordering relationships)."

Every step carries the clock of the last timestamp record at or before
it (its *anchor*).  Two steps from different threads are ordered when
their anchor windows don't overlap; otherwise there is "no apparent
constraint" and they are reported concurrent.  The merged view sorts by
(anchor, within-thread sequence) — a plausible, not unique, total order.
"""

from __future__ import annotations

from repro.reconstruct.model import Step, ThreadTrace

BEFORE = "before"
AFTER = "after"
CONCURRENT = "concurrent"


def _window(trace: ThreadTrace, step: Step) -> tuple[int | None, int | None]:
    """The (start, end) anchor-clock window containing ``step``.

    ``start`` is the step's anchor; ``end`` is the thread's next anchor
    after the step (None = unbounded).
    """
    start = step.anchor_clock
    end: int | None = None
    for other in trace.steps:
        if other.seq > step.seq and other.anchor_clock is not None:
            if other.anchor_clock != start:
                end = other.anchor_clock
                break
    return start, end


def ordering(
    trace_a: ThreadTrace, step_a: Step, trace_b: ThreadTrace, step_b: Step
) -> str:
    """Relative order of two steps from different threads.

    Returns BEFORE / AFTER (clear constraint) or CONCURRENT ("no
    apparent constraint on the order of A and B").
    """
    a_start, a_end = _window(trace_a, step_a)
    b_start, b_end = _window(trace_b, step_b)
    if a_start is None or b_start is None:
        return CONCURRENT
    if a_end is not None and a_end <= b_start:
        return BEFORE
    if b_end is not None and b_end <= a_start:
        return AFTER
    if a_start == b_start:
        return CONCURRENT
    # Windows overlap but started apart: the starts give a weak hint,
    # which is not a guarantee — report concurrency.
    return CONCURRENT


def merge(traces: list[ThreadTrace]) -> list[tuple[ThreadTrace, Step]]:
    """A plausible global interleaving of several thread traces.

    Steps are ordered by (anchor clock, thread id, per-thread sequence);
    anchorless prefixes sort before everything from their thread, which
    preserves per-thread order — the only hard constraint.
    """
    keyed: list[tuple[tuple, ThreadTrace, Step]] = []
    for trace in traces:
        tid = trace.tid if trace.tid is not None else -1
        for step in trace.steps:
            anchor = step.anchor_clock if step.anchor_clock is not None else -1
            keyed.append(((anchor, tid, step.seq), trace, step))
    keyed.sort(key=lambda item: item[0])
    return [(trace, step) for _, trace, step in keyed]


def merge_grouped(
    traces: list[ThreadTrace],
) -> list[tuple[str, list[tuple[ThreadTrace, Step]]]]:
    """The degradation ladder's bottom rung: per-machine merges only.

    When no SYNC evidence survives between two machines their anchor
    clocks are incomparable (skew is unbounded), so a single global
    interleaving would fabricate an order.  Group threads by machine and
    interleave within each group, where one clock domain makes anchors
    meaningful.  Returns ``(machine_name, merged steps)`` per machine,
    sorted by machine name.
    """
    by_machine: dict[str, list[ThreadTrace]] = {}
    for trace in traces:
        by_machine.setdefault(trace.machine_name, []).append(trace)
    return [
        (machine, merge(by_machine[machine]))
        for machine in sorted(by_machine)
    ]


def concurrent_with(
    traces: list[ThreadTrace], focus: ThreadTrace, step: Step
) -> list[tuple[ThreadTrace, Step]]:
    """Steps of other threads potentially concurrent with ``step`` —
    what the multi-trace display highlights while stepping (§4.3.2)."""
    out: list[tuple[ThreadTrace, Step]] = []
    for trace in traces:
        if trace is focus:
            continue
        for other in trace.steps:
            if ordering(focus, step, trace, other) == CONCURRENT:
                out.append((trace, other))
    return out
