"""Call-hierarchy reconstruction (§4.3.1).

"Blocks that contain procedure entry or exit points, or a call or a
return point are annotated as such in the mapfile.  Reconstruction uses
these annotations to recreate the stack of activation records."

The pass assigns every step a nesting ``depth`` so views can render the
trace as a collapsible call tree and implement step-over / step-out
(forward and backward).  Truncated traces are handled tolerantly: a
function exit with an empty stack clamps at depth 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reconstruct.model import LineStep, Step, ThreadTrace


@dataclass
class Activation:
    """One reconstructed activation record."""

    func: str
    first_seq: int


def assign_depths(trace: ThreadTrace) -> list[Activation]:
    """Assign call depths to every step of ``trace`` in place.

    Returns the stack of activations still open at the end of the trace
    — "the stack of activation records" at the snap point, which the
    fault-directed view expands.
    """
    stack: list[Activation] = []
    pending_call = False

    for step in trace.steps:
        if isinstance(step, LineStep):
            if step.is_func_entry and pending_call:
                stack.append(Activation(step.func, step.seq))
            step.depth = len(stack)
            # Annotations sit on the lines where they are true (entry on
            # an entry block's first line, call/exit on a block's last),
            # so plain per-line state suffices.
            pending_call = step.call is not None
            if step.is_func_exit and stack:
                stack.pop()
                pending_call = False
        else:
            step.depth = len(stack)
    return stack


def call_tree(trace: ThreadTrace) -> list[tuple[int, Step]]:
    """(depth, step) pairs — the hierarchical display's flattened form."""
    assign_depths(trace)
    return [(step.depth, step) for step in trace.steps]


def step_over(trace: ThreadTrace, position: int) -> int | None:
    """Index of the next step at depth <= the current one ("step over").

    Returns None when the trace ends first.
    """
    steps = trace.steps
    if position >= len(steps):
        return None
    depth = steps[position].depth
    for idx in range(position + 1, len(steps)):
        if steps[idx].depth <= depth:
            return idx
    return None


def step_back_over(trace: ThreadTrace, position: int) -> int | None:
    """Backward twin of :func:`step_over` ("step back over")."""
    steps = trace.steps
    depth = steps[position].depth
    for idx in range(position - 1, -1, -1):
        if steps[idx].depth <= depth:
            return idx
    return None


def step_out(trace: ThreadTrace, position: int) -> int | None:
    """Index of the next step at a shallower depth ("step out")."""
    steps = trace.steps
    depth = steps[position].depth
    for idx in range(position + 1, len(steps)):
        if steps[idx].depth < depth:
            return idx
    return None


def step_back_out(trace: ThreadTrace, position: int) -> int | None:
    """Backward twin of :func:`step_out` ("step back out")."""
    steps = trace.steps
    depth = steps[position].depth
    for idx in range(position - 1, -1, -1):
        if steps[idx].depth < depth:
            return idx
    return None
