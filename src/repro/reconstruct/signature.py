"""Crash-signature mining: reconstructed evidence -> a stable bucket key.

At fleet scale a diagnosis per incident is useless until identical
faults collapse into ranked buckets — the "top crashers" view every
real crash pipeline converges on.  This module mines the signature
those buckets are keyed by, from exactly the evidence reconstruction
already produces:

* the **normalized fault reason** — the snap reason plus the exception
  code *name* (never the raw pc), ``signal:<n>`` for signal snaps,
  bare ``hang``/``post-mortem`` for the others; non-fault snaps
  (``api``, ``external``, ``group`` bystanders) have no signature;
* the **normalized top-of-stack frames** — the faulting line resolved
  through the mapfile (module, function, file, line) plus the open
  enclosing activations (module, function), recovered by a *backward*
  scan from the fault so the signature only depends on the tail of the
  trace.  Wrapped buffers, damage to older history, and damage to
  *other* threads or machines leave the signature unchanged — that is
  what makes it salvage-tolerant.

Everything machine-, run-, or placement-specific is stripped: machine
name, process name, pid, clocks (skew tolerance), ingest seqs, code
addresses, block ids, SYNC logical ids.  Two users hitting the same
bug on different machines with skewed clocks and differently-damaged
evidence produce the same string.

The rendered signature is itself the canonical form (human-readable in
manifests and reports); :attr:`CrashSignature.key` is its short hash
for compact display.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.reconstruct.model import LineStep, ProcessTrace, ThreadTrace
from repro.vm.errors import ExcCode

#: Snap reasons that describe a fault (and therefore carry a signature).
#: Everything else — ``api``, ``external``, ``group`` fan-out bystanders
#: — is evidence *about* an incident, not the crash itself.
FAULT_REASONS = frozenset(
    {"unhandled", "exception", "signal", "hang", "post-mortem"}
)

#: Cap on stack frames folded into a signature.  Small on purpose: the
#: innermost frames are the stable identity of a crash, while outer
#: frames are the first casualties of buffer wrap/truncation — a deep
#: cap would make signatures *less* stable, not more precise.
MAX_FRAMES = 5


@dataclass(frozen=True)
class CrashSignature:
    """A normalized, comparable identity of one fault."""

    #: Normalized fault class, e.g. ``unhandled:DIVIDE_BY_ZERO``.
    reason: str
    #: ``(module, func, file, line)`` innermost-first; outer frames use
    #: ``("", -1)`` for file/line (call sites are not part of the key —
    #: the open function chain is).
    frames: tuple[tuple[str, str, str, int], ...] = ()

    def render(self) -> str:
        """The canonical string form — what manifests store."""
        parts = []
        for module, func, file, line in self.frames:
            if file:
                parts.append(f"{module}.{func}({file}:{line})")
            else:
                parts.append(f"{module}.{func}")
        if not parts:
            return self.reason
        return f"{self.reason} @ " + " < ".join(parts)

    @property
    def key(self) -> str:
        """Short stable hash of the canonical form (display/report id)."""
        return signature_key(self.render())


def signature_key(sig: str) -> str:
    """Short stable hash of a rendered signature string."""
    return hashlib.sha256(sig.encode()).hexdigest()[:12]


def normalize_reason(reason: str, detail: dict) -> str | None:
    """The fault-class half of the signature, or None for non-faults.

    Address-like detail fields (``pc``) are deliberately ignored; codes
    are rendered by *name* so the class reads in reports and never
    absorbs layout-specific numbering.
    """
    if reason not in FAULT_REASONS:
        return None
    detail = detail if isinstance(detail, dict) else {}
    if reason in ("unhandled", "exception"):
        code = detail.get("code")
        if isinstance(code, int):
            return f"{reason}:{ExcCode.name(code)}"
        return reason
    if reason == "signal":
        signum = detail.get("signum")
        return f"signal:{signum}" if signum is not None else "signal"
    if reason == "post-mortem":
        signum = detail.get("signal")
        return (
            f"post-mortem:signal-{signum}"
            if signum is not None
            else "post-mortem"
        )
    return reason  # hang


def _fault_position(thread: ThreadTrace) -> tuple[int, dict | None]:
    """Index just past the faulting step, plus the exception detail.

    The *last* exception event wins (earlier ones were handled — control
    resumed); a thread with no exception event faults "where it is",
    i.e. at its final step (hangs, post-mortem kills).
    """
    for idx in range(len(thread.steps) - 1, -1, -1):
        step = thread.steps[idx]
        if isinstance(step, LineStep):
            continue
        if step.kind == "exception":
            return idx, step.detail
    return len(thread.steps), None


def _open_activations(
    thread: ThreadTrace, stop: int, limit: int
) -> list[tuple[str, str]]:
    """(module, func) of activations still open at step ``stop``.

    A backward scan: walking toward the front of the trace, a
    ``func_exit`` line marks a *completed* subcall whose matching entry
    must be skipped; a ``func_entry`` line with no pending exit is an
    activation still open at the fault.  Only the tail up to the
    outermost surviving frame is ever read, so truncation of older
    history costs at most outer frames beyond :data:`MAX_FRAMES` —
    never a different signature for the frames that survive.
    """
    frames: list[tuple[str, str]] = []
    balance = 0
    for idx in range(stop - 1, -1, -1):
        step = thread.steps[idx]
        if not isinstance(step, LineStep):
            continue
        if step.is_func_exit:
            balance += 1
        if step.is_func_entry:
            if balance > 0:
                # A single-block leaf function sets both flags on one
                # step; the exit seen first pairs with this entry.
                balance -= 1
            else:
                frames.append((step.module, step.func))
                if len(frames) >= limit:
                    break
    return frames


def _faulting_thread(trace: ProcessTrace) -> ThreadTrace | None:
    """The thread the signature is mined from.

    The last thread carrying an exception event wins (the fault record
    is written before the snap, so it is present in the faulting
    thread's span); otherwise the last thread with any line evidence —
    hangs and post-mortem kills fault wherever they stopped.
    """
    with_exception = [
        t
        for t in trace.threads
        if any(e.kind == "exception" for e in t.events())
    ]
    if with_exception:
        return with_exception[-1]
    with_lines = [t for t in trace.threads if t.line_steps()]
    return with_lines[-1] if with_lines else None


def signature_of_trace(trace: ProcessTrace) -> CrashSignature | None:
    """Mine the signature from one reconstructed process trace.

    Returns None for non-fault snaps and for fault snaps whose evidence
    is too damaged to yield even one frame *and* whose reason alone
    would be ambiguous — an unbucketed incident is a recall loss, a
    wrongly-merged one is a precision loss, and triage optimizes for
    precision.
    """
    reason = normalize_reason(trace.reason, trace.detail)
    if reason is None:
        return None
    thread = _faulting_thread(trace)
    if thread is None:
        return None

    fault_idx, exc_detail = _fault_position(thread)

    # Innermost frame: the exception record resolved through the
    # mapfile when it survived; the last executed line otherwise.
    innermost: tuple[str, str, str, int] | None = None
    if exc_detail is not None and "file" in exc_detail:
        innermost = (
            str(exc_detail.get("module") or ""),
            str(exc_detail.get("func") or ""),
            str(exc_detail["file"]),
            int(exc_detail["line"]),
        )
    else:
        last_line = None
        for idx in range(min(fault_idx, len(thread.steps)) - 1, -1, -1):
            step = thread.steps[idx]
            if isinstance(step, LineStep):
                last_line = step
                break
        if last_line is not None:
            innermost = (
                last_line.module,
                last_line.func,
                last_line.file,
                last_line.line,
            )
    if innermost is None:
        return None  # no frame evidence at all: leave unbucketed

    outer = _open_activations(thread, fault_idx, MAX_FRAMES)
    # The innermost open activation *is* the faulting function; its
    # (module, func) already leads the frame list.
    if outer and outer[0] == innermost[:2]:
        outer = outer[1:]
    frames = [innermost]
    frames.extend(
        (module, func, "", -1)
        for module, func in outer[: MAX_FRAMES - 1]
    )
    return CrashSignature(reason=reason, frames=tuple(frames))


def snap_signature(snap, mapfiles) -> str | None:
    """Rendered signature of one snap, or None — never raises.

    Mined with salvage reconstruction (like SYNC-id mining: best-effort
    metadata), so a damaged snap yields whatever signature its
    surviving tail supports.
    """
    if snap.reason not in FAULT_REASONS:
        return None
    from repro.reconstruct.session import Reconstructor

    try:
        trace = Reconstructor(mapfiles).reconstruct(snap, strict=False)
        signature = signature_of_trace(trace)
    except Exception:  # noqa: BLE001 — mining is best-effort metadata
        return None
    return signature.render() if signature is not None else None
