"""Control-flow identity between reconstructed traces.

The differential replay harness needs an oracle for "the replayed run
*is* the recorded run": after re-executing a snap's nondeterminism log,
the trace reconstructed from the replayed snap must describe the same
execution as the trace reconstructed from the original.  "Same
execution" here means the same *control flow* — per thread, the same
ordered sequence of executed source lines and exception events — not
the same bytes: depths, interleaving anchors, and sequence numbers are
presentation artifacts of the reconstruction pipeline, and SYNC/
timestamp payloads carry clocks the comparison must not depend on.

:func:`control_flow_events` canonicalizes one
:class:`~repro.reconstruct.model.ProcessTrace` into per-thread event
tuples; :func:`control_flow_signature` hashes that form for cheap
equality; :func:`diff_control_flow` names the first divergence per
thread, which is what a failing differential test wants to print.
"""

from __future__ import annotations

import hashlib
import json

from repro.reconstruct.model import LineStep, ProcessTrace, TraceEvent

#: Event kinds that are control flow (everything else — sync,
#: timestamp, snapmark, note — is metadata about the recording).
_FLOW_KINDS = frozenset(
    {"exception", "exception_end", "thread_start", "thread_end", "untraced"}
)


def control_flow_events(trace: ProcessTrace) -> dict[int | None, list[tuple]]:
    """Per-thread canonical control-flow event lists.

    Keyed by tid; each value is the ordered list of

    * ``("line", module, func, file, line, block_id)`` for every
      executed source line, and
    * ``(kind, code)`` for exception events (``code`` from the detail;
      pcs and clocks are dropped) plus the structural
      ``thread_start``/``thread_end``/``untraced`` markers.

    A thread with multiple recovered spans contributes them in trace
    order, concatenated — span boundaries are a recovery artifact.
    """
    flows: dict[int | None, list[tuple]] = {}
    for thread in trace.threads:
        flow = flows.setdefault(thread.tid, [])
        for step in thread.steps:
            if isinstance(step, LineStep):
                flow.append(
                    (
                        "line",
                        step.module,
                        step.func,
                        step.file,
                        step.line,
                        step.block_id,
                    )
                )
            elif isinstance(step, TraceEvent) and step.kind in _FLOW_KINDS:
                code = step.detail.get("code") if step.detail else None
                flow.append((step.kind, code))
    return flows


def control_flow_signature(trace: ProcessTrace) -> str:
    """Stable hash of :func:`control_flow_events` — cheap identity."""
    flows = control_flow_events(trace)
    canonical = json.dumps(
        sorted((repr(tid), flow) for tid, flow in flows.items()),
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def diff_control_flow(
    recorded: ProcessTrace, replayed: ProcessTrace, limit: int = 10
) -> list[str]:
    """Human-readable divergences between two traces' control flow.

    Empty list = event-identical.  Otherwise, up to ``limit`` lines:
    threads present on only one side, per-thread length mismatches, and
    the first differing event of each diverging thread.
    """
    a, b = control_flow_events(recorded), control_flow_events(replayed)
    problems: list[str] = []
    for tid in sorted(set(a) | set(b), key=repr):
        if len(problems) >= limit:
            problems.append("... further divergences clipped ...")
            break
        if tid not in a:
            problems.append(f"thread {tid}: only in the replayed trace")
            continue
        if tid not in b:
            problems.append(f"thread {tid}: only in the recorded trace")
            continue
        flow_a, flow_b = a[tid], b[tid]
        for idx, (ev_a, ev_b) in enumerate(zip(flow_a, flow_b)):
            if ev_a != ev_b:
                problems.append(
                    f"thread {tid}: event {idx} differs — recorded "
                    f"{ev_a!r}, replayed {ev_b!r}"
                )
                break
        else:
            if len(flow_a) != len(flow_b):
                problems.append(
                    f"thread {tid}: {len(flow_a)} recorded event(s) vs "
                    f"{len(flow_b)} replayed"
                )
    return problems
