"""Data model of reconstructed traces.

Reconstruction turns raw buffer words into a line-by-line execution
history (§4).  The model mirrors what the TraceBack GUI displays: line
steps with module/file/line columns and call-nesting depth, interleaved
with event annotations (exceptions, syncs, timestamps, thread
lifecycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LineStep:
    """One executed source line."""

    module: str
    func: str
    file: str
    line: int
    #: Instrumented-module code offset of the block this line came from.
    block_id: int
    #: Call-nesting depth (0 = outermost), filled by the call-stack pass.
    depth: int = 0
    #: Block annotations surfaced for the GUI (§4.3.1).
    is_func_entry: bool = False
    is_func_exit: bool = False
    call: str | None = None
    #: Clock of the last timestamp record at or before this step (used
    #: by cross-thread interleaving; None until an anchor was seen).
    anchor_clock: int | None = None
    #: Position within the thread's trace (monotone).
    seq: int = 0


@dataclass
class TraceEvent:
    """A non-line event in a thread's history."""

    kind: str  # exception | exception_end | sync | timestamp | snapmark
    #          | thread_start | thread_end | untraced | note
    detail: dict = field(default_factory=dict)
    clock: int | None = None
    depth: int = 0
    anchor_clock: int | None = None
    seq: int = 0


Step = LineStep | TraceEvent


@dataclass
class ThreadTrace:
    """The reconstructed history of one physical thread."""

    tid: int | None
    buffer_index: int
    process_name: str
    machine_name: str
    steps: list[Step] = field(default_factory=list)
    #: True when the span's THREAD_START was overwritten by buffer wrap
    #: (history is truncated at the front — by design).
    truncated: bool = False

    def line_steps(self) -> list[LineStep]:
        """Only the executed-line steps."""
        return [s for s in self.steps if isinstance(s, LineStep)]

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Only events, optionally filtered by kind."""
        return [
            s
            for s in self.steps
            if isinstance(s, TraceEvent) and (kind is None or s.kind == kind)
        ]

    def last_line(self) -> LineStep | None:
        """The most recent executed line (where the thread 'is')."""
        lines = self.line_steps()
        return lines[-1] if lines else None

    def sync_events(self) -> list[TraceEvent]:
        """SYNC events in order (distributed stitching input)."""
        return self.events("sync")


@dataclass
class ProcessTrace:
    """All thread traces recovered from one snap."""

    process_name: str
    machine_name: str
    reason: str
    detail: dict
    clock: int
    threads: list[ThreadTrace] = field(default_factory=list)
    #: Messages about unrecoverable data (bad DAGs, shared buffers...).
    notes: list[str] = field(default_factory=list)
    #: Per-buffer :class:`~repro.reconstruct.recovery.SalvageReport`s,
    #: populated only by salvage-mode reconstruction.
    salvage: list = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether salvage-mode recovery lost anything in this process."""
        return any(r.damaged for r in self.salvage)

    def thread(self, tid: int) -> ThreadTrace | None:
        """The trace of thread ``tid`` (the most recent span)."""
        found = [t for t in self.threads if t.tid == tid]
        return found[-1] if found else None


@dataclass
class LogicalSegment:
    """A contiguous run of one physical thread inside a logical thread."""

    trace: ThreadTrace
    start: int  # step index (inclusive)
    end: int  # step index (exclusive)
    leg: str  # "caller" or "callee"

    def steps(self) -> list[Step]:
        return self.trace.steps[self.start : self.end]


@dataclass
class LogicalThreadTrace:
    """A fused caller/callee history across runtimes (§5.1)."""

    logical_id: int
    segments: list[LogicalSegment] = field(default_factory=list)

    def steps(self) -> list[tuple[ThreadTrace, Step]]:
        """Flattened (owner, step) pairs in causal order."""
        out: list[tuple[ThreadTrace, Step]] = []
        for segment in self.segments:
            out.extend((segment.trace, step) for step in segment.steps())
        return out


@dataclass
class DegradationSummary:
    """What a salvaged reconstruction lost, and how far down the
    degradation ladder the answer sits.

    The ladder (DESIGN.md): **full** trace -> **gaps** (per-thread holes
    from damaged buffers) -> **approximate** (causal order between some
    machines unproven — no surviving SYNC pair) -> **partial** (whole
    machines missing from the evidence).
    """

    #: Human-readable loss statements, e.g. "machine B: buffer 2
    #: corrupt, 312/4096 words skipped".
    losses: list[str] = field(default_factory=list)
    #: Machine-name pairs whose relative causal order is approximate
    #: (no complete SYNC quadruple survives between them).
    approximate_pairs: list[tuple[str, str]] = field(default_factory=list)
    #: Machines that should have contributed a snap but did not.
    missing_machines: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(
            self.losses or self.approximate_pairs or self.missing_machines
        )

    @property
    def level(self) -> str:
        """The ladder rung: full | gaps | approximate | partial."""
        if self.missing_machines:
            return "partial"
        if self.approximate_pairs:
            return "approximate"
        if self.losses:
            return "gaps"
        return "full"

    def lines(self) -> list[str]:
        """Display lines for the degradation banner."""
        out = [f"degradation: {self.level}"]
        for machine in self.missing_machines:
            out.append(f"  machine {machine}: no snap recovered")
        for a, b in self.approximate_pairs:
            out.append(
                f"  causal order between {a} and {b} approximate "
                "(no surviving SYNC pair)"
            )
        out.extend(f"  {loss}" for loss in self.losses)
        return out

    def summary(self) -> str:
        """The whole banner as one string."""
        return "\n".join(self.lines())


@dataclass
class DistributedTrace:
    """A master trace stitched from several snaps (§5)."""

    processes: list[ProcessTrace]
    logical_threads: list[LogicalThreadTrace]
    #: (runtime_a, runtime_b) -> estimated clock offset b - a (§5.2).
    skew_estimates: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Filled by salvage-mode reconstruction; None after a strict run.
    degradation: DegradationSummary | None = None
