"""Trace display (§4.3): text renderings of reconstructed traces.

The GUI's upper source pane / lower trace pane become text: a flat
line-by-line history with module and file columns, a hierarchical call
tree with expand/collapse, a multi-thread merged view, and the
fault-directed view selection of §4.3.3 (exception snaps get the call
tree focused on the faulting line; hang snaps get one line per thread
showing what blocks it).
"""

from __future__ import annotations

from repro.reconstruct.callstack import assign_depths
from repro.reconstruct.interleave import merge, merge_grouped
from repro.reconstruct.model import (
    DegradationSummary,
    DistributedTrace,
    LineStep,
    LogicalThreadTrace,
    ProcessTrace,
    Step,
    ThreadTrace,
    TraceEvent,
)
from repro.vm.errors import ExcCode


def _format_event(event: TraceEvent) -> str:
    d = event.detail
    if event.kind == "exception":
        where = ""
        if "file" in d:
            where = f" at {d['file']}:{d['line']} in {d.get('func')}"
        elif d.get("uninstrumented"):
            where = " in uninstrumented code"
        return f"*** exception {ExcCode.name(d['code'])}{where}"
    if event.kind == "exception_end":
        return f"*** control resumed after signal {d.get('signum')}"
    if event.kind == "sync":
        kinds = {1: "rpc-call-out", 2: "rpc-enter", 3: "rpc-exit", 4: "rpc-return"}
        return (
            f"--- sync {kinds.get(d['sync_kind'], '?')} logical={d['logical_id']:#x} "
            f"seq={d['seq']}"
        )
    if event.kind == "timestamp":
        return f"--- t={event.clock} (syscall {d.get('syscall')})"
    if event.kind == "thread_start":
        return f"=== thread {d.get('tid')} started"
    if event.kind == "thread_end":
        return f"=== thread {d.get('tid')} ended (code {d.get('exit_code')})"
    if event.kind == "snapmark":
        return f"=== snap requested (reason {d.get('reason')})"
    if event.kind == "untraced":
        return f"??? untraced records ({d.get('why')})"
    return f"--- {event.kind} {d}"


def format_step(step: Step, show_depth: bool = False) -> str:
    """One display row for a step."""
    indent = "  " * step.depth if show_depth else ""
    if isinstance(step, LineStep):
        marker = ""
        if step.call:
            marker = f"  -> call {step.call}"
        elif step.is_func_exit:
            marker = "  <- return"
        return f"{indent}{step.module:>10} {step.file}:{step.line:<5} {marker}"
    return f"{indent}{_format_event(step)}"


def render_flat(
    trace: ThreadTrace, sources: dict[str, list[str]] | None = None
) -> str:
    """The flat trace pane: one row per executed line.

    ``sources`` optionally maps file name -> source lines, filling the
    GUI's synchronized source column.
    """
    rows = [f"thread {trace.tid} ({trace.process_name} on {trace.machine_name})"]
    if trace.truncated:
        rows.append("  [history truncated: older records overwritten]")
    for step in trace.steps:
        row = format_step(step)
        if sources is not None and isinstance(step, LineStep):
            file_lines = sources.get(step.file)
            if file_lines and 1 <= step.line <= len(file_lines):
                row = f"{row}  | {file_lines[step.line - 1].strip()}"
        rows.append(row)
    return "\n".join(rows)


def render_tree(trace: ThreadTrace, collapse: set[str] | None = None) -> str:
    """The hierarchical display: indentation by call depth; callees of
    functions named in ``collapse`` are folded into one row."""
    assign_depths(trace)
    collapse = collapse or set()
    rows = [f"thread {trace.tid} call tree"]
    hidden_below: int | None = None
    for step in trace.steps:
        if hidden_below is not None:
            if step.depth > hidden_below:
                continue
            hidden_below = None
        rows.append(format_step(step, show_depth=True))
        if (
            isinstance(step, LineStep)
            and step.call in collapse
        ):
            rows.append("  " * (step.depth + 1) + f"[+] {step.call} (collapsed)")
            hidden_below = step.depth
    return "\n".join(rows)


def render_multithread(traces: list[ThreadTrace]) -> str:
    """The merged multi-thread view: a plausible interleaving with a
    thread column (§4.3.2)."""
    rows = ["merged view (plausible interleaving)"]
    for trace, step in merge(traces):
        label = f"T{trace.tid}" if trace.tid is not None else "T?"
        rows.append(f"{label:>4} | {format_step(step)}")
    return "\n".join(rows)


def render_logical(logical: LogicalThreadTrace) -> str:
    """A fused logical-thread trace across processes/machines (§5)."""
    rows = [f"logical thread {logical.logical_id:#x}"]
    for segment in logical.segments:
        trace = segment.trace
        rows.append(
            f"  [{segment.leg}] {trace.process_name}@{trace.machine_name} "
            f"thread {trace.tid}"
        )
        for step in segment.steps():
            rows.append("    " + format_step(step))
    return "\n".join(rows)


def render_degradation(summary: DegradationSummary | None) -> str:
    """The degradation banner a salvaged reconstruction leads with."""
    if summary is None or not summary.degraded:
        return "degradation: full (no losses)"
    return summary.summary()


def render_distributed(trace: DistributedTrace) -> str:
    """Render a master trace, degradation banner first (§5 + salvage).

    Healthy traces get the fused logical threads plus one globally
    merged multi-thread view.  When causal order between some machines
    is only approximate (no surviving SYNC pair), the merged view drops
    to the ladder's per-machine rung rather than fabricate an order.
    """
    rows: list[str] = []
    if trace.degradation is not None:
        rows.append(render_degradation(trace.degradation))
        rows.append("")
    for logical in trace.logical_threads:
        rows.append(render_logical(logical))
        rows.append("")
    all_threads = [t for p in trace.processes for t in p.threads]
    approximate = bool(
        trace.degradation is not None and trace.degradation.approximate_pairs
    )
    if not all_threads:
        rows.append("(no recoverable trace on any machine)")
    elif approximate:
        for machine, steps in merge_grouped(all_threads):
            rows.append(f"machine {machine} (local order only)")
            for owner, step in steps:
                label = f"T{owner.tid}" if owner.tid is not None else "T?"
                rows.append(f"{label:>4} | {format_step(step)}")
            rows.append("")
    else:
        rows.append(render_multithread(all_threads))
    while rows and not rows[-1]:
        rows.pop()
    return "\n".join(rows)


def select_view(process_trace: ProcessTrace) -> str:
    """Fault-directed view selection (§4.3.3)."""
    reason = process_trace.reason
    if reason in ("exception", "unhandled", "signal"):
        return _exception_view(process_trace)
    if reason == "hang":
        return _hang_view(process_trace)
    traces = process_trace.threads
    if len(traces) > 1:
        return render_multithread(traces)
    return render_flat(traces[0]) if traces else "(no recoverable trace)"


def _exception_view(process_trace: ProcessTrace) -> str:
    """Call tree with the exception-causing line highlighted."""
    rows = [
        f"snap: {process_trace.reason} in {process_trace.process_name} "
        f"({process_trace.detail})"
    ]
    for trace in process_trace.threads:
        has_exception = any(e.kind == "exception" for e in trace.events())
        if not has_exception:
            continue
        assign_depths(trace)
        tree = render_tree(trace).splitlines()
        # Highlight the last executed line before the exception event —
        # only its final occurrence (earlier executions of the same line
        # were the successful ones).
        last = trace.last_line()
        if last is not None:
            needle = f"{last.file}:{last.line}"
            for idx in range(len(tree) - 1, -1, -1):
                if needle in tree[idx] and "***" not in tree[idx]:
                    tree[idx] += "   <=== fault here"
                    break
        rows.extend(tree)
    if len(rows) == 1:
        rows.append("(faulting thread not recoverable)")
    return "\n".join(rows)


def _hang_view(process_trace: ProcessTrace) -> str:
    """One line per thread, "to aid the user in understanding what is
    blocking each thread's execution" (§4.3.3)."""
    rows = [f"snap: hang in {process_trace.process_name}"]
    for trace in process_trace.threads:
        last = trace.last_line()
        if last is None:
            rows.append(f"  thread {trace.tid}: (no trace)")
        else:
            rows.append(
                f"  thread {trace.tid}: {last.file}:{last.line} in "
                f"{last.func} ({last.module})"
            )
    return "\n".join(rows)
