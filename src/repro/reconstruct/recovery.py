"""Trace record recovery (§4.1): raw buffer words -> per-thread records.

"TraceBack examines the trace file to verify its integrity.  Sub-buffer
boundaries are removed to produce a contiguous span of trace data.  Each
buffer is then mined ... to recover the trace records it contains.
These record sequences are then split up by thread."

Sub-buffer ordering uses the commit bookkeeping of §3.2: the header
names the last committed sub-buffer; the one after it (cyclically) is
currently being filled, making the one after *that* the oldest surviving
data.  Threads are split on THREAD_START / THREAD_END records; a leading
anonymous span (its THREAD_START overwritten by wrap) is attributed to
the closing THREAD_END's tid, or to the buffer's current owner.

Two recovery disciplines coexist:

* **strict** (the default): any integrity violation raises
  :class:`RecoveryError` — the right behaviour for tests and for
  pipelines that must not silently accept damaged evidence;
* **salvage**: every buffer yields whatever records survive, plus a
  :class:`SalvageReport` accounting for what was lost and why.  This is
  the paper's actual operating regime — a snap cut by ``kill -9``, a
  trace file torn in transmission, a clobbered header — where a partial
  answer beats a stack trace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.runtime.buffers import BufferFlags, HEADER_WORDS, MAGIC
from repro.runtime.records import (
    _CLS_AMB,
    _CLS_DAG,
    _CLS_HDR,
    _CLS_LOW,
    _DAG_RUN,
    INVALID,
    SENTINEL,
    ExtKind,
    ExtRecord,
    Record,
    _classify,
    _decode_dag_run,
    decode_dag,
    is_dag_word,
    is_ext_header,
    is_ext_trailer,
    read_forward,
    read_forward_bulk,
)
from repro.runtime.snap import BufferDump


class RecoveryError(ValueError):
    """The trace data failed integrity checks."""


#: Reason codes a :class:`SalvageReport` can carry.
REASON_TOO_SHORT = "too-short"
REASON_BAD_MAGIC = "bad-magic"
REASON_BAD_GEOMETRY = "bad-geometry"
REASON_LENGTH_MISMATCH = "length-mismatch"
REASON_BAD_COMMIT = "bad-commit-index"
REASON_GARBAGE_WORDS = "garbage-words"
REASON_SHARED = "shared-buffer"
REASON_EXPAND_FAILED = "expand-failed"


@dataclass
class SalvageReport:
    """What salvage-mode recovery got out of (and lost in) one buffer."""

    buffer_index: int
    records_recovered: int = 0
    words_scanned: int = 0
    words_skipped: int = 0
    #: Reason codes (REASON_*) for each distinct problem found.
    reasons: list[str] = field(default_factory=list)
    #: Human-readable diagnostics matching ``reasons``.
    problems: list[str] = field(default_factory=list)

    def note(self, reason: str, message: str) -> None:
        """Record one problem (reason code + diagnostic)."""
        if reason not in self.reasons:
            self.reasons.append(reason)
        self.problems.append(message)

    @property
    def damaged(self) -> bool:
        """Whether this buffer lost anything."""
        return bool(self.reasons) or self.words_skipped > 0

    def summary(self) -> str:
        """One display line, e.g. ``buffer 2: corrupt, 312/4096 words
        skipped (garbage-words)``."""
        if not self.damaged:
            return (
                f"buffer {self.buffer_index}: intact, "
                f"{self.records_recovered} records"
            )
        codes = ", ".join(self.reasons) or "damaged"
        return (
            f"buffer {self.buffer_index}: corrupt, "
            f"{self.words_skipped}/{self.words_scanned} words skipped "
            f"({codes}); {self.records_recovered} records recovered"
        )


@dataclass
class RecoveryResult:
    """Everything salvage-mode recovery produced from one snap."""

    spans: list[ThreadSpan] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    reports: list[SalvageReport] = field(default_factory=list)

    @property
    def damaged(self) -> bool:
        return any(r.damaged for r in self.reports)


@dataclass
class ThreadSpan:
    """One thread lifetime's records within one buffer."""

    buffer_index: int
    tid: int | None
    records: list[Record] = field(default_factory=list)
    has_start: bool = False
    has_end: bool = False

    @property
    def truncated(self) -> bool:
        """Whether the front of the history was overwritten."""
        return not self.has_start


def verify_buffer(dump: BufferDump, strict: bool = True) -> list[str]:
    """Integrity checks on a dumped buffer ("verify its integrity").

    In strict mode the first violation raises :class:`RecoveryError`.
    Otherwise every problem is returned as a ``(reason, message)`` pair
    encoded ``"reason: message"`` — the salvage path turns these into
    :class:`SalvageReport` entries.
    """
    problems: list[str] = []

    def fail(reason: str, message: str) -> None:
        if strict:
            raise RecoveryError(message)
        problems.append(f"{reason}: {message}")

    words = dump.words
    if len(words) < HEADER_WORDS:
        fail(REASON_TOO_SHORT, f"buffer {dump.index}: too short")
        return problems  # nothing below is checkable
    if words[0] != MAGIC:
        fail(
            REASON_BAD_MAGIC,
            f"buffer {dump.index}: bad magic {words[0]:#x}",
        )
    if dump.sub_count <= 0 or dump.sub_size <= 1:
        fail(
            REASON_BAD_GEOMETRY,
            f"buffer {dump.index}: bad geometry "
            f"{dump.sub_count}x{dump.sub_size}",
        )
        return problems  # geometry is unusable: stop here
    expected = HEADER_WORDS + dump.sub_count * dump.sub_size
    if len(words) != expected:
        fail(
            REASON_LENGTH_MISMATCH,
            f"buffer {dump.index}: {len(words)} words, header implies {expected}",
        )
    committed = words[4]
    if committed != 0xFFFFFFFF and committed >= dump.sub_count:
        fail(
            REASON_BAD_COMMIT,
            f"buffer {dump.index}: committed index {committed} out of "
            f"range (clobbered header?)",
        )
    return problems


def sub_buffer_order(dump: BufferDump) -> list[int]:
    """Sub-buffer indices oldest -> newest (the current one last)."""
    committed = dump.words[4]
    if committed == 0xFFFFFFFF or committed >= dump.sub_count:
        # No commit yet — or a clobbered header word, which salvage mode
        # treats the same way: start from sub-buffer 0.
        current = 0
    else:
        current = (committed + 1) % dump.sub_count
    return [(current + 1 + i) % dump.sub_count for i in range(dump.sub_count)]


def mine_buffer(dump: BufferDump) -> list[Record]:
    """All records in one buffer, oldest first (§4.1).

    Each sub-buffer is scanned forward from its base to the last
    non-zero, record-aligned entry; sub-buffers are concatenated in
    commit order.  Decoding goes through the bulk scanner
    (:func:`~repro.runtime.records.read_forward_bulk`), which is
    output-identical to the scalar oracle.
    """
    verify_buffer(dump)
    records: list[Record] = []
    for sub in sub_buffer_order(dump):
        start = HEADER_WORDS + sub * dump.sub_size
        end = start + dump.sub_size - 1  # exclusive of the sentinel
        records.extend(read_forward_bulk(dump.words, start, end))
    return records


def mine_buffer_backward(dump: BufferDump) -> list[Record]:
    """§4.1's literal strategy: mine each sub-buffer "back-to-front
    (newest record to oldest)".

    The record trailers exist precisely so this direction works; it must
    agree with :func:`mine_buffer` on any runtime-produced buffer (see
    ``tests/reconstruct/test_recovery.py``), and is the variant a
    recovery tool would use when the forward scan is cut short by
    corruption at the front of a sub-buffer.
    """
    from repro.runtime.records import read_backward_bulk

    verify_buffer(dump)
    records: list[Record] = []
    words = dump.words
    for sub in sub_buffer_order(dump):
        start = HEADER_WORDS + sub * dump.sub_size
        end = start + dump.sub_size - 1  # the sentinel position
        # Find the last non-zero, record-aligned entry: walk back over
        # zeroed tail space first.
        last = end - 1
        while last >= start and words[last] == INVALID:
            last -= 1
        if last < start:
            continue
        records.extend(read_backward_bulk(words, last, start))
    return records


def read_forward_salvage(
    words: list[int], start: int, end: int
) -> tuple[list[Record], int]:
    """Resynchronizing forward scan for damaged data.

    Unlike :func:`~repro.runtime.records.read_forward`, garbage does not
    end the scan: unparseable words are skipped one at a time until the
    stream realigns on something that decodes.  Multi-word extended
    records are only accepted when their trailer agrees with the header
    (the trailer exists precisely to make this check possible), so a
    bit-flipped length field cannot swallow the rest of the sub-buffer.

    Returns ``(records, words_skipped)``.  On undamaged data this agrees
    exactly with the strict scanner.
    """
    records: list[Record] = []
    skipped = 0
    idx = start
    while idx < end:
        word = words[idx]
        if word == INVALID or word == SENTINEL:
            # Zeroed space — either the legitimate unwritten tail or a
            # zeroed-out hole; indistinguishable, so walk through it.
            idx += 1
            continue
        if is_dag_word(word):
            records.append(decode_dag(word))
            idx += 1
            continue
        if is_ext_header(word):
            kind = (word >> 24) & 0x1F
            length = (word >> 16) & 0xFF
            inline = word & 0xFFFF
            if length == 0:
                records.append(ExtRecord(kind, inline))
                idx += 1
                continue
            trailer_idx = idx + length + 1
            if trailer_idx < end:
                trailer = words[trailer_idx]
                if (
                    is_ext_trailer(trailer)
                    and (trailer >> 24) & 0x1F == kind
                    and (trailer >> 16) & 0xFF == length
                ):
                    payload = tuple(words[idx + 1 : trailer_idx])
                    records.append(ExtRecord(kind, inline, payload))
                    idx = trailer_idx + 1
                    continue
            # Header without a matching trailer: damaged or truncated
            # mid-write.  Skip just this word and resync.
            skipped += 1
            idx += 1
            continue
        # Trailer in header position, or garbage that matches nothing.
        skipped += 1
        idx += 1
    return records, skipped


#: Runs the bulk salvage scan consumes whole: zeroed space (class 'z'),
#: and junk that can never start a record (trailer 't' / garbage 'g').
_ZERO_RUN = re.compile(b"z+")
_JUNK_RUN = re.compile(b"[tg]+")


def read_forward_salvage_bulk(
    words: list[int], start: int, end: int
) -> tuple[list[Record], int]:
    """Bulk counterpart of :func:`read_forward_salvage`.

    Classifies the whole span once and consumes runs — DAG records,
    zeroed space, unparseable junk — in bulk, falling back to the scalar
    scanner when the span holds non-word values (hand-damaged dumps).
    Output-identical to :func:`read_forward_salvage` on every input.
    """
    if end <= start:
        return [], 0
    packed = _classify(words, start, end)
    if packed is None:
        return read_forward_salvage(words, start, end)
    arr, classes = packed
    n = end - start
    records: list[Record] = []
    skipped = 0
    idx = 0
    while idx < n:
        cls = classes[idx]
        if cls == _CLS_DAG:
            run_end = _DAG_RUN.match(classes, idx).end()
            _decode_dag_run(arr, idx, run_end, records)
            idx = run_end
        elif cls == _CLS_LOW:
            # Zeroed space walks through uncounted; nonzero low-byte
            # garbage is skipped — tally both for the run at once.
            run_end = _ZERO_RUN.match(classes, idx).end()
            skipped += (run_end - idx) - arr[idx:run_end].count(0)
            idx = run_end
        elif cls == _CLS_HDR:
            word = arr[idx]
            kind = (word >> 24) & 0x1F
            length = (word >> 16) & 0xFF
            inline = word & 0xFFFF
            if length == 0:
                records.append(ExtRecord(kind, inline))
                idx += 1
                continue
            trailer_idx = idx + length + 1
            if trailer_idx < n:
                trailer = arr[trailer_idx]
                if (
                    (trailer >> 29) == 0b011
                    and (trailer >> 24) & 0x1F == kind
                    and (trailer >> 16) & 0xFF == length
                ):
                    payload = tuple(arr[idx + 1 : trailer_idx])
                    records.append(ExtRecord(kind, inline, payload))
                    idx = trailer_idx + 1
                    continue
            # Header without a matching trailer: damaged or truncated
            # mid-write.  Skip just this word and resync.
            skipped += 1
            idx += 1
        elif cls == _CLS_AMB:
            if arr[idx] == SENTINEL:
                idx += 1
            else:
                _decode_dag_run(arr, idx, idx + 1, records)
                idx += 1
        else:
            run_end = _JUNK_RUN.match(classes, idx).end()
            skipped += run_end - idx
            idx = run_end
    return records, skipped


def mine_buffer_salvage(dump: BufferDump) -> tuple[list[Record], SalvageReport]:
    """Best-effort mining of a possibly damaged buffer.

    Every integrity violation is logged to the report instead of
    raising; mining proceeds over whatever words exist, clamped to the
    geometry the snap metadata declares.
    """
    report = SalvageReport(buffer_index=dump.index)
    for problem in verify_buffer(dump, strict=False):
        reason, _, message = problem.partition(": ")
        report.note(reason, message)
    words = dump.words
    if len(words) < HEADER_WORDS or REASON_BAD_GEOMETRY in report.reasons:
        # No mineable data area at all.
        report.words_scanned = max(0, len(words) - HEADER_WORDS)
        report.words_skipped = report.words_scanned
        return [], report

    records: list[Record] = []
    for sub in sub_buffer_order(dump):
        start = HEADER_WORDS + sub * dump.sub_size
        end = min(start + dump.sub_size - 1, len(words))  # sans sentinel
        if start >= len(words):
            # Truncated container: this sub-buffer is simply gone.
            report.words_skipped += dump.sub_size - 1
            report.words_scanned += dump.sub_size - 1
            continue
        sub_records, skipped = read_forward_salvage_bulk(words, start, end)
        records.extend(sub_records)
        report.words_scanned += end - start
        report.words_skipped += skipped
        # Words the truncation cut off count as lost too.
        missing = (start + dump.sub_size - 1) - end
        if missing > 0:
            report.words_skipped += missing
            report.words_scanned += missing
    if report.words_skipped and REASON_GARBAGE_WORDS not in report.reasons:
        report.note(
            REASON_GARBAGE_WORDS,
            f"buffer {dump.index}: {report.words_skipped} unparseable "
            "words skipped",
        )
    report.records_recovered = len(records)
    return records, report


def split_by_thread(dump: BufferDump, records: list[Record]) -> list[ThreadSpan]:
    """Split a buffer's record stream into per-thread lifetimes.

    Buffers are reused across threads (§3.1.2), so one buffer can hold
    "several threads' entire lifetimes".
    """
    spans: list[ThreadSpan] = []
    current = ThreadSpan(buffer_index=dump.index, tid=None)

    def close(span: ThreadSpan) -> None:
        if span.records or span.has_start or span.has_end:
            spans.append(span)

    for record in records:
        if isinstance(record, ExtRecord) and record.kind == ExtKind.THREAD_START:
            close(current)
            current = ThreadSpan(
                buffer_index=dump.index,
                tid=record.payload[0] if record.payload else None,
                has_start=True,
            )
            current.records.append(record)
        elif isinstance(record, ExtRecord) and record.kind == ExtKind.THREAD_END:
            current.records.append(record)
            current.has_end = True
            if current.tid is None and record.payload:
                # Anonymous leading span: the END record names the owner.
                current.tid = record.payload[0]
            close(current)
            current = ThreadSpan(buffer_index=dump.index, tid=None)
        else:
            current.records.append(record)
    close(current)

    # A trailing (or only) anonymous span belongs to the current owner:
    # its THREAD_START was overwritten by buffer wrap.
    for span in spans:
        if span.tid is None and not span.has_end:
            span.tid = dump.owner_tid
    return spans


def recover_spans(dumps: list[BufferDump]) -> tuple[list[ThreadSpan], list[str]]:
    """Recover thread spans from every recoverable buffer in a snap.

    Shared (desperation/static) and probation buffers are skipped — by
    design their contents are not reconstructable (§3.1) — with a note.
    """
    spans: list[ThreadSpan] = []
    notes: list[str] = []
    for dump in dumps:
        if dump.flags & BufferFlags.PROBATION:
            continue
        if dump.flags & BufferFlags.SHARED:
            used = any(w not in (0, 0xFFFFFFFF) for w in dump.words[HEADER_WORDS:])
            if used:
                notes.append(
                    f"buffer {dump.index}: shared (desperation) buffer "
                    "contains unsynchronized records; not recovered"
                )
            continue
        records = mine_buffer(dump)
        spans.extend(split_by_thread(dump, records))
    return spans, notes


def recover_spans_salvage(dumps: list[BufferDump]) -> RecoveryResult:
    """Salvage-mode counterpart of :func:`recover_spans`.

    Never raises: every buffer contributes whatever spans survive, and
    each one's :class:`SalvageReport` records what was lost.  Probation
    and shared buffers are skipped exactly as in strict mode.
    """
    result = RecoveryResult()
    for dump in dumps:
        if dump.flags & BufferFlags.PROBATION:
            continue
        if dump.flags & BufferFlags.SHARED:
            used = any(
                w not in (0, 0xFFFFFFFF) for w in dump.words[HEADER_WORDS:]
            )
            if used:
                report = SalvageReport(buffer_index=dump.index)
                report.note(
                    REASON_SHARED,
                    f"buffer {dump.index}: shared (desperation) buffer "
                    "contains unsynchronized records; not recovered",
                )
                result.reports.append(report)
                result.notes.append(report.problems[-1])
            continue
        records, report = mine_buffer_salvage(dump)
        result.reports.append(report)
        if report.damaged:
            result.notes.append(report.summary())
        result.spans.extend(split_by_thread(dump, records))
    return result
