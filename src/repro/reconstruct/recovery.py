"""Trace record recovery (§4.1): raw buffer words -> per-thread records.

"TraceBack examines the trace file to verify its integrity.  Sub-buffer
boundaries are removed to produce a contiguous span of trace data.  Each
buffer is then mined ... to recover the trace records it contains.
These record sequences are then split up by thread."

Sub-buffer ordering uses the commit bookkeeping of §3.2: the header
names the last committed sub-buffer; the one after it (cyclically) is
currently being filled, making the one after *that* the oldest surviving
data.  Threads are split on THREAD_START / THREAD_END records; a leading
anonymous span (its THREAD_START overwritten by wrap) is attributed to
the closing THREAD_END's tid, or to the buffer's current owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.buffers import BufferFlags, HEADER_WORDS, MAGIC
from repro.runtime.records import ExtKind, ExtRecord, Record, read_forward
from repro.runtime.snap import BufferDump


class RecoveryError(ValueError):
    """The trace data failed integrity checks."""


@dataclass
class ThreadSpan:
    """One thread lifetime's records within one buffer."""

    buffer_index: int
    tid: int | None
    records: list[Record] = field(default_factory=list)
    has_start: bool = False
    has_end: bool = False

    @property
    def truncated(self) -> bool:
        """Whether the front of the history was overwritten."""
        return not self.has_start


def verify_buffer(dump: BufferDump) -> None:
    """Integrity checks on a dumped buffer ("verify its integrity")."""
    words = dump.words
    if len(words) < HEADER_WORDS:
        raise RecoveryError(f"buffer {dump.index}: too short")
    if words[0] != MAGIC:
        raise RecoveryError(f"buffer {dump.index}: bad magic {words[0]:#x}")
    expected = HEADER_WORDS + dump.sub_count * dump.sub_size
    if len(words) != expected:
        raise RecoveryError(
            f"buffer {dump.index}: {len(words)} words, header implies {expected}"
        )


def sub_buffer_order(dump: BufferDump) -> list[int]:
    """Sub-buffer indices oldest -> newest (the current one last)."""
    committed = dump.words[4]
    if committed == 0xFFFFFFFF:
        current = 0
    else:
        current = (committed + 1) % dump.sub_count
    return [(current + 1 + i) % dump.sub_count for i in range(dump.sub_count)]


def mine_buffer(dump: BufferDump) -> list[Record]:
    """All records in one buffer, oldest first (§4.1).

    Each sub-buffer is scanned forward from its base to the last
    non-zero, record-aligned entry; sub-buffers are concatenated in
    commit order.
    """
    verify_buffer(dump)
    records: list[Record] = []
    for sub in sub_buffer_order(dump):
        start = HEADER_WORDS + sub * dump.sub_size
        end = start + dump.sub_size - 1  # exclusive of the sentinel
        records.extend(read_forward(dump.words, start, end))
    return records


def mine_buffer_backward(dump: BufferDump) -> list[Record]:
    """§4.1's literal strategy: mine each sub-buffer "back-to-front
    (newest record to oldest)".

    The record trailers exist precisely so this direction works; it must
    agree with :func:`mine_buffer` on any runtime-produced buffer (see
    ``tests/reconstruct/test_recovery.py``), and is the variant a
    recovery tool would use when the forward scan is cut short by
    corruption at the front of a sub-buffer.
    """
    from repro.runtime.records import INVALID, read_backward

    verify_buffer(dump)
    records: list[Record] = []
    for sub in sub_buffer_order(dump):
        start = HEADER_WORDS + sub * dump.sub_size
        end = start + dump.sub_size - 1  # the sentinel position
        # Find the last non-zero, record-aligned entry: walk back over
        # zeroed tail space first.
        last = end - 1
        while last >= start and dump.words[last] == INVALID:
            last -= 1
        if last < start:
            continue
        records.extend(read_backward(dump.words, last, start))
    return records


def split_by_thread(dump: BufferDump, records: list[Record]) -> list[ThreadSpan]:
    """Split a buffer's record stream into per-thread lifetimes.

    Buffers are reused across threads (§3.1.2), so one buffer can hold
    "several threads' entire lifetimes".
    """
    spans: list[ThreadSpan] = []
    current = ThreadSpan(buffer_index=dump.index, tid=None)

    def close(span: ThreadSpan) -> None:
        if span.records or span.has_start or span.has_end:
            spans.append(span)

    for record in records:
        if isinstance(record, ExtRecord) and record.kind == ExtKind.THREAD_START:
            close(current)
            current = ThreadSpan(
                buffer_index=dump.index,
                tid=record.payload[0] if record.payload else None,
                has_start=True,
            )
            current.records.append(record)
        elif isinstance(record, ExtRecord) and record.kind == ExtKind.THREAD_END:
            current.records.append(record)
            current.has_end = True
            if current.tid is None and record.payload:
                # Anonymous leading span: the END record names the owner.
                current.tid = record.payload[0]
            close(current)
            current = ThreadSpan(buffer_index=dump.index, tid=None)
        else:
            current.records.append(record)
    close(current)

    # A trailing (or only) anonymous span belongs to the current owner:
    # its THREAD_START was overwritten by buffer wrap.
    for span in spans:
        if span.tid is None and not span.has_end:
            span.tid = dump.owner_tid
    return spans


def recover_spans(dumps: list[BufferDump]) -> tuple[list[ThreadSpan], list[str]]:
    """Recover thread spans from every recoverable buffer in a snap.

    Shared (desperation/static) and probation buffers are skipped — by
    design their contents are not reconstructable (§3.1) — with a note.
    """
    spans: list[ThreadSpan] = []
    notes: list[str] = []
    for dump in dumps:
        if dump.flags & BufferFlags.PROBATION:
            continue
        if dump.flags & BufferFlags.SHARED:
            used = any(w not in (0, 0xFFFFFFFF) for w in dump.words[HEADER_WORDS:])
            if used:
                notes.append(
                    f"buffer {dump.index}: shared (desperation) buffer "
                    "contains unsynchronized records; not recovered"
                )
            continue
        records = mine_buffer(dump)
        spans.extend(split_by_thread(dump, records))
    return spans, notes
