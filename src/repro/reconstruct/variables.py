"""Variable display from snap memory dumps (§3.6).

"Snaps may also include a memory or object dump, so that TraceBack can
display the values of variables or objects at the point of the snap."

Mapfiles carry each module's global data symbols (name, section,
offset, size); the snap carries section base addresses and the writable
memory contents at snap time.  Joining the two yields named variable
values — the pane the GUI shows beside the trace, and the evidence the
Fidelity diagnosis needed (the corrupted neighbour structure's value).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instrument.mapfile import Mapfile
from repro.runtime.snap import SnapFile


@dataclass
class VariableValue:
    """One global variable's value at snap time."""

    module: str
    name: str
    section: str
    address: int
    values: list[int] | None  # None when the memory was not dumped

    @property
    def scalar(self) -> int | None:
        """The value, for one-word variables."""
        if self.values and len(self.values) == 1:
            return self.values[0]
        return None

    def render(self) -> str:
        if self.values is None:
            return f"{self.module}.{self.name} = <not dumped>"
        if len(self.values) == 1:
            return f"{self.module}.{self.name} = {self.values[0]}"
        shown = ", ".join(str(v) for v in self.values[:8])
        suffix = ", ..." if len(self.values) > 8 else ""
        return f"{self.module}.{self.name}[{len(self.values)}] = {{{shown}{suffix}}}"


def _read_dump(snap: SnapFile, address: int, count: int) -> list[int] | None:
    for base, words in snap.memory.values():
        if base <= address and address + count <= base + len(words):
            return list(words[address - base : address - base + count])
    return None


def global_variables(
    snap: SnapFile, mapfiles: list[Mapfile]
) -> list[VariableValue]:
    """All resolvable globals across the snap's instrumented modules."""
    by_checksum = {m.checksum: m for m in mapfiles}
    out: list[VariableValue] = []
    for dump in snap.modules:
        mapfile = by_checksum.get(dump.checksum)
        if mapfile is None or not dump.loaded:
            continue
        for name, (section, offset, size) in sorted(
            mapfile.data_symbols.items()
        ):
            if name.startswith("__str_"):
                continue  # interned string literals are not variables
            base = dump.data_base if section == "data" else dump.rodata_base
            if base < 0:
                continue
            address = base + offset
            values = _read_dump(snap, address, size)
            out.append(
                VariableValue(
                    module=dump.name,
                    name=name,
                    section=section,
                    address=address,
                    values=values,
                )
            )
    return out


def variable(
    snap: SnapFile, mapfiles: list[Mapfile], name: str
) -> VariableValue | None:
    """Look up one global by name (first match across modules)."""
    for value in global_variables(snap, mapfiles):
        if value.name == name:
            return value
    return None


def render_variables(snap: SnapFile, mapfiles: list[Mapfile]) -> str:
    """The variables pane: one line per resolvable global."""
    rows = ["globals at snap time:"]
    values = global_variables(snap, mapfiles)
    if not values:
        rows.append("  (no instrumented globals, or memory not dumped)")
    for value in values:
        if value.section == "data":  # rodata is immutable; skip by default
            rows.append("  " + value.render())
    return "\n".join(rows)
