"""Execution path -> source lines (§4.2).

"Each DAG record is expanded into a sequence of block records ... Then
the algorithm uses the DAG to block mapping data found in the mapfile to
get the block trace.  The reconstruction algorithm next expands each
block into the source lines that the block covers."

Covers the paper's three refinements:

* **exception trimming**: an EXCEPTION record following a block trims
  the block's lines at the faulting address — unless the address falls
  outside the block (fault in an uninstrumented callee: the block ends
  at its call line), or the module was instrumented in IL mode (blocks
  are already line-granular, §2.4);
* **redundancy elimination**: adjacent identical lines from *different*
  blocks are collapsed (block splits at calls produce them); identical
  lines from the *same* block are genuine re-executions and stay;
* **bad-DAG handling**: records using the reserved bad DAG id (§2.3) or
  an id no module claims become "untraced" annotations rather than
  lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument.mapfile import BlockMap, DagMap, Mapfile
from repro.reconstruct.model import LineStep, ThreadTrace, TraceEvent
from repro.reconstruct.recovery import ThreadSpan
from repro.runtime.clock import join64
from repro.runtime.records import (
    BAD_DAG_ID,
    DagRecord,
    ExtKind,
    ExtRecord,
)
from repro.runtime.snap import ModuleDump, SnapFile


@dataclass
class ModuleIndex:
    """Maps runtime DAG ids and code addresses back to mapfiles."""

    entries: list[tuple[ModuleDump, Mapfile]]
    #: ``dag_id -> resolution`` memo: a hot trace resolves the same few
    #: ids millions of times, and the entry list / rebased ranges are
    #: fixed for the index's lifetime.  Misses are cached too (``False``
    #: stands in for "known unresolvable", since ``None`` is the miss
    #: sentinel of ``dict.get``).
    _dag_cache: dict = field(default_factory=dict, compare=False, repr=False)

    @classmethod
    def build(cls, snap: SnapFile, mapfiles: list[Mapfile]) -> "ModuleIndex":
        """Match a snap's module dumps with mapfiles by checksum (§2.3:
        the checksum keys mapfile/trace matching)."""
        by_checksum = {m.checksum: m for m in mapfiles}
        entries = []
        for dump in snap.modules:
            mapfile = by_checksum.get(dump.checksum)
            if mapfile is not None:
                entries.append((dump, mapfile))
        return cls(entries)

    def resolve_dag(self, dag_id: int) -> tuple[ModuleDump, Mapfile, DagMap] | None:
        """DAG id -> (module, mapfile, dag), honouring actual (rebased)
        ranges from the snap metadata."""
        cached = self._dag_cache.get(dag_id)
        if cached is not None:
            return cached or None
        for dump, mapfile in self.entries:
            if dump.dag_base_actual <= dag_id < dump.dag_base_actual + dump.dag_count:
                dag = mapfile.dag_by_local_index(dag_id - dump.dag_base_actual)
                if dag is not None:
                    self._dag_cache[dag_id] = (dump, mapfile, dag)
                    return dump, mapfile, dag
        self._dag_cache[dag_id] = False
        return None

    def resolve_addr(self, addr: int) -> tuple[ModuleDump, Mapfile, int] | None:
        """Absolute code address -> (module, mapfile, module offset)."""
        for dump, mapfile in self.entries:
            if not dump.loaded or dump.code_base < 0:
                continue
            offset = addr - dump.code_base
            if 0 <= offset and any(s <= offset < e for _, s, e in mapfile.funcs):
                return dump, mapfile, offset
        return None


def expand_span(
    span: ThreadSpan,
    index: ModuleIndex,
    snap: SnapFile,
) -> ThreadTrace:
    """Expand one thread span's records into a line trace."""
    trace = ThreadTrace(
        tid=span.tid,
        buffer_index=span.buffer_index,
        process_name=snap.process_name,
        machine_name=snap.machine_name,
        truncated=span.truncated,
    )
    steps = trace.steps
    anchor: int | None = None
    seq = 0
    #: Line steps emitted for the most recent DAG record, per block —
    #: the exception-trimming window.
    last_blocks: list[tuple[BlockMap, Mapfile, ModuleDump, int]] = []

    def emit(step) -> None:
        nonlocal seq
        step.anchor_clock = anchor
        step.seq = seq
        seq += 1
        steps.append(step)

    def emit_block_lines(
        block: BlockMap, mapfile: Mapfile, dump: ModuleDump, dag: DagMap
    ) -> int:
        func = mapfile.func_at(block.id) or dag.func
        lines = []
        collapsed_into: LineStep | None = None
        for file, line in mapfile.lines_in_range(block.id, block.end):
            if file == "<traceback>":
                continue  # injected instrumentation code has no lines
            previous = lines[-1] if lines else (steps[-1] if steps else None)
            if (
                not lines
                and isinstance(previous, LineStep)
                and previous.file == file
                and previous.line == line
                and previous.block_id != block.id
                and previous.module == dump.name
                and previous.call is not None
                and not previous.is_func_exit
                and not block.func_entry
            ):
                # Redundancy (§4.2): "an expression with multiple
                # function calls — instrumentation will break this into
                # several blocks, since callee lines may need to be
                # interposed, but if the callee is not instrumented no
                # interposition will take place, and the now-adjacent
                # lines in the caller will be redundant."  The previous
                # step ended in a call and this block resumes the same
                # line with nothing interposed: collapse.  (Loop
                # re-executions of a line do not match — their blocks
                # end in branches, not calls — and stay visible as
                # genuine repetitions.)
                collapsed_into = previous
                previous.block_id = block.id
                continue
            lines.append(
                LineStep(
                    module=dump.name,
                    func=func,
                    file=file,
                    line=line,
                    block_id=block.id,
                )
            )
        # Block annotations attach where they're true: entry at the
        # block's first line, call/exit at its last (§4.3.1).
        first = lines[0] if lines else collapsed_into
        last = lines[-1] if lines else collapsed_into
        if first is not None:
            first.is_func_entry = first.is_func_entry or block.func_entry is not None
        if last is not None:
            last.is_func_exit = last.is_func_exit or block.func_exit
            if block.call:
                last.call = block.call
        for step in lines:
            emit(step)
        return len(lines)

    for record in span.records:
        if isinstance(record, DagRecord):
            if record.dag_id == BAD_DAG_ID:
                emit(TraceEvent(kind="untraced", detail={"why": "bad-dag"}))
                last_blocks = []
                continue
            resolved = index.resolve_dag(record.dag_id)
            if resolved is None:
                emit(
                    TraceEvent(
                        kind="untraced",
                        detail={"why": "unknown-dag", "dag_id": record.dag_id},
                    )
                )
                last_blocks = []
                continue
            dump, mapfile, dag = resolved
            last_blocks = []
            for block in dag.decode(record.path_bits):
                emitted = emit_block_lines(block, mapfile, dump, dag)
                last_blocks.append((block, mapfile, dump, emitted))
        elif isinstance(record, ExtRecord):
            kind = record.kind
            if kind == ExtKind.TIMESTAMP:
                clock = join64(record.payload[0], record.payload[1])
                anchor = clock
                emit(
                    TraceEvent(
                        kind="timestamp",
                        detail={"syscall": record.inline},
                        clock=clock,
                    )
                )
            elif kind == ExtKind.EXCEPTION:
                code, pc = record.payload[0], record.payload[1]
                clock = join64(record.payload[2], record.payload[3])
                anchor = clock
                _trim_at_exception(steps, last_blocks, pc)
                loc = index.resolve_addr(pc)
                detail = {"code": code, "pc": pc}
                if loc is not None:
                    _dump, mapfile, offset = loc
                    source = mapfile.line_at(offset)
                    if source is not None:
                        detail["file"], detail["line"] = source
                    detail["func"] = mapfile.func_at(offset)
                    detail["module"] = _dump.name
                else:
                    detail["uninstrumented"] = True
                emit(TraceEvent(kind="exception", detail=detail, clock=clock))
            elif kind == ExtKind.EXCEPTION_END:
                clock = join64(record.payload[1], record.payload[2])
                anchor = clock
                emit(
                    TraceEvent(
                        kind="exception_end",
                        detail={"signum": record.inline},
                        clock=clock,
                    )
                )
            elif kind == ExtKind.SYNC:
                clock = join64(record.payload[3], record.payload[4])
                anchor = clock
                emit(
                    TraceEvent(
                        kind="sync",
                        detail={
                            "sync_kind": record.inline,
                            "runtime_id": record.payload[0],
                            "logical_id": record.payload[1],
                            "seq": record.payload[2],
                        },
                        clock=clock,
                    )
                )
            elif kind == ExtKind.THREAD_START:
                clock = join64(record.payload[1], record.payload[2])
                anchor = clock
                emit(TraceEvent(kind="thread_start",
                                detail={"tid": record.payload[0]}, clock=clock))
            elif kind == ExtKind.THREAD_END:
                clock = join64(record.payload[1], record.payload[2])
                emit(TraceEvent(kind="thread_end",
                                detail={"tid": record.payload[0],
                                        "exit_code": record.inline}, clock=clock))
            elif kind == ExtKind.SNAP_MARK:
                clock = join64(record.payload[1], record.payload[2])
                emit(TraceEvent(kind="snapmark",
                                detail={"reason": record.payload[0]}, clock=clock))
            else:
                emit(TraceEvent(kind="note", detail={"ext_kind": kind}))
    return trace


def _trim_at_exception(steps, last_blocks, pc: int) -> None:
    """Trim the last block's lines at the faulting address (§4.2).

    "If the block is followed by an exception record giving an address
    within the block, the exception address is used to trim back the set
    of lines.  The exception address may fall outside of the block if
    the block ends in a call and the exception address is within an
    uninstrumented callee."
    """
    if not last_blocks:
        return
    block, mapfile, dump, emitted = last_blocks[-1]
    if mapfile.mode == "il":
        return  # IL blocks are line-granular already (§2.4)
    if dump.code_base < 0:
        return
    offset = pc - dump.code_base
    if not block.id <= offset < block.end:
        return  # fault in a callee: the block's call line stays last
    faulting = mapfile.line_at(offset)
    if faulting is None:
        return
    # Drop trailing lines of this block that come after the faulting one.
    keep_cut = 0
    block_lines = mapfile.lines_in_range(block.id, block.end)
    if (faulting[0], faulting[1]) in block_lines:
        fault_pos = block_lines.index((faulting[0], faulting[1]))
        keep_cut = emitted - min(emitted, fault_pos + 1)
    while keep_cut > 0 and steps and isinstance(steps[-1], LineStep):
        steps.pop()
        keep_cut -= 1
