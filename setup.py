"""Setup shim so ``pip install -e .`` / ``setup.py develop`` work offline
(the sandbox has setuptools but no ``wheel``, so PEP 660 editable installs
cannot build; ``develop`` installs an egg-link instead)."""

from setuptools import setup

setup()
