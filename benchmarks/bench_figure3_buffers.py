"""Figure 3: runtime trace buffers and threads, verified.

The figure shows a memory-mapped file with two main trace buffers (each
split into sub-buffers), four active threads — two owning the buffers,
two overflowed into the shared desperation buffer.

The bench constructs exactly that: a pool capped at two main buffers,
four concurrently running instrumented threads, and asserts the
resulting assignment, the sub-buffer structure, and that the
desperation dwellers' data is (by design) not reconstructable while the
owners' is.
"""

from repro.instrument import instrument_module
from repro.lang.minic import compile_source
from repro.reconstruct import recover_spans
from repro.runtime import BufferFlags, RuntimeConfig, TraceBackRuntime
from repro.vm import Machine

FOUR_THREADS = """
int spin(int arg) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 400; i = i + 1) {
        acc = acc + arg * i;
    }
    exit_thread(acc);
    return 0;
}
int main() {
    thread_create(spin, 1);
    thread_create(spin, 2);
    thread_create(spin, 3);
    sleep(400000);
    return 0;
}
"""


def run_figure3():
    machine = Machine()
    process = machine.create_process("fig3")
    config = RuntimeConfig(
        sub_buffer_words=64, sub_buffers=2, main_buffers=2, max_buffers=2
    )
    runtime = TraceBackRuntime(process, config)
    result = instrument_module(compile_source(FOUR_THREADS, "fig3"))
    process.load_module(result.module)
    process.start()
    status = machine.run(max_cycles=20_000_000)
    return runtime, process, status


def test_figure3_buffer_pool(report, benchmark):
    runtime, process, status = run_figure3()
    assert status == "done"

    snap = runtime.build_snap("figure3", {})
    main_buffers = [b for b in snap.buffers if not b.flags]
    desperation = [b for b in snap.buffers if b.flags & BufferFlags.SHARED
                   and not b.flags & BufferFlags.STATIC]
    probation = [b for b in snap.buffers if b.flags & BufferFlags.PROBATION]

    # The figure's structure: two main buffers x two sub-buffers each,
    # plus probation and the shared desperation buffer.
    assert len(main_buffers) == 2
    assert all(b.sub_count == 2 for b in main_buffers)
    assert len(desperation) == 1
    assert len(probation) == 1

    # Four threads ran; two overflowed into desperation.
    assert runtime.stats.threads_seen == 4
    assert runtime.stats.desperation_entries >= 2

    # Desperation records exist but are not recoverable; main buffers
    # reconstruct normally.
    spans, notes = recover_spans(snap.buffers)
    assert spans, "main-buffer threads recovered"
    assert any("desperation" in n for n in notes)

    rows = [
        ("main buffers", len(main_buffers), "per-thread, recoverable"),
        ("sub-buffers each", main_buffers[0].sub_count, "sentinel-terminated"),
        ("threads traced", runtime.stats.threads_seen, ""),
        ("desperation entries", runtime.stats.desperation_entries,
         "shared, unsynchronized, skipped at reconstruction"),
        ("recovered spans", len(spans), ""),
    ]
    from repro.workloads.harness import format_table

    table = format_table(
        rows, headers=["Item", "Count", "Note"],
        title="Figure 3 — buffer pool under thread pressure",
    )
    report.append(table)
    print("\n" + table)

    benchmark.pedantic(run_figure3, iterations=1, rounds=1)
