"""Table 1: SPECint2000 native-instrumentation overhead.

Paper: per-benchmark Normal vs TraceBack times on a 3GHz P4, ratios
1.10-2.50, geometric mean 1.59, text growth ~60%.

Reproduced claims (ordinal):
* every benchmark slows down, none catastrophically (all ratios in
  (1.0, 3.0));
* the spread is wide and systematic: call/branch-dense codes (gcc,
  perlbmk, crafty) sit at the top, big-basic-block numeric codes
  (ammp, art, mcf, mesa, equake) at the bottom;
* the geometric mean lands in the tens of percent;
* instrumented text grows by a factor comparable to the paper's ~1.6x.

Absolute ratios are compressed relative to the paper because MiniC's
unoptimized codegen emits fatter blocks than VC7.1 -O2, diluting
per-block probe cost; EXPERIMENTS.md discusses this.
"""

import pytest

from repro.workloads.harness import format_table, geo_mean, measure_overhead
from repro.workloads.specint import suite

#: Benchmarks the paper puts in the top/bottom thirds by overhead.
PAPER_HIGH = {"perlbmk", "vortex", "gcc", "gzip", "parser", "crafty"}
PAPER_LOW = {"art", "equake", "mesa", "mcf", "ammp"}


@pytest.fixture(scope="module")
def results():
    return [
        (bench, measure_overhead(bench.source, bench.name))
        for bench in suite()
    ]


def test_table1_specint(results, report, benchmark):
    rows = []
    for bench, result in results:
        rows.append(
            (
                bench.name,
                result.base.cycles,
                result.traced.cycles,
                f"{result.ratio:.2f}",
                f"{bench.paper_ratio:.2f}",
            )
        )
    ratios = [result.ratio for _, result in results]
    mean = geo_mean(ratios)
    rows.append(("Geo Mean", "", "", f"{mean:.2f}", "1.59"))
    table = format_table(
        rows,
        headers=["Test", "Normal (cyc)", "TraceBack (cyc)", "Ratio", "Paper"],
        title="Table 1 — SPECint2000 analog, native instrumentation",
    )
    report.append(table)
    print("\n" + table)

    # --- Ordinal claims. ---
    for _, result in results:
        assert 1.0 < result.ratio < 3.0
    by_ratio = sorted(results, key=lambda item: item[1].ratio)
    low_third = {b.name for b, _ in by_ratio[:5]}
    high_third = {b.name for b, _ in by_ratio[-5:]}
    assert len(low_third & PAPER_LOW) >= 3, (
        f"low-overhead set diverged: {low_third}"
    )
    assert len(high_third & PAPER_HIGH) >= 3, (
        f"high-overhead set diverged: {high_third}"
    )
    assert 1.15 < mean < 2.0

    # Text growth in the paper's neighbourhood (~1.6x).
    growths = [result.text_growth for _, result in results]
    assert all(1.1 < g < 2.5 for g in growths)

    # Timing hook: re-measure one representative benchmark.
    gzip_bench = next(b for b, _ in results if b.name == "gzip")
    benchmark.pedantic(
        lambda: measure_overhead(gzip_bench.source, "gzip"),
        iterations=1,
        rounds=1,
    )
