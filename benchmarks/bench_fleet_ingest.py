"""Fleet vault benchmark: parallel ingest speedup + query scaling.

The vault (§3.6.1/§3.7.5 deployment model) must keep up with a fleet
that snaps often and repeats itself: group fan-outs arrive once per
member, crash loops resubmit identical evidence, and a support engineer
then queries the lot interactively.  Since the parallel-ingest PR this
benchmark measures the two claims that PR makes:

* **ingest speedup** — the same submission stream (20% duplicates)
  through one legacy collector (``pipelined=False``: one ``vault.put``
  with its own fsync per snap, the PR 3 wire behavior) versus four
  concurrent collectors committing prepared batches under group-commit
  durability with coalesced sync points.  The acceptance bar is >= 4x
  aggregate snaps/sec;
* **query scaling** — ``VaultQuery.incident_of`` latency on a 1k-snap
  store versus a 50k-snap store.  The persisted incident index makes
  the lookup O(incident), so the two must agree within +-20%.  Both
  stores ingest the same snap generator, so the 50k store's first
  thousand snaps *are* the 1k store — the timed lookups hit those
  shared snaps in both, making the comparison the same incidents in a
  50x larger vault (reported as the median of per-digest bests over
  several passes, which filters scheduler preemption out of
  microsecond-scale lookups).  The full ``incidents()`` listing time is recorded as
  informational (it is O(result) and the 50k result is 50x larger).

Results append to a bounded history array in ``BENCH_fleet.json``
(schema ``tb-fleet-ingest-bench/2``) so the check lane can fail on
regressions::

    PYTHONPATH=src python benchmarks/bench_fleet_ingest.py          # measure
    PYTHONPATH=src python benchmarks/bench_fleet_ingest.py --check  # guard

``--check`` compares the two most recent history entries and exits
non-zero when parallel snaps/sec regressed by more than 25%.

Also runs in the slow pytest lane (``pytest -m slow benchmarks/``).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.fleet import Collector, SnapVault, VaultQuery
from repro.runtime.snap import SnapFile
from repro.workloads.harness import format_table

SCHEMA = "tb-fleet-ingest-bench/2"

#: Distinct snaps in the ingest-speedup vaults after dedupe.
UNIQUE_SNAPS = 4_000

#: Every 5th submission repeats an earlier snap (crash loops, fan-out
#: re-arrivals): 5,000 submissions -> 4,000 stored, 20% dedupe rate.
DUPLICATE_EVERY = 4

#: Collectors in the parallel configuration.
PARALLEL_COLLECTORS = 4

#: Query-scaling store sizes (unique snaps).
QUERY_SMALL = 1_000
QUERY_LARGE = 50_000

#: incident_of lookups averaged per store.
LOOKUP_SAMPLES = 200

#: Each ingest configuration runs this many times; the median run is
#: reported (see ``_median_of``).
INGEST_RUNS = 3

#: Timing passes per lookup sample (the per-digest best is kept).
LOOKUP_PASSES = 5

#: Link window for the query-scaling vaults: bounds incident size, so
#: incident_of latency is a function of the incident, not the vault.
QUERY_WINDOW = 64

#: Ingest must not be the bottleneck of a simulated run (ordinal floor;
#: real rates are orders of magnitude higher).
MIN_SNAPS_PER_SEC = 100.0

#: ``--check`` fails when parallel snaps/sec drops by more than this
#: fraction between the two most recent history entries.
REGRESSION_TOLERANCE = 0.25

#: History entries kept in BENCH_fleet.json.
HISTORY_LIMIT = 20

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

MACHINES = [f"rack-{i:02d}" for i in range(10)]
PROCESSES = ["web", "db", "cache", "auth", "billing"]


def _make_snap(i: int) -> SnapFile:
    """One fleet snap; every 10th is a group fan-out member."""
    reason = "group" if i % 10 in (1, 2) else ["api", "hang", "unhandled"][i % 3]
    detail: dict = {"code": i}
    if reason == "group":
        detail = {
            "group": f"outage-{i // 10}",
            "initiator": PROCESSES[(i // 10) % len(PROCESSES)],
            "initiator_reason": "unhandled",
        }
    return SnapFile(
        reason=reason,
        detail=detail,
        process_name=PROCESSES[i % len(PROCESSES)],
        pid=100 + i % 7,
        machine_name=MACHINES[i % len(MACHINES)],
        clock=1_000 * i,
        modules=[],
        buffers=[],
        threads=[],
    )


def _submission_stream() -> list[SnapFile]:
    snaps = [_make_snap(i) for i in range(UNIQUE_SNAPS)]
    stream: list[SnapFile] = []
    fresh = iter(snaps)
    for i in range(UNIQUE_SNAPS + UNIQUE_SNAPS // DUPLICATE_EVERY):
        if i % (DUPLICATE_EVERY + 1) == DUPLICATE_EVERY:
            stream.append(_make_snap(i % UNIQUE_SNAPS))  # a repeat
        else:
            stream.append(next(fresh))
    return stream


# ----------------------------------------------------------------------
# Ingest speedup
# ----------------------------------------------------------------------
def _median_of(runs: int, measure) -> dict:
    """Run ``measure`` N times, keep the median-throughput result.

    Disk speed on a shared VM swings 2x run to run (host cache and
    throttling state), and the two configurations are hit unequally —
    the fsync-bound baseline profits most from a lucky fast-disk run.
    The median keeps one lucky or unlucky run from skewing the
    speedup ratio either way.  Each run starts from a clean writeback
    state (``os.sync``), so no run pays for dirty pages a previous one
    left behind.
    """
    results = []
    for _ in range(runs):
        os.sync()
        results.append(measure())
    results.sort(key=lambda r: r["snaps_per_sec"])
    return results[len(results) // 2]


def _ingest_baseline(stream: list[SnapFile]) -> dict:
    """One collector, one ``vault.put`` (own fsync) per snap — PR 3."""
    root = tempfile.mkdtemp(prefix="tb-bench-vault-")
    try:
        vault = SnapVault(root, shards=8)
        collector = Collector(
            vault, batch_size=32, queue_limit=256, pipelined=False
        )
        start = time.perf_counter()
        for snap in stream:
            collector.submit(snap)
        collector.drain()
        seconds = time.perf_counter() - start
        assert len(vault) == UNIQUE_SNAPS, len(vault)
        return {
            "seconds": round(seconds, 4),
            "snaps_per_sec": round(len(stream) / seconds, 1),
            "dedupe_hits": vault.metrics.dedupe_hits,
            "dedupe_hit_rate": round(
                vault.metrics.dedupe_hits / len(stream), 4
            ),
            "store_bytes": vault.store_bytes(),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _ingest_parallel(stream: list[SnapFile]) -> dict:
    """Four collectors on four threads, group-commit batch durability.

    Preparation runs inline on each collector thread: with no network
    transfer to overlap, a shared worker pool only adds GIL convoying
    (measured: it costs ~20-60% here).  The vault's index lock and
    per-shard manifest locks serialize just the metadata commit.
    """
    root = tempfile.mkdtemp(prefix="tb-bench-vault-")
    try:
        vault = SnapVault(root, shards=8, durability="batch")
        collectors = [
            Collector(
                vault,
                batch_size=32,
                queue_limit=256,
                name=f"bench-collector-{i}",
            )
            for i in range(PARALLEL_COLLECTORS)
        ]
        chunks = [
            stream[i :: PARALLEL_COLLECTORS]
            for i in range(PARALLEL_COLLECTORS)
        ]

        def feed(collector: Collector, chunk: list[SnapFile]) -> None:
            for snap in chunk:
                collector.submit(snap)
            collector.drain()

        threads = [
            threading.Thread(target=feed, args=(c, chunk), daemon=True)
            for c, chunk in zip(collectors, chunks)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - start
        assert len(vault) == UNIQUE_SNAPS, len(vault)
        metrics = vault.metrics
        return {
            "collectors": PARALLEL_COLLECTORS,
            "seconds": round(seconds, 4),
            "snaps_per_sec": round(len(stream) / seconds, 1),
            "dedupe_hits": metrics.dedupe_hits,
            "early_dedupe_hits": metrics.early_dedupe_hits,
            "group_commits": metrics.group_commits,
            "sync_coalesced": metrics.sync_coalesced,
            "manifest_batches": metrics.manifest_batches,
            "store_bytes": vault.store_bytes(),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# Query scaling
# ----------------------------------------------------------------------
def _build_store(root: str, unique: int) -> SnapVault:
    """Populate a vault with ``unique`` distinct snaps, fast."""
    vault = SnapVault(
        root, shards=8, durability="batch", link_window=QUERY_WINDOW
    )
    collectors = [
        Collector(vault, batch_size=64, queue_limit=512, name=f"fill-{i}")
        for i in range(PARALLEL_COLLECTORS)
    ]
    snaps = [_make_snap(i) for i in range(unique)]
    chunks = [
        snaps[i :: PARALLEL_COLLECTORS] for i in range(PARALLEL_COLLECTORS)
    ]

    def feed(collector: Collector, chunk: list[SnapFile]) -> None:
        for snap in chunk:
            collector.submit(snap)
        collector.drain()

    threads = [
        threading.Thread(target=feed, args=(c, chunk), daemon=True)
        for c, chunk in zip(collectors, chunks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(vault) == unique, len(vault)
    return vault


def _timed_lookups(vault: SnapVault, samples: list[str]) -> dict:
    os.sync()  # settle writeback from the store build before timing
    query = VaultQuery(vault)
    # Warm pass (index structures, vault.index dict), then time each
    # digest three times and keep its best — scheduler preemption is
    # tens of microseconds, far larger than the lookups themselves.
    best: dict[str, float] = {}
    for digest in samples:
        assert query.incident_of(digest) is not None
    for _ in range(LOOKUP_PASSES):
        for digest in samples:
            start = time.perf_counter()
            query.incident_of(digest)
            elapsed = (time.perf_counter() - start) * 1_000
            if digest not in best or elapsed < best[digest]:
                best[digest] = elapsed
    ranked = sorted(best.values())
    lookup_ms = ranked[len(ranked) // 2]  # median of per-digest bests

    incidents_ms = None
    for _ in range(3):
        start = time.perf_counter()
        incidents = query.incidents()
        elapsed = (time.perf_counter() - start) * 1_000
        if incidents_ms is None or elapsed < incidents_ms:
            incidents_ms = elapsed
    return {
        "snaps": len(vault),
        "incident_of_avg_ms": round(lookup_ms, 4),
        "incidents_ms": round(incidents_ms, 3),
        "incidents": len(incidents),
    }


def _query_scaling() -> dict:
    # Snaps 100..899 exist in both stores (identical digests): the
    # same incidents looked up in a 1k vault and a 50x larger one.
    from repro.fleet import content_digest

    samples = [
        content_digest(_make_snap(100 + (i * 4) % 800))
        for i in range(LOOKUP_SAMPLES)
    ]
    results = {}
    for label, unique in (("small", QUERY_SMALL), ("large", QUERY_LARGE)):
        root = tempfile.mkdtemp(prefix="tb-bench-query-")
        try:
            vault = _build_store(root, unique)
            results[label] = _timed_lookups(vault, samples)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    small = results["small"]["incident_of_avg_ms"]
    large = results["large"]["incident_of_avg_ms"]
    results["lookup_ratio_large_vs_small"] = round(large / small, 3)
    return results


# ----------------------------------------------------------------------
# History + regression guard
# ----------------------------------------------------------------------
def _load_report() -> dict:
    if not OUTPUT_PATH.exists():
        return {}
    try:
        return json.loads(OUTPUT_PATH.read_text())
    except (OSError, ValueError):
        return {}


def run_benchmark() -> dict:
    stream = _submission_stream()
    baseline = _median_of(INGEST_RUNS, lambda: _ingest_baseline(stream))
    parallel = _median_of(INGEST_RUNS, lambda: _ingest_parallel(stream))
    entry = {
        "schema": SCHEMA,
        "submissions": len(stream),
        "stored": UNIQUE_SNAPS,
        "baseline": baseline,
        "parallel": parallel,
        "speedup": round(
            parallel["snaps_per_sec"] / baseline["snaps_per_sec"], 2
        ),
        "query_scaling": _query_scaling(),
    }
    previous = _load_report()
    history = previous.get("history", [])
    if not history and previous.get("schema") == "tb-fleet-ingest-bench/1":
        # Carry the schema/1 single-collector number forward as the
        # pre-parallelism baseline so the first /2 entry has context.
        history = [
            {
                "schema": previous["schema"],
                "submissions": previous.get("submissions"),
                "stored": previous.get("stored"),
                "parallel": {"snaps_per_sec": previous.get("snaps_per_sec")},
            }
        ]
    history.append(entry)
    report = {
        "schema": SCHEMA,
        "latest": entry,
        "history": history[-HISTORY_LIMIT:],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return entry


def check_regression() -> int:
    """Exit status for ``--check``: 1 when ingest regressed > 25%."""
    report = _load_report()
    history = report.get("history", [])
    if len(history) < 2:
        print(f"bench_fleet_ingest --check: {len(history)} history "
              "entr(ies) in BENCH_fleet.json, nothing to compare")
        return 0
    prev = history[-2]["parallel"]["snaps_per_sec"]
    last = history[-1]["parallel"]["snaps_per_sec"]
    if prev and last < prev * (1 - REGRESSION_TOLERANCE):
        print(
            f"bench_fleet_ingest --check: FAIL — parallel ingest "
            f"{last:,.0f} snaps/s is down "
            f"{(1 - last / prev):.0%} from previous {prev:,.0f} snaps/s "
            f"(tolerance {REGRESSION_TOLERANCE:.0%})"
        )
        return 1
    print(
        f"bench_fleet_ingest --check: ok — parallel ingest "
        f"{last:,.0f} snaps/s vs previous {prev:,.0f} snaps/s"
    )
    return 0


def _render(entry: dict) -> str:
    scaling = entry["query_scaling"]
    rows = [
        ("submissions", f"{entry['submissions']:,}"),
        ("stored (unique)", f"{entry['stored']:,}"),
        (
            "baseline ingest (1 collector)",
            f"{entry['baseline']['snaps_per_sec']:,.0f} snaps/s",
        ),
        (
            f"parallel ingest ({entry['parallel']['collectors']} collectors)",
            f"{entry['parallel']['snaps_per_sec']:,.0f} snaps/s",
        ),
        ("speedup", f"{entry['speedup']:.2f}x"),
        ("dedupe hit rate", f"{entry['baseline']['dedupe_hit_rate']:.1%}"),
        (
            f"incident_of @ {scaling['small']['snaps']:,} snaps",
            f"{scaling['small']['incident_of_avg_ms']:.4f} ms",
        ),
        (
            f"incident_of @ {scaling['large']['snaps']:,} snaps",
            f"{scaling['large']['incident_of_avg_ms']:.4f} ms",
        ),
        (
            "lookup ratio (large/small)",
            f"{scaling['lookup_ratio_large_vs_small']:.2f}x",
        ),
        (
            f"full listing @ {scaling['large']['snaps']:,} snaps",
            f"{scaling['large']['incidents_ms']:.0f} ms "
            f"({scaling['large']['incidents']:,} incidents)",
        ),
    ]
    return format_table(
        rows,
        headers=["metric", "value"],
        title="Fleet vault: parallel ingest + indexed queries",
    )


def test_fleet_ingest(report):
    entry = run_benchmark()
    report.append(_render(entry))
    assert entry["baseline"]["snaps_per_sec"] >= MIN_SNAPS_PER_SEC, (
        f"vault ingest only {entry['baseline']['snaps_per_sec']:.0f} snaps/s"
    )
    # The stream repeats every 5th submission; dedupe must catch them all.
    assert abs(entry["baseline"]["dedupe_hit_rate"] - 0.2) < 0.01
    # Four collectors must beat one decisively (the acceptance bar is
    # 4x; assert 2.5x here so scheduler noise can't flake CI).
    assert entry["speedup"] >= 2.5, f"speedup only {entry['speedup']:.2f}x"
    # Indexed lookups must not scale with vault size (accept generous
    # noise; BENCH_fleet.json records the true ratio).
    assert entry["query_scaling"]["lookup_ratio_large_vs_small"] < 1.5


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        raise SystemExit(check_regression())
    print(_render(run_benchmark()))
