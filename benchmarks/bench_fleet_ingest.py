"""Fleet vault benchmark: ingest rate, dedupe, query latency at 1k snaps.

The vault (§3.6.1/§3.7.5 deployment model) must keep up with a fleet
that snaps often and repeats itself: group fan-outs arrive once per
member, crash loops resubmit identical evidence, and a support engineer
then queries the lot interactively.  This benchmark drives the full
collector -> vault -> query pipeline over a 1,000-snap store and records
the numbers in ``BENCH_fleet.json`` at the repo root:

* **snaps/sec** through ``Collector.submit`` + ``drain`` (durable,
  manifest-appended, content-hashed);
* **dedupe hit rate** on a submission stream with 20% repeats;
* **query latency** for indexed selects and for incident grouping over
  the whole vault.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fleet_ingest.py

or as part of the slow pytest lane (``pytest -m slow benchmarks/``).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.fleet import Collector, SnapVault, VaultQuery
from repro.runtime.snap import SnapFile
from repro.workloads.harness import format_table

SCHEMA = "tb-fleet-ingest-bench/1"

#: Distinct snaps in the vault after dedupe.
UNIQUE_SNAPS = 1_000

#: Every 4th submission repeats an earlier snap (crash loops, fan-out
#: re-arrivals): 1,250 submissions -> 1,000 stored, 20% dedupe rate.
DUPLICATE_EVERY = 4

#: Repeated timed queries to average out scheduler noise.
QUERY_REPEATS = 25

#: Ingest must not be the bottleneck of a simulated run (ordinal floor;
#: real rates are orders of magnitude higher).
MIN_SNAPS_PER_SEC = 100.0

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

MACHINES = [f"rack-{i:02d}" for i in range(10)]
PROCESSES = ["web", "db", "cache", "auth", "billing"]


def _make_snap(i: int) -> SnapFile:
    """One fleet snap; every 10th is a group fan-out member."""
    reason = "group" if i % 10 in (1, 2) else ["api", "hang", "unhandled"][i % 3]
    detail: dict = {"code": i}
    if reason == "group":
        detail = {
            "group": f"outage-{i // 10}",
            "initiator": PROCESSES[(i // 10) % len(PROCESSES)],
            "initiator_reason": "unhandled",
        }
    return SnapFile(
        reason=reason,
        detail=detail,
        process_name=PROCESSES[i % len(PROCESSES)],
        pid=100 + i % 7,
        machine_name=MACHINES[i % len(MACHINES)],
        clock=1_000 * i,
        modules=[],
        buffers=[],
        threads=[],
    )


def _submission_stream() -> list[SnapFile]:
    snaps = [_make_snap(i) for i in range(UNIQUE_SNAPS)]
    stream: list[SnapFile] = []
    fresh = iter(snaps)
    for i in range(UNIQUE_SNAPS + UNIQUE_SNAPS // DUPLICATE_EVERY):
        if i % (DUPLICATE_EVERY + 1) == DUPLICATE_EVERY:
            stream.append(_make_snap(i % UNIQUE_SNAPS))  # a repeat
        else:
            stream.append(next(fresh))
    return stream


def _timed_queries(vault: SnapVault) -> dict:
    query = VaultQuery(vault)
    start = time.perf_counter()
    for i in range(QUERY_REPEATS):
        query.select(machine=MACHINES[i % len(MACHINES)])
    select_ms = (time.perf_counter() - start) * 1_000 / QUERY_REPEATS

    start = time.perf_counter()
    incidents = query.incidents()
    incidents_ms = (time.perf_counter() - start) * 1_000
    return {
        "select_avg_ms": round(select_ms, 3),
        "incidents_ms": round(incidents_ms, 3),
        "incidents": len(incidents),
    }


def run_benchmark() -> dict:
    root = tempfile.mkdtemp(prefix="tb-bench-vault-")
    try:
        vault = SnapVault(root, shards=8)
        collector = Collector(vault, batch_size=32, queue_limit=256)
        stream = _submission_stream()

        start = time.perf_counter()
        for snap in stream:
            collector.submit(snap)
        collector.drain()
        seconds = time.perf_counter() - start

        metrics = vault.metrics
        assert len(vault) == UNIQUE_SNAPS, len(vault)
        queries = _timed_queries(vault)
        report = {
            "schema": SCHEMA,
            "submissions": len(stream),
            "stored": len(vault),
            "seconds": round(seconds, 4),
            "snaps_per_sec": round(len(stream) / seconds, 1),
            "dedupe_hits": metrics.dedupe_hits,
            "dedupe_hit_rate": round(metrics.dedupe_hits / len(stream), 4),
            "store_bytes": vault.store_bytes(),
            "query": queries,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _render(report: dict) -> str:
    rows = [
        ("submissions", f"{report['submissions']:,}"),
        ("stored (unique)", f"{report['stored']:,}"),
        ("ingest", f"{report['snaps_per_sec']:,.0f} snaps/s"),
        ("dedupe hit rate", f"{report['dedupe_hit_rate']:.1%}"),
        ("store size", f"{report['store_bytes']:,} B"),
        ("indexed select", f"{report['query']['select_avg_ms']:.2f} ms"),
        (
            "incident grouping",
            f"{report['query']['incidents_ms']:.1f} ms "
            f"({report['query']['incidents']} incidents)",
        ),
    ]
    return format_table(
        rows,
        headers=["metric", "value"],
        title=f"Fleet vault: {report['stored']:,}-snap store",
    )


def test_fleet_ingest(report):
    result = run_benchmark()
    report.append(_render(result))
    assert result["snaps_per_sec"] >= MIN_SNAPS_PER_SEC, (
        f"vault ingest only {result['snaps_per_sec']:.0f} snaps/s"
    )
    # The stream repeats every 5th submission; dedupe must catch them all.
    assert abs(result["dedupe_hit_rate"] - 0.2) < 0.01
    # Interactive budget: grouping a 1k-snap vault stays sub-second.
    assert result["query"]["incidents_ms"] < 1_000


if __name__ == "__main__":
    print(_render(run_benchmark()))
