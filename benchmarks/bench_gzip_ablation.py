"""§6 commentary: the gzip tight-loop pathology — an ablation.

Paper: "the high overhead from gzip is due to a very tight loop which
contains a DAG header probe.  The routine longest_match contains a DAG
header, 2 lightweight probes and a register spill/restore which account
for 30% of the total execution slowdown.  Most commercial applications
spread their execution history over a larger number of basic blocks."

Three ablations reproduce the mechanism:

1. **block size**: the same computation with an unrolled (fatter-block)
   inner loop has measurably lower overhead — probes amortize over more
   original instructions;
2. **register pressure**: an assembly variant keeping the probe register
   live across the hot loop forces spill/restore pairs and pushes the
   ratio higher still;
3. **probe census**: the instrumenter's own stats attribute the gzip
   overhead to header probes in the hot loop.
"""

from repro.instrument import instrument_module
from repro.isa import assemble
from repro.workloads.harness import format_table, measure_overhead, run_once
from repro.workloads.specint import benchmark_named

UNROLLED_GZIP = """
int window[600];
int longest_match(int pos) {
    int cur;
    int bestlen;
    bestlen = 0;
    // Unrolled x4: same work, fatter basic blocks.
    for (cur = pos - 258; cur < pos - 2; cur = cur + 4) {
        bestlen = bestlen + (window[cur] == window[pos])
                + (window[cur + 1] == window[pos])
                + (window[cur + 2] == window[pos])
                + (window[cur + 3] == window[pos]);
    }
    return bestlen;
}
int main() {
    int i;
    for (i = 0; i < 600; i = i + 1) {
        window[i] = (i * 7 + 3) % 256;
    }
    int pos;
    int acc;
    acc = 0;
    for (pos = 260; pos < 440; pos = pos + 1) {
        acc = acc + longest_match(pos);
    }
    print_int(acc);
    return 0;
}
"""

#: Hand-written hot loop keeping r11 (the probe register) live: every
#: probe in the loop needs a spill/restore pair.
SPILL_LOOP = """
.entry main
.func main
  movi r11, 0          ; accumulator lives in the probe register
  li r1, 40000
top:
  add r11, r11, r1
  addi r1, r1, -1
  bnz r1, top
  mov r0, r11
  sys 1
  halt
.endfunc
"""

NOSPILL_LOOP = """
.entry main
.func main
  movi r5, 0
  li r1, 40000
top:
  add r5, r5, r1
  addi r1, r1, -1
  bnz r1, top
  mov r0, r5
  sys 1
  halt
.endfunc
"""


def _asm_ratio(src: str) -> float:
    base = run_once(assemble(src))
    result = instrument_module(assemble(src))
    traced = run_once(result.module, with_runtime=True)
    assert traced.output == base.output
    return traced.cycles / base.cycles, result.stats  # type: ignore[return-value]


def test_gzip_ablation(report, benchmark):
    tight = measure_overhead(benchmark_named("gzip").source, "gzip-tight")
    unrolled = measure_overhead(UNROLLED_GZIP, "gzip-unrolled")
    spill_ratio, spill_stats = _asm_ratio(SPILL_LOOP)
    nospill_ratio, nospill_stats = _asm_ratio(NOSPILL_LOOP)

    rows = [
        ("gzip tight loop", f"{tight.ratio:.2f}", "small blocks, header in loop"),
        ("gzip unrolled x4", f"{unrolled.ratio:.2f}", "fatter blocks amortize probes"),
        ("asm loop, r11 live", f"{spill_ratio:.2f}",
         f"{spill_stats.spills} spill site(s) in the loop"),
        ("asm loop, r11 free", f"{nospill_ratio:.2f}", "no spills"),
    ]
    table = format_table(
        rows,
        headers=["Variant", "Ratio", "Mechanism"],
        title="gzip ablation — why tight loops are the worst case (§6)",
    )
    report.append(table)
    print("\n" + table)

    # 1. Fatter blocks => lower overhead.
    assert unrolled.ratio < tight.ratio
    # 2. A live probe register costs extra (spill/restore pairs).
    assert spill_stats.spills >= 1 and nospill_stats.spills == 0
    assert spill_ratio > nospill_ratio
    # 3. The hot-loop probes dominate: removing the loop-interior work
    #    (unrolling) recovers a large share of the gap to 1.0.
    recovered = (tight.ratio - unrolled.ratio) / (tight.ratio - 1)
    assert recovered > 0.15

    benchmark.pedantic(
        lambda: measure_overhead(UNROLLED_GZIP, "gzip-unrolled"),
        iterations=1,
        rounds=1,
    )
