"""§6 text: .NET PetShop throughput.

Paper: "The baseline was 1,649 req/sec; with TraceBack it dropped to
1,633 req/sec, or a 1% throughput reduction."  A three-tier app whose
request time is almost entirely database round-trips barely notices
application-tier instrumentation.

Reproduced claim: throughput drop of a few percent at most — below even
the web server's, and an order of magnitude below CPU-bound overhead.
"""

from repro.workloads.harness import format_table
from repro.workloads.petshop import measure


def test_petshop_throughput_drop(report, benchmark):
    result = measure()
    rows = [
        (
            "req/Mcycle",
            f"{result.base_req_per_mcycle:.3f}",
            f"{result.traced_req_per_mcycle:.3f}",
            f"{result.throughput_drop_percent:.2f}%",
            "1%",
        )
    ]
    table = format_table(
        rows,
        headers=["Metric", "Normal", "TraceBack", "Drop", "Paper"],
        title="PetShop analog — database-bound three-tier app",
    )
    report.append(table)
    print("\n" + table)

    assert 0.0 < result.throughput_drop_percent < 5.0

    benchmark.pedantic(measure, iterations=1, rounds=1)
