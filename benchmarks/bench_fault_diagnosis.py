"""§6.1: the production fault-diagnosis stories, regenerated.

The paper's evaluation of TraceBack's *purpose* is anecdotal — four
production diagnoses.  Each is reproduced as an executable scenario and
the diagnostic signal the engineers used is asserted to be present in
the reconstruction:

* **Phase Forward**: an intermittent hang whose cross-process trace
  "demonstrated conclusively that the problem was in a third party
  [module]" — a group snap at hang time shows which process blocks.
* **Fidelity**: memcpy overruns corrupting neighbours; the trace shows
  the overrunning loop long before the eventual crash.
* **Oracle**: sleep(random) exception storms behind a try/catch; the
  snap pinpoints the throwing line, suppression keeps it to one file.
"""

from repro import TraceSession
from repro.runtime import RuntimeConfig, ServiceProcess, SnapPolicy
from repro.vm import Machine
from repro.workloads.harness import format_table
from repro.workloads.scenarios import fidelity_session, oracle_session

def test_phase_forward_hang_diagnosis(report, benchmark):
    """The in-process variant: app code + third-party dll module
    deadlock; the trace shows the dll's line as the blocker."""
    session = TraceSession(
        process_name="trials-app",
        runtime_config=RuntimeConfig(policy=SnapPolicy.parse("snap on hang")),
        service=ServiceProcess(),
    )
    # The "third-party database dll" module: its worker path takes the
    # library's internal lock before the app's, opposite to main.
    session.add_minic(
        """
int worker(int arg) {
    lock(99);
    sleep(5000);
    lock(98);
    unlock(98);
    unlock(99);
    exit_thread(0);
    return 0;
}
int main() {
    thread_create(worker, 0);
    lock(98);
    sleep(5000);
    lock(99);            // deadlock against the dll-holding worker
    print_int(1);
    return 0;
}
""",
        name="app", file_name="trials.c",
    )
    run = session.run(max_cycles=5_000_000)
    assert run.status == "stalled"
    assert run.snap is not None and run.snap.reason == "hang"
    view = run.view()
    # The hang view names both blocked threads and their source lines —
    # the "conclusive demonstration" of where each party stopped.
    assert "thread 0" in view and "thread 1" in view
    assert "trials.c" in view

    report.append("Phase Forward hang view\n" + view)
    print("\n" + view)

    benchmark.pedantic(lambda: None, iterations=1, rounds=1)


def test_fidelity_corruption_visible_in_trace(report, benchmark):
    run = fidelity_session().run()
    assert run.process.exit_state == "faulted"
    thread = run.trace().threads[-1]
    # The overrunning copy loop (body = line 8) ran 6 + 10 times across
    # the two calls; the trace preserves the corrupting call's iterations.
    hits = sum(1 for s in thread.line_steps() if s.line == 8)
    assert hits >= 14
    exc = thread.events("exception")[-1]
    rows = [
        ("crash", f"{exc.detail.get('file')}:{exc.detail.get('line')}"),
        ("copy-loop iterations in trace", hits),
        ("diagnosis", "overrun visible ~%d steps before the crash"
         % (len(thread.steps) - next(
             i for i, s in enumerate(thread.steps)
             if getattr(s, "line", None) == 8))),
    ]
    table = format_table(rows, headers=["Item", "Value"],
                         title="Fidelity — delayed-crash corruption")
    report.append(table)
    print("\n" + table)
    benchmark.pedantic(lambda: fidelity_session().run(), iterations=1, rounds=1)


def test_oracle_exception_storm_diagnosed(report, benchmark):
    run = oracle_session().run()
    assert run.output == ["14"]  # the app soldiers on
    # One snap artifact despite 14 identical exceptions (§3.6.2).
    assert run.runtime.stats.snaps == 1
    assert run.runtime.suppressor.suppressed_count == 13
    # The policy snap fired at the *first* fault (first-fault diagnosis)
    # and its trace ends at the throwing sleep() call.
    assert run.snap.reason == "exception"
    first_trace = run.trace().threads[-1]
    assert first_trace.events("exception")
    # A post-mortem snap of the full run shows every surviving throw in
    # the ring (the history is bounded by buffer size, not by policy).
    from repro.reconstruct import Reconstructor
    full = Reconstructor(run.mapfiles).reconstruct(
        run.runtime.build_snap("post-mortem", {})
    )
    thread = full.threads[-1]
    exc = thread.events("exception")
    assert len(exc) >= 10
    rows = [
        ("exceptions surviving in ring", len(exc)),
        ("snaps written", run.runtime.stats.snaps),
        ("duplicates suppressed", run.runtime.suppressor.suppressed_count),
        ("faulting line", "Poller.java (sleep(draw(i)))"),
    ]
    table = format_table(rows, headers=["Item", "Value"],
                         title="Oracle — sleep(random) exception storm")
    report.append(table)
    print("\n" + table)
    benchmark.pedantic(lambda: oracle_session().run(), iterations=1, rounds=1)
