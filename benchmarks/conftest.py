"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation: it measures the simulated system, prints the paper-vs-
measured rows, and asserts the *ordinal* claims (who wins, roughly by
how much, where the crossovers are).  Absolute numbers differ by design:
the substrate is a simulator, not the authors' 2005 testbed.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Every benchmark is ``slow``: they regenerate whole paper tables
    and dominate the suite's wall clock, so the default test lane skips
    them (run ``pytest -m "slow or not slow"`` for everything).

    The hook sees the whole session's items, so filter to this
    directory before marking.
    """
    for item in items:
        if Path(item.fspath).resolve().is_relative_to(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def report():
    """Collect printed tables so the final output groups them."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n\n".join(lines))
