"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation: it measures the simulated system, prints the paper-vs-
measured rows, and asserts the *ordinal* claims (who wins, roughly by
how much, where the crossovers are).  Absolute numbers differ by design:
the substrate is a simulator, not the authors' 2005 testbed.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture(scope="session")
def report():
    """Collect printed tables so the final output groups them."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n\n".join(lines))
