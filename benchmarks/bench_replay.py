"""Replay benchmark: nondeterminism-log overhead + replay throughput.

The time-travel replay PR's operational claims, measured on two
multithreaded subjects:

* **archive growth (diagnosis scale)** — what replayability costs the
  vault where it matters: the workqueue example's crash-at-fault
  compressed archive with the ``tb-ndlog`` aboard vs the same snap
  stripped of it.  The log embeds the program image (a snap carries no
  executable otherwise), so small snaps pay a fixed few-KB cost;
  asserted under ``MAX_ARCHIVE_GROWTH_PCT``.  The raw ndlog size as a
  percentage of the snap's trace-buffer bytes is reported alongside.
* **marginal event cost (long run)** — the log's *variable* cost is
  scheduler-slice events, which grow with run length while the trace
  rings wrap in place.  Measured as compressed archive bytes per
  logged (v1-equivalent) event on a ~60k-iteration run, for both wire
  formats: the plain-JSON ``tb-ndlog/1`` baseline (asserted under
  ``MAX_BYTES_PER_EVENT``) and the packed columnar ``tb-ndlog/2`` the
  snap actually ships (asserted under ``MAX_BYTES_PER_EVENT_V2``,
  with the v1->v2 size reduction asserted >= ``MIN_V2_REDUCTION``).
* **replay throughput** — replay re-executes on the fast engine while
  forcing recorded slice boundaries; the recorded run pays
  instrumentation and record-write costs instead.  Both sides are
  reported as guest instructions per second; ``replay_vs_record`` is
  their ratio.

Results merge into a ``replay`` section of ``BENCH_interpreter.json``
(its own ``latest`` + ``history``, so the interpreter benchmark's
report shape is untouched)::

    PYTHONPATH=src python benchmarks/bench_replay.py          # measure
    PYTHONPATH=src python benchmarks/bench_replay.py --check  # guard

``--check`` compares ``replay_ips`` and the v2 compressed
bytes-per-event between the two most recent history entries and fails
on a >25% regression of either; fewer than two entries (or entries
predating a metric) is not an error.

Also runs in the slow pytest lane.
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro import TraceSession
from repro.replay import ReplayEngine
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.archive import compress_snap
from repro.runtime.snap import SnapFile
from repro.runtime.sync import reset_runtime_ids
from repro.workloads.harness import format_table

SCHEMA = "tb-replay-bench/1"

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_interpreter.json"

#: Best-of-N wall clock to damp scheduler noise.
REPEATS = 3

#: Compressed-archive growth cap for the diagnosis-scale exemplar
#: (the fixed cost: program image + config + a short event log).
MAX_ARCHIVE_GROWTH_PCT = 300.0

#: Compressed bytes per logged event on a long run (the variable
#: cost) for the plain-JSON v1 log; measured ~4-5 B, capped with
#: headroom.
MAX_BYTES_PER_EVENT = 16.0

#: Same metric for the packed v2 log the snap actually ships, per
#: *v1-equivalent* event (coalescing shrinks the slice count, but the
#: denominator stays the uncoalesced event count so the two formats
#: are directly comparable).  The acceptance bar: 4.23 -> <= 0.85.
MAX_BYTES_PER_EVENT_V2 = 0.85

#: Required v1->v2 shrink of the log's share of the archive.
MIN_V2_REDUCTION = 5.0

#: ``--check`` tolerance on replay instructions/second.
REGRESSION_TOLERANCE = 0.25

#: Three workers grind a division-free loop, then every one of them
#: trips the same division at its loop exit; the first to get there
#: takes the snap.  Long enough that record and replay wall clocks are
#: meaningful and the slice log dwarfs the (wrapping) trace rings.
CRASHER = """
int shared[4];

int worker(int wid) {
    int i;
    int acc;
    acc = wid;
    for (i = 0; i < 20000; i = i + 1) {
        acc = acc + i * 3;
        if (i % 4096 == 0) {
            lock(1);
            shared[wid % 4] = acc;
            unlock(1);
        }
    }
    return 1000 / (acc - acc);
}

int main() {
    int t;
    for (t = 0; t < 3; t = t + 1) {
        thread_create(worker, t);
    }
    sleep(4000000);
    return 0;
}
"""


def _record_workqueue():
    """The diagnosis-scale subject: the shipped workqueue example."""
    repo = Path(__file__).resolve().parents[1]
    spec = importlib.util.spec_from_file_location(
        "bench_replay_example", repo / "examples" / "multithreaded_crash.py"
    )
    example = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(example)
    reset_runtime_ids()
    session = TraceSession(
        process_name="workqueue",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            main_buffers=4,
            max_buffers=6,
            record_replay=True,
        ),
    )
    session.add_minic(example.SERVER, name="server", file_name="server.c")
    run = session.run(max_cycles=20_000_000)
    assert run.snap is not None and run.snap.replayable == "full"
    return run.snap


def _record():
    """One recorded long run; returns (run, seconds, instructions)."""
    reset_runtime_ids()
    session = TraceSession(
        process_name="replay-bench",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            record_replay=True,
        ),
    )
    session.add_minic(CRASHER, name="bench", file_name="bench.c")
    start = time.perf_counter()
    run = session.run(max_cycles=100_000_000)
    seconds = time.perf_counter() - start
    assert run.snap is not None and run.snap.replayable == "full"
    instructions = sum(
        t.instructions for t in run.process.threads.values()
    )
    return run, seconds, instructions


def _snap_with_ndlog(snap, ndlog: dict):
    """The same snap carrying a different wire-format ndlog."""
    d = snap.to_dict()
    d["replay"] = dict(d["replay"])
    d["replay"]["ndlog"] = ndlog
    return SnapFile.from_dict(d)


def _replay_once(snap):
    """One replay to the fault; returns (seconds, instructions)."""
    engine = ReplayEngine(snap)
    start = time.perf_counter()
    stop = engine.run_to_fault()
    seconds = time.perf_counter() - start
    assert stop["reason"] == "fault"
    instructions = sum(
        engine.registers(t["tid"])["instructions"]
        for t in engine.threads()
    )
    return seconds, instructions


def _archive_sizes(snap) -> tuple[int, int]:
    """(compressed bytes without the ndlog, with it)."""
    with_log = len(compress_snap(snap))
    stripped = snap.to_dict()
    stripped.pop("replay", None)
    without = len(compress_snap(SnapFile.from_dict(stripped)))
    return without, with_log


def run_benchmark() -> dict:
    # --- fixed cost: the diagnosis-scale exemplar -------------------
    exemplar = _record_workqueue()
    legacy_bytes, replay_bytes = _archive_sizes(exemplar)
    growth_pct = 100.0 * (replay_bytes - legacy_bytes) / legacy_bytes
    assert growth_pct <= MAX_ARCHIVE_GROWTH_PCT, (
        f"replayable exemplar archive grew {growth_pct:.0f}% "
        f"(cap {MAX_ARCHIVE_GROWTH_PCT:.0f}%)"
    )
    ndlog_bytes = len(json.dumps(exemplar.replay["ndlog"]).encode())
    trace_bytes = sum(len(b.words) for b in exemplar.buffers) * 4

    # --- variable cost + throughput: the long run -------------------
    best_record = None
    run = None
    for _ in range(REPEATS):
        recorded, seconds, instructions = _record()
        if best_record is None or seconds < best_record["seconds"]:
            best_record = {"seconds": seconds, "instructions": instructions}
            run = recorded
    snap = run.snap  # ships packed tb-ndlog/2
    # The v1 baseline: the same recording re-serialized plain-JSON.
    v1_ndlog = run.runtime.recorder.to_dict(version=1)
    long_legacy, long_v2 = _archive_sizes(snap)
    _, long_v1 = _archive_sizes(_snap_with_ndlog(snap, v1_ndlog))
    n_events = v1_ndlog["n_events"]  # v1-equivalent (uncoalesced) count
    bytes_per_event_v1 = (long_v1 - long_legacy) / n_events
    bytes_per_event = (long_v2 - long_legacy) / n_events
    v2_reduction = (long_v1 - long_legacy) / max(1, long_v2 - long_legacy)
    assert bytes_per_event_v1 <= MAX_BYTES_PER_EVENT, (
        f"{bytes_per_event_v1:.1f} compressed B/event (v1) "
        f"(cap {MAX_BYTES_PER_EVENT:.0f})"
    )
    assert bytes_per_event <= MAX_BYTES_PER_EVENT_V2, (
        f"{bytes_per_event:.2f} compressed B/event (v2) "
        f"(cap {MAX_BYTES_PER_EVENT_V2:.2f})"
    )
    assert v2_reduction >= MIN_V2_REDUCTION, (
        f"v2 shrank the log's archive share only {v2_reduction:.1f}x "
        f"(floor {MIN_V2_REDUCTION:.0f}x)"
    )

    best_replay = None
    for _ in range(REPEATS):
        seconds, instructions = _replay_once(snap)
        if best_replay is None or seconds < best_replay["seconds"]:
            best_replay = {"seconds": seconds, "instructions": instructions}

    record_ips = best_record["instructions"] / best_record["seconds"]
    replay_ips = best_replay["instructions"] / best_replay["seconds"]
    entry = {
        "exemplar": {
            "legacy_archive_bytes": legacy_bytes,
            "replayable_archive_bytes": replay_bytes,
            "archive_growth_pct": round(growth_pct, 1),
            "ndlog_bytes": ndlog_bytes,
            "trace_buffer_bytes": trace_bytes,
            "ndlog_vs_trace_pct": round(100.0 * ndlog_bytes / trace_bytes, 1),
        },
        "long_run": {
            "events": n_events,
            "packed_slices": snap.replay["ndlog"]["slices"]["count"],
            "legacy_archive_bytes": long_legacy,
            "v1_archive_bytes": long_v1,
            "replayable_archive_bytes": long_v2,
            "compressed_bytes_per_event_v1": round(bytes_per_event_v1, 2),
            "compressed_bytes_per_event": round(bytes_per_event, 3),
            "v2_reduction": round(v2_reduction, 1),
        },
        "record": {
            "seconds": round(best_record["seconds"], 4),
            "instructions": best_record["instructions"],
            "ips": round(record_ips),
        },
        "replay": {
            "seconds": round(best_replay["seconds"], 4),
            "instructions": best_replay["instructions"],
            "ips": round(replay_ips),
        },
        "replay_ips": round(replay_ips),
        "replay_vs_record": round(replay_ips / record_ips, 3),
    }

    try:
        report = json.loads(OUTPUT_PATH.read_text())
    except (OSError, ValueError):
        report = {}
    section = report.setdefault(
        "replay", {"schema": SCHEMA, "latest": {}, "history": []}
    )
    section["latest"] = entry
    section.setdefault("history", []).append(entry)
    section["history"] = section["history"][-20:]
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return entry


def check_regression() -> int:
    """Exit 1 when replay throughput dropped or the packed log's
    compressed bytes-per-event grew by >25% between the two most
    recent history entries."""
    try:
        report = json.loads(OUTPUT_PATH.read_text())
    except (OSError, ValueError):
        report = {}
    history = report.get("replay", {}).get("history", [])
    failed = False

    rates = [
        h["replay_ips"] for h in history if h.get("replay_ips")
    ]
    if len(rates) < 2:
        print(f"bench_replay --check: {len(rates)} replay history "
              "entr(ies) in BENCH_interpreter.json, nothing to compare")
    else:
        prev, last = rates[-2], rates[-1]
        if last < prev * (1 - REGRESSION_TOLERANCE):
            print(
                f"bench_replay --check: FAIL — replay throughput "
                f"{last:,.0f} ips is down {(1 - last / prev):.0%} from "
                f"previous {prev:,.0f} ips "
                f"(tolerance {REGRESSION_TOLERANCE:.0%})"
            )
            failed = True
        else:
            print(
                f"bench_replay --check: ok — replay throughput "
                f"{last:,.0f} ips vs previous {prev:,.0f} ips"
            )

    # v2 size rows only exist in entries recorded since tb-ndlog/2.
    sizes = [
        h["long_run"]["compressed_bytes_per_event"]
        for h in history
        if "v2_reduction" in h.get("long_run", {})
    ]
    if len(sizes) < 2:
        print(f"bench_replay --check: {len(sizes)} v2 size entr(ies), "
              "nothing to compare")
    else:
        prev, last = sizes[-2], sizes[-1]
        if last > prev * (1 + REGRESSION_TOLERANCE):
            print(
                f"bench_replay --check: FAIL — v2 log cost "
                f"{last:.3f} B/event is up {(last / prev - 1):.0%} from "
                f"previous {prev:.3f} B/event "
                f"(tolerance {REGRESSION_TOLERANCE:.0%})"
            )
            failed = True
        else:
            print(
                f"bench_replay --check: ok — v2 log cost {last:.3f} "
                f"B/event vs previous {prev:.3f} B/event"
            )
    return 1 if failed else 0


def _render(entry: dict) -> str:
    ex, lr = entry["exemplar"], entry["long_run"]
    rows = [
        ("exemplar archive", f"{ex['legacy_archive_bytes']:,} B -> "
                             f"{ex['replayable_archive_bytes']:,} B "
                             f"(+{ex['archive_growth_pct']:.0f}%, cap "
                             f"{MAX_ARCHIVE_GROWTH_PCT:.0f}%)"),
        ("exemplar ndlog", f"{ex['ndlog_bytes']:,} B = "
                           f"{ex['ndlog_vs_trace_pct']:.0f}% of "
                           f"{ex['trace_buffer_bytes']:,} B trace"),
        ("long-run events", f"{lr['events']:,} "
                            f"({lr['packed_slices']:,} packed slices)"),
        ("v1 log cost", f"{lr['compressed_bytes_per_event_v1']:.2f} "
                        f"B/event compressed (cap "
                        f"{MAX_BYTES_PER_EVENT:.0f})"),
        ("v2 log cost", f"{lr['compressed_bytes_per_event']:.3f} "
                        f"B/event compressed (cap "
                        f"{MAX_BYTES_PER_EVENT_V2:.2f})"),
        ("v2 reduction", f"{lr['v2_reduction']:.1f}x smaller archive "
                         f"share (floor {MIN_V2_REDUCTION:.0f}x)"),
        ("record", f"{entry['record']['ips']:,} ips "
                   f"({entry['record']['seconds']:.3f}s)"),
        ("replay", f"{entry['replay']['ips']:,} ips "
                   f"({entry['replay']['seconds']:.3f}s)"),
        ("replay vs record", f"{entry['replay_vs_record']:.2f}x"),
    ]
    return format_table(
        rows,
        headers=["metric", "value"],
        title="Time-travel replay: log overhead and throughput",
    )


def test_replay_overhead_and_throughput(report):
    entry = run_benchmark()
    report.append(_render(entry))
    assert entry["exemplar"]["archive_growth_pct"] <= MAX_ARCHIVE_GROWTH_PCT
    assert (
        entry["long_run"]["compressed_bytes_per_event_v1"]
        <= MAX_BYTES_PER_EVENT
    )
    assert (
        entry["long_run"]["compressed_bytes_per_event"]
        <= MAX_BYTES_PER_EVENT_V2
    )
    assert entry["long_run"]["v2_reduction"] >= MIN_V2_REDUCTION


if __name__ == "__main__":
    if "--check" in sys.argv:
        sys.exit(check_regression())
    print(_render(run_benchmark()))
