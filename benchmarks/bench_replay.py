"""Replay benchmark: nondeterminism-log overhead + replay throughput.

The time-travel replay PR's operational claims, measured on two
multithreaded subjects:

* **archive growth (diagnosis scale)** — what replayability costs the
  vault where it matters: the workqueue example's crash-at-fault
  compressed archive with the ``tb-ndlog`` aboard vs the same snap
  stripped of it.  The log embeds the program image (a snap carries no
  executable otherwise), so small snaps pay a fixed few-KB cost;
  asserted under ``MAX_ARCHIVE_GROWTH_PCT``.  The raw ndlog size as a
  percentage of the snap's trace-buffer bytes is reported alongside.
* **marginal event cost (long run)** — the log's *variable* cost is
  scheduler-slice events, which grow with run length while the trace
  rings wrap in place.  Measured as compressed archive bytes per
  logged event on a ~60k-iteration run; asserted under
  ``MAX_BYTES_PER_EVENT``.
* **replay throughput** — replay re-executes on the fast engine while
  forcing recorded slice boundaries; the recorded run pays
  instrumentation and record-write costs instead.  Both sides are
  reported as guest instructions per second; ``replay_vs_record`` is
  their ratio.

Results merge into a ``replay`` section of ``BENCH_interpreter.json``
(its own ``latest`` + ``history``, so the interpreter benchmark's
report shape is untouched)::

    PYTHONPATH=src python benchmarks/bench_replay.py          # measure
    PYTHONPATH=src python benchmarks/bench_replay.py --check  # guard

``--check`` compares ``replay_ips`` between the two most recent
history entries and fails on a >25% regression; fewer than two entries
is not an error (the section is new).

Also runs in the slow pytest lane.
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro import TraceSession
from repro.replay import ReplayEngine
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.archive import compress_snap
from repro.runtime.snap import SnapFile
from repro.runtime.sync import reset_runtime_ids
from repro.workloads.harness import format_table

SCHEMA = "tb-replay-bench/1"

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_interpreter.json"

#: Best-of-N wall clock to damp scheduler noise.
REPEATS = 3

#: Compressed-archive growth cap for the diagnosis-scale exemplar
#: (the fixed cost: program image + config + a short event log).
MAX_ARCHIVE_GROWTH_PCT = 300.0

#: Compressed bytes per logged event on a long run (the variable
#: cost); measured ~4-5 B, capped with headroom.
MAX_BYTES_PER_EVENT = 16.0

#: ``--check`` tolerance on replay instructions/second.
REGRESSION_TOLERANCE = 0.25

#: Three workers grind a division-free loop, then every one of them
#: trips the same division at its loop exit; the first to get there
#: takes the snap.  Long enough that record and replay wall clocks are
#: meaningful and the slice log dwarfs the (wrapping) trace rings.
CRASHER = """
int shared[4];

int worker(int wid) {
    int i;
    int acc;
    acc = wid;
    for (i = 0; i < 20000; i = i + 1) {
        acc = acc + i * 3;
        if (i % 4096 == 0) {
            lock(1);
            shared[wid % 4] = acc;
            unlock(1);
        }
    }
    return 1000 / (acc - acc);
}

int main() {
    int t;
    for (t = 0; t < 3; t = t + 1) {
        thread_create(worker, t);
    }
    sleep(4000000);
    return 0;
}
"""


def _record_workqueue():
    """The diagnosis-scale subject: the shipped workqueue example."""
    repo = Path(__file__).resolve().parents[1]
    spec = importlib.util.spec_from_file_location(
        "bench_replay_example", repo / "examples" / "multithreaded_crash.py"
    )
    example = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(example)
    reset_runtime_ids()
    session = TraceSession(
        process_name="workqueue",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            main_buffers=4,
            max_buffers=6,
            record_replay=True,
        ),
    )
    session.add_minic(example.SERVER, name="server", file_name="server.c")
    run = session.run(max_cycles=20_000_000)
    assert run.snap is not None and run.snap.replayable == "full"
    return run.snap


def _record():
    """One recorded long run; returns (snap, seconds, instructions)."""
    reset_runtime_ids()
    session = TraceSession(
        process_name="replay-bench",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            record_replay=True,
        ),
    )
    session.add_minic(CRASHER, name="bench", file_name="bench.c")
    start = time.perf_counter()
    run = session.run(max_cycles=100_000_000)
    seconds = time.perf_counter() - start
    assert run.snap is not None and run.snap.replayable == "full"
    instructions = sum(
        t.instructions for t in run.process.threads.values()
    )
    return run.snap, seconds, instructions


def _replay_once(snap):
    """One replay to the fault; returns (seconds, instructions)."""
    engine = ReplayEngine(snap)
    start = time.perf_counter()
    stop = engine.run_to_fault()
    seconds = time.perf_counter() - start
    assert stop["reason"] == "fault"
    instructions = sum(
        engine.registers(t["tid"])["instructions"]
        for t in engine.threads()
    )
    return seconds, instructions


def _archive_sizes(snap) -> tuple[int, int]:
    """(compressed bytes without the ndlog, with it)."""
    with_log = len(compress_snap(snap))
    stripped = snap.to_dict()
    stripped.pop("replay", None)
    without = len(compress_snap(SnapFile.from_dict(stripped)))
    return without, with_log


def run_benchmark() -> dict:
    # --- fixed cost: the diagnosis-scale exemplar -------------------
    exemplar = _record_workqueue()
    legacy_bytes, replay_bytes = _archive_sizes(exemplar)
    growth_pct = 100.0 * (replay_bytes - legacy_bytes) / legacy_bytes
    assert growth_pct <= MAX_ARCHIVE_GROWTH_PCT, (
        f"replayable exemplar archive grew {growth_pct:.0f}% "
        f"(cap {MAX_ARCHIVE_GROWTH_PCT:.0f}%)"
    )
    ndlog_bytes = len(json.dumps(exemplar.replay["ndlog"]).encode())
    trace_bytes = sum(len(b.words) for b in exemplar.buffers) * 4

    # --- variable cost + throughput: the long run -------------------
    best_record = None
    snap = None
    for _ in range(REPEATS):
        recorded, seconds, instructions = _record()
        if best_record is None or seconds < best_record["seconds"]:
            best_record = {"seconds": seconds, "instructions": instructions}
            snap = recorded
    long_legacy, long_replay = _archive_sizes(snap)
    n_events = snap.replay["ndlog"]["n_events"]
    bytes_per_event = (long_replay - long_legacy) / n_events
    assert bytes_per_event <= MAX_BYTES_PER_EVENT, (
        f"{bytes_per_event:.1f} compressed B/event "
        f"(cap {MAX_BYTES_PER_EVENT:.0f})"
    )

    best_replay = None
    for _ in range(REPEATS):
        seconds, instructions = _replay_once(snap)
        if best_replay is None or seconds < best_replay["seconds"]:
            best_replay = {"seconds": seconds, "instructions": instructions}

    record_ips = best_record["instructions"] / best_record["seconds"]
    replay_ips = best_replay["instructions"] / best_replay["seconds"]
    entry = {
        "exemplar": {
            "legacy_archive_bytes": legacy_bytes,
            "replayable_archive_bytes": replay_bytes,
            "archive_growth_pct": round(growth_pct, 1),
            "ndlog_bytes": ndlog_bytes,
            "trace_buffer_bytes": trace_bytes,
            "ndlog_vs_trace_pct": round(100.0 * ndlog_bytes / trace_bytes, 1),
        },
        "long_run": {
            "events": n_events,
            "legacy_archive_bytes": long_legacy,
            "replayable_archive_bytes": long_replay,
            "compressed_bytes_per_event": round(bytes_per_event, 2),
        },
        "record": {
            "seconds": round(best_record["seconds"], 4),
            "instructions": best_record["instructions"],
            "ips": round(record_ips),
        },
        "replay": {
            "seconds": round(best_replay["seconds"], 4),
            "instructions": best_replay["instructions"],
            "ips": round(replay_ips),
        },
        "replay_ips": round(replay_ips),
        "replay_vs_record": round(replay_ips / record_ips, 3),
    }

    try:
        report = json.loads(OUTPUT_PATH.read_text())
    except (OSError, ValueError):
        report = {}
    section = report.setdefault(
        "replay", {"schema": SCHEMA, "latest": {}, "history": []}
    )
    section["latest"] = entry
    section.setdefault("history", []).append(entry)
    section["history"] = section["history"][-20:]
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return entry


def check_regression() -> int:
    """Exit 1 when replay throughput regressed >25% between the two
    most recent history entries."""
    try:
        report = json.loads(OUTPUT_PATH.read_text())
    except (OSError, ValueError):
        report = {}
    history = report.get("replay", {}).get("history", [])
    rates = [
        h["replay_ips"] for h in history if h.get("replay_ips")
    ]
    if len(rates) < 2:
        print(f"bench_replay --check: {len(rates)} replay history "
              "entr(ies) in BENCH_interpreter.json, nothing to compare")
        return 0
    prev, last = rates[-2], rates[-1]
    if last < prev * (1 - REGRESSION_TOLERANCE):
        print(
            f"bench_replay --check: FAIL — replay throughput "
            f"{last:,.0f} ips is down {(1 - last / prev):.0%} from "
            f"previous {prev:,.0f} ips "
            f"(tolerance {REGRESSION_TOLERANCE:.0%})"
        )
        return 1
    print(
        f"bench_replay --check: ok — replay throughput {last:,.0f} ips "
        f"vs previous {prev:,.0f} ips"
    )
    return 0


def _render(entry: dict) -> str:
    ex, lr = entry["exemplar"], entry["long_run"]
    rows = [
        ("exemplar archive", f"{ex['legacy_archive_bytes']:,} B -> "
                             f"{ex['replayable_archive_bytes']:,} B "
                             f"(+{ex['archive_growth_pct']:.0f}%, cap "
                             f"{MAX_ARCHIVE_GROWTH_PCT:.0f}%)"),
        ("exemplar ndlog", f"{ex['ndlog_bytes']:,} B = "
                           f"{ex['ndlog_vs_trace_pct']:.0f}% of "
                           f"{ex['trace_buffer_bytes']:,} B trace"),
        ("long-run events", f"{lr['events']:,} @ "
                            f"{lr['compressed_bytes_per_event']:.1f} "
                            f"B/event compressed (cap "
                            f"{MAX_BYTES_PER_EVENT:.0f})"),
        ("record", f"{entry['record']['ips']:,} ips "
                   f"({entry['record']['seconds']:.3f}s)"),
        ("replay", f"{entry['replay']['ips']:,} ips "
                   f"({entry['replay']['seconds']:.3f}s)"),
        ("replay vs record", f"{entry['replay_vs_record']:.2f}x"),
    ]
    return format_table(
        rows,
        headers=["metric", "value"],
        title="Time-travel replay: log overhead and throughput",
    )


def test_replay_overhead_and_throughput(report):
    entry = run_benchmark()
    report.append(_render(entry))
    assert entry["exemplar"]["archive_growth_pct"] <= MAX_ARCHIVE_GROWTH_PCT
    assert (
        entry["long_run"]["compressed_bytes_per_event"]
        <= MAX_BYTES_PER_EVENT
    )


if __name__ == "__main__":
    if "--check" in sys.argv:
        sys.exit(check_regression())
    print(_render(run_benchmark()))
