"""Figure 6: the cross-machine DCOM trace, verified.

Paper: SetPetName on the server writes into a const string and takes an
access violation in library code; "the server process catches the
exception and sends it back to the client where it is converted into an
RPC_E_SERVERFAULT"; the client "does not properly check the returned
error code" and GetPetName then returns the wrong name.

Verified claims: the client receives the server-fault status and keeps
running, the returned name is the stale one, the server survives and
snaps at the fault, the stitched logical thread interleaves client and
server segments in causal order, and the trace works despite millions
of cycles of clock skew between the machines.
"""

from repro.reconstruct import LineStep, render_logical
from repro.vm import ExcCode
from repro.workloads.scenarios import figure6_session


def run_figure6():
    session = figure6_session()
    result = session.run()
    return session, result, result.reconstruct()


def test_figure6_cross_machine_trace(report, benchmark):
    session, result, trace = run_figure6()

    client = session.nodes["labrador-client"].process
    server = session.nodes["labrador-server"].process

    # GetPetName "succeeds, though the name the server returns is
    # incorrect": status 0, stale name.
    assert client.output == ["0", "Rex"]
    assert server.exit_state == "running"  # the server survived

    # The server snapped at the first-chance access violation.
    server_snaps = session.nodes["labrador-server"].runtime.snap_store.snaps
    assert any(s.reason == "exception" for s in server_snaps)
    assert server_snaps[0].detail["code"] == ExcCode.ACCESS_VIOLATION

    # Stitching: one logical thread, caller/callee/caller order, with
    # server-side SetPetName lines causally inside the client's call.
    logical = trace.logical_threads[0]
    legs = [seg.leg for seg in logical.segments]
    assert legs[0] == "caller" and "callee" in legs

    owners_lines = [
        (owner.process_name, step.line)
        for owner, step in logical.steps()
        if isinstance(step, LineStep)
    ]
    server_positions = [
        i for i, (owner, _) in enumerate(owners_lines)
        if owner == "labrador-server"
    ]
    client_positions = [
        i for i, (owner, _) in enumerate(owners_lines)
        if owner == "labrador-client"
    ]
    assert server_positions, "server lines present in the master trace"
    assert min(client_positions) < min(server_positions)
    assert max(client_positions) > max(server_positions)

    table = "Figure 6 — fused cross-machine trace\n" + render_logical(logical)
    report.append(table)
    print("\n" + table)

    benchmark.pedantic(run_figure6, iterations=1, rounds=1)
