"""Table 2: SPECweb99 / Apache overhead.

Paper: response time 347.7 -> 364.8 ms (1.049x), ops/sec 60.3 -> 57.5
(1.049x), Kbits/sec 345.3 -> 328.7 (1.051x) — about 5% on every metric,
because request time is dominated by kernel/network work that probes
never execute.

Reproduced claims: all three metrics degrade by the *same* small factor
(they are one ratio seen three ways), and that factor is far below the
CPU-bound SPECint overhead — the paper's central deployability argument.
"""

import pytest

from repro.workloads.harness import format_table
from repro.workloads.webserver import CONNECTIONS, measure


@pytest.fixture(scope="module")
def measured():
    return measure()


def test_table2_specweb(measured, report, benchmark):
    result, base, traced = measured
    rows = [
        (
            "Response (cyc)",
            f"{base.response_cycles:.1f}",
            f"{traced.response_cycles:.1f}",
            f"{traced.response_cycles / base.response_cycles:.3f}",
            "1.049",
        ),
        (
            "ops/Mcycle",
            f"{base.ops_per_mcycle:.2f}",
            f"{traced.ops_per_mcycle:.2f}",
            f"{base.ops_per_mcycle / traced.ops_per_mcycle:.3f}",
            "1.049",
        ),
        (
            "Kwords/Mcycle",
            f"{base.kwords_per_mcycle:.2f}",
            f"{traced.kwords_per_mcycle:.2f}",
            f"{base.kwords_per_mcycle / traced.kwords_per_mcycle:.3f}",
            "1.051",
        ),
    ]
    table = format_table(
        rows,
        headers=["Metric", "Normal", "TraceBack", "Ratio", "Paper"],
        title=(
            "Table 2 — SPECweb99 analog (static web serving, "
            f"{CONNECTIONS}-connection-profile)"
        ),
    )
    report.append(table)
    print("\n" + table)

    ratio = result.ratio
    assert 1.0 < ratio < 1.15, f"web overhead {ratio} outside the ~5% regime"
    # Latency and throughput degrade identically (single-ratio claim).
    latency_ratio = traced.response_cycles / base.response_cycles
    throughput_ratio = base.ops_per_mcycle / traced.ops_per_mcycle
    assert abs(latency_ratio - throughput_ratio) < 1e-9

    # The deployability crossover: the server workload sits several
    # times below the CPU-bound regime.
    from repro.workloads.specint import benchmark_named
    from repro.workloads.harness import measure_overhead

    cpu = measure_overhead(benchmark_named("gcc").source, "gcc")
    assert result.ratio - 1 < (cpu.ratio - 1) / 3

    benchmark.pedantic(measure, iterations=1, rounds=1)
