"""Figure 5: the cross-language (managed -> native) trace, verified.

Paper: a Java program passes a long string through JNI to C code that
allocated four characters; the overrun corrupts memory and a wild
access crashes where "a standard debugger" couldn't produce a stack
backtrace.  The TraceBack trace shows the control flow crossing from
NativeString.java into NativeString.c down to the faulting line.

Verified claims: one history contains lines from both source files, the
managed caller's lines precede the native callee's, the overrun loop's
iterations are visible, and the fault is attributed to the native file.
"""

from repro.reconstruct import render_flat
from repro.workloads.scenarios import figure5_session


def run_figure5():
    session = figure5_session()
    run = session.run(max_cycles=5_000_000)
    return run, run.trace().threads[-1]


def test_figure5_cross_language_trace(report, benchmark):
    run, thread = run_figure5()

    assert run.process.exit_state == "faulted"

    files_in_order = [s.file for s in thread.line_steps()]
    assert "NativeString.java" in files_in_order
    assert "NativeString.c" in files_in_order
    first_java = files_in_order.index("NativeString.java")
    first_c = files_in_order.index("NativeString.c")
    assert first_java < first_c, "control flows managed -> native"

    # The overrun copy loop's iterations are visible: the trace records
    # more iterations than the 4-character buffer should ever see.
    copy_line_hits = sum(
        1 for s in thread.line_steps()
        if s.file == "NativeString.c" and s.line in (9, 10, 11, 12)
    )
    assert copy_line_hits > 8

    exceptions = thread.events("exception")
    assert exceptions
    assert exceptions[0].detail.get("file") == "NativeString.c"
    assert exceptions[0].detail.get("func") == "set_string"

    table = "Figure 5 — cross-language trace (tail)\n" + "\n".join(
        render_flat(thread).splitlines()[-14:]
    )
    report.append(table)
    print("\n" + table)

    benchmark.pedantic(run_figure5, iterations=1, rounds=1)
