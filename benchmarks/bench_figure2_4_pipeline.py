"""Figures 2 & 4: probe placement and trace reconstruction, verified.

Figure 2 shows a six-line function whose RPC call forces two DAGs;
Figure 4 shows its trace buffer contents reconstructed into the source
trace "Line 1, Line 3, [RPC sync], Line 4, Line 5, Line 6".

This bench regenerates both: it asserts the tiling splits at the RPC,
runs the program against an echo server, and checks the reconstructed
line sequence matches the figure's.
"""

from repro.analysis import build_cfg
from repro.instrument import instrument_module, tile
from repro.isa import assemble
from repro.reconstruct import LineStep, Reconstructor, TraceEvent, render_flat
from repro.runtime import RuntimeConfig, TraceBackRuntime
from repro.vm import Machine
from repro.workloads.scenarios import figure2_module

ECHO = """
.module echo
.export handle
.func handle
  li r0, 0
  ret
.endfunc
"""


def run_figure2():
    result = instrument_module(figure2_module())
    machine = Machine()
    process = machine.create_process("fig2")
    runtime = TraceBackRuntime(process, RuntimeConfig())
    process.load_module(result.module)
    server = machine.create_process("echo")
    server.load_module(assemble(ECHO))
    server.rpc_services[7] = "handle"
    process.start("fig2")
    status = machine.run(max_cycles=2_000_000)
    snap = runtime.snap_external("figure4")
    trace = Reconstructor([result.mapfile]).reconstruct(snap)
    return result, status, trace


def test_figure2_tiling_splits_at_rpc(report, benchmark):
    module = figure2_module()
    func = module.func_named("main")
    cfg = build_cfg(module, func)
    plan = tile(cfg)

    # The RPC-terminated block's successor must head a new DAG.
    rpc_blocks = [b for b in cfg.blocks.values() if b.ends_with_syscall]
    assert rpc_blocks, "the figure's function contains an RPC"
    for block in rpc_blocks:
        for succ in block.succs:
            assert plan.block_probe[succ][0] == "header"
            assert plan.dag_of[succ] != plan.dag_of[block.start]

    result, status, trace = run_figure2()
    assert status == "done"

    thread = trace.threads[0]
    lines = [s.line for s in thread.steps if isinstance(s, LineStep)]
    # Figure 4's source trace: Line 1, Line 3 (the else side), the RPC
    # sync annotations, then Lines 4, 5, 6.
    assert lines[0] == 1
    assert 3 in lines
    assert lines[-3:] == [4, 5, 6]
    assert 2 not in lines  # the untaken branch side never appears

    syncs = [s for s in thread.steps if isinstance(s, TraceEvent) and s.kind == "sync"]
    assert len(syncs) == 2  # caller-side CALL_OUT + RETURN
    sync_pos = thread.steps.index(syncs[0])
    line4_pos = next(
        i for i, s in enumerate(thread.steps)
        if isinstance(s, LineStep) and s.line == 4
    )
    assert sync_pos < line4_pos  # syncs sit between Line 3 and Line 4

    table = "Figure 4 — reconstructed source trace\n" + render_flat(thread)
    report.append(table)
    print("\n" + table)

    benchmark.pedantic(run_figure2, iterations=1, rounds=1)
